"""Legacy shim so `pip install -e .` works with older setuptools/no wheel."""
from setuptools import setup

setup()
