"""Repo-root pytest configuration.

Makes the test and benchmark suites runnable without installing the
package: ``src`` is prepended to ``sys.path`` unless ``repro`` is
already importable (editable installs take precedence).

Offline note: ``pip install -e .`` requires the ``wheel`` package for
setuptools' PEP 660 editable builds; on machines without it, use
``python setup.py develop`` — or nothing at all, thanks to this shim.
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401  (already installed)
except ImportError:
    sys.path.insert(0, str(Path(__file__).parent / "src"))
