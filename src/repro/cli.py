"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``profile <csv>`` (alias: ``discover``) — discover dependencies in a
  CSV and report them (see :mod:`repro.profiler`);
* ``check <csv> --fd X->Y [--fd ...] [--rules rules.json]`` — validate
  declared dependencies (FDs inline, any Table-2 notation via a JSON
  rule file; see :mod:`repro.rules_io`) and print their violations;
* ``watch <csv> --rules rules.json [--log batches.jsonl]`` — replay a
  mutation log (JSONL, one batch per line; ``-`` or no ``--log`` reads
  stdin) through the incremental validation engine and print the
  violation changefeed per batch;
* ``lint <rules.json> [--csv data.csv] [--fix]`` — statically analyze a
  rule file without touching data: unsatisfiable/trivial rules, schema
  mismatches, implied/duplicate/conflicting rules (stable ``DD0xx``
  diagnostic codes, see :mod:`repro.analysis`); exits 1 on
  error-severity findings, ``--fix`` writes the minimized rule set;
* ``serve [--host H] [--port P] [--data-dir D] [--fsync P]`` — run the
  multi-tenant dependency-checking HTTP service (tenants, rule upload,
  batch ingestion, background discovery/repair jobs, Prometheus
  ``/metrics``; with ``--data-dir``, a per-tenant write-ahead log plus
  snapshots and crash recovery; see :mod:`repro.server` and
  ``docs/server.md``);
* ``tree`` — print the family tree of extensions (Fig. 1A);
* ``survey`` — print the regenerated Tables 2/3 and Figs 1B/2/3.

Column types: numerical columns are auto-detected (every non-empty cell
parses as a number) unless ``--text`` / ``--numerical`` overrides are
given.

``profile``/``check``/``watch`` all take ``--timeout SECONDS`` and
``--max-candidates N``: a resource :class:`~repro.runtime.budget.Budget`
governing the whole run.  On exhaustion the command reports what it
finished (marked partial) and exits 3 where partiality matters, instead
of dying mid-way with nothing.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from .core.categorical import FD
from .profiler import profile_relation
from .relation import Attribute, AttributeType, Relation, Schema
from .relation.io import read_csv
from .runtime.budget import Budget, checkpoint, governed
from .runtime.errors import BudgetExhausted, ReproError


def _detect_schema(path: str, numerical: set[str], text: set[str]) -> Schema:
    """Infer column types from the CSV head, honouring overrides."""
    raw = read_csv(path)

    def is_number(v: object) -> bool:
        try:
            float(str(v))
        except (TypeError, ValueError):
            return False
        return True

    attrs = []
    for name in raw.schema.names():
        if name in numerical:
            dtype = AttributeType.NUMERICAL
        elif name in text:
            dtype = AttributeType.TEXT
        else:
            column = [v for v in raw.column(name) if v is not None]
            dtype = (
                AttributeType.NUMERICAL
                if column and all(is_number(v) for v in column)
                else AttributeType.TEXT
            )
        attrs.append(Attribute(name, dtype))
    return Schema(attrs)


def load_relation(path: str, numerical: Sequence[str] = (),
                  text: Sequence[str] = ()) -> Relation:
    """Load a CSV with auto-detected (or overridden) column types."""
    schema = _detect_schema(path, set(numerical), set(text))
    return read_csv(path, schema)


def _parse_fd(spec: str) -> FD:
    """Parse ``a,b->c`` into an FD."""
    if "->" not in spec:
        raise argparse.ArgumentTypeError(
            f"FD spec must look like 'a,b->c', got {spec!r}"
        )
    lhs, __, rhs = spec.partition("->")
    return FD(
        [a.strip() for a in lhs.split(",") if a.strip()],
        [a.strip() for a in rhs.split(",") if a.strip()],
    )


def _budget_from_args(args: argparse.Namespace) -> Budget | None:
    """A :class:`Budget` from ``--timeout``/``--max-candidates``, if any."""
    timeout = getattr(args, "timeout", None)
    max_candidates = getattr(args, "max_candidates", None)
    if timeout is None and max_candidates is None:
        return None
    if timeout is not None and timeout <= 0:
        raise ReproError(f"--timeout must be positive, got {timeout}")
    if max_candidates is not None and max_candidates <= 0:
        raise ReproError(
            f"--max-candidates must be positive, got {max_candidates}"
        )
    return Budget(deadline_s=timeout, max_candidates=max_candidates)


def cmd_profile(args: argparse.Namespace) -> int:
    relation = load_relation(args.csv, args.numerical, args.text)
    report = profile_relation(
        relation,
        epsilon=args.epsilon,
        max_lhs_size=args.max_lhs,
        budget=_budget_from_args(args),
    )
    print(report.render())
    return 0


def _gather_rules(args: argparse.Namespace) -> list:
    """Inline ``--fd`` specs plus any ``--rules`` file, in that order."""
    rules = list(args.fd)
    if getattr(args, "rules", None):
        from .rules_io import load_rules

        rules.extend(load_rules(args.rules))
    return rules


def cmd_check(args: argparse.Namespace) -> int:
    from .rules_io import RuleFileError

    try:
        rules = _gather_rules(args)
    except RuleFileError as exc:
        print(f"[error] {exc}")
        return 2
    if not rules:
        print("[error] nothing to check: give --fd and/or --rules")
        return 2
    relation = load_relation(args.csv, args.numerical, args.text)
    skipped: dict[int, str] = {}
    if not getattr(args, "no_analyze", False):
        from .analysis import screen_rules

        # Raises InputError (exit 2 via main) on unsatisfiable rules.
        skipped = screen_rules(rules)
    exit_code = 0
    budget = _budget_from_args(args)
    checked = 0
    with governed(budget):
        try:
            for idx, dep in enumerate(rules):
                if idx in skipped:
                    checked += 1
                    print(f"[skip] {dep}: statically {skipped[idx]}")
                    continue
                checkpoint(candidates=1)
                try:
                    dep.validate_schema(relation.schema)
                except KeyError as exc:
                    print(f"[error] {dep}: {exc}")
                    return 2
                violations = dep.violations(relation)
                checked += 1
                if violations:
                    exit_code = 1
                    print(f"[FAIL] {dep}: {len(violations)} violations")
                    print("  " + violations.summary(limit=args.limit)
                          .replace("\n", "\n  "))
                else:
                    print(f"[ok]   {dep}")
        except BudgetExhausted as exc:
            print(
                f"[partial] budget exhausted ({exc.reason}): "
                f"{len(rules) - checked} of {len(rules)} rules unchecked"
            )
            return 3
    if skipped:
        print(
            f"[info] {len(skipped)} of {len(rules)} rules skipped by "
            "static analysis (see 'repro lint' for details)"
        )
    return exit_code


def cmd_watch(args: argparse.Namespace) -> int:
    from .incremental import DeltaError, IncrementalDetector, parse_mutation_log
    from .rules_io import RuleFileError, load_rules

    try:
        rules = load_rules(args.rules)
    except RuleFileError as exc:
        print(f"[error] {exc}")
        return 2
    relation = load_relation(args.csv, args.numerical, args.text)
    for dep in rules:
        try:
            dep.validate_schema(relation.schema)
        except KeyError as exc:
            print(f"[error] {dep}: {exc}")
            return 2

    # Raises InputError (exit 2 via main) on unsatisfiable rules.
    detector = IncrementalDetector(
        rules, relation, analyze=not getattr(args, "no_analyze", False)
    )
    for label, why in detector.skipped_rules.items():
        print(f"[skip] {label}: statically {why}")
    print(
        f"watching {args.csv}: {len(relation)} rows, {len(rules)} rules"
        + (
            f" ({len(detector.skipped_rules)} skipped by static analysis)"
            if detector.skipped_rules
            else ""
        )
        + f", {len(detector.violations())} initial violations"
    )

    if args.log in (None, "-"):
        lines = sys.stdin
        close = None
    else:
        close = open(args.log, "r", encoding="utf-8")
        lines = close
    budget = _budget_from_args(args)
    partial = False
    try:
        deltas = parse_mutation_log(lines, relation.schema)
        with governed(budget):
            try:
                for change in detector.replay(deltas):
                    print(change.render(limit=args.limit))
                    # Between batches: stop replaying when the budget is
                    # gone (mid-batch exhaustion is already handled by
                    # the detector itself, which flags the change).
                    checkpoint(candidates=1)
            except BudgetExhausted as exc:
                partial = True
                print(
                    f"[partial] budget exhausted ({exc.reason}): "
                    "replay stopped"
                )
    except DeltaError as exc:
        print(f"[error] bad mutation batch: {exc}")
        return 2
    finally:
        if close is not None:
            close.close()

    remaining = len(detector.violations())
    print(
        f"done: {len(detector.history)} batches, "
        f"{len(detector.relation)} rows, {remaining} violations remaining"
    )
    if partial:
        return 3
    return 0 if remaining == 0 else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import Severity, lint_entries
    from .rules_io import RuleFileError, load_rules_with_meta

    try:
        entries = load_rules_with_meta(args.rules)
    except RuleFileError as exc:
        print(f"[error] {exc}")
        return 2
    schema = None
    if args.csv:
        schema = load_relation(args.csv, args.numerical, args.text).schema
    report = lint_entries(entries, schema=schema)

    for diag in report.diagnostics:
        print(diag.render())
    counts = {s: 0 for s in Severity}
    for diag in report.diagnostics:
        counts[diag.severity] += 1
    if report.diagnostics:
        print(
            f"{len(report.diagnostics)} finding(s): "
            f"{counts[Severity.ERROR]} error(s), "
            f"{counts[Severity.WARNING]} warning(s), "
            f"{counts[Severity.INFO]} info"
        )
    else:
        print(f"no findings: {len(entries)} rule(s) clean")

    if args.fix:
        import json

        kept = report.minimized()
        out_path = args.output or args.rules
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report.minimized_payload(), fh, indent=2)
            fh.write("\n")
        print(
            f"[fix] wrote {len(kept)} of {len(entries)} rule(s) to "
            f"{out_path}"
        )
    return 1 if report.has_errors else 0


def cmd_staticcheck(args: argparse.Namespace) -> int:
    import json

    from .analysis.staticcheck import (
        load_baseline,
        render_json,
        render_text,
        run_paths,
    )

    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"[error] cannot read baseline {args.baseline}: {exc}")
            return 2
    report = run_paths(paths, baseline=baseline)
    if args.format == "json":
        print(json.dumps(render_json(report), indent=2))
    else:
        print(render_text(report))
    return 1 if report.has_findings else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .server import OverloadConfig, ReproApp, configure_logging

    configure_logging(level=args.log_level.upper())
    overload = OverloadConfig(
        max_inflight_per_tenant=args.max_inflight,
        max_rss_mb=args.max_rss_mb,
    )
    app = ReproApp(
        max_workers=args.workers,
        data_dir=args.data_dir,
        fsync=args.fsync,
        recover=args.recover,
        overload=overload,
    )
    try:
        asyncio.run(app.serve(host=args.host, port=args.port))
    except KeyboardInterrupt:
        pass
    finally:
        app.shutdown()
    return 0


def cmd_tree(args: argparse.Namespace) -> int:
    from .core.familytree import DEFAULT_TREE

    print(DEFAULT_TREE.to_text())
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    from .survey import (
        render_fig1b,
        render_fig2,
        render_fig3,
        render_table2,
        render_table3,
    )

    for block in (
        render_table2(),
        render_table3(),
        render_fig1b(),
        render_fig2(),
        render_fig3(),
    ):
        print(block)
        print()
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from .plan import PlanCompileError, compile_dependency, kernel_backend_mode
    from .relation.encoding import HAS_NUMPY

    from .rules_io import RuleFileError, load_rules

    try:
        rules = load_rules(args.rules)
    except RuleFileError as exc:
        print(f"[error] {exc}")
        return 2
    mode = kernel_backend_mode()
    substrate = "numpy" if HAS_NUMPY else "no numpy (scalar only)"
    print(f"kernel backend: {mode} [{substrate}]")
    exit_code = 0
    for dep in rules:
        try:
            plan = compile_dependency(dep)
        except PlanCompileError as exc:
            # Non-pairwise notations (MVDs, CFD pattern parts, SDs)
            # evaluate through their own engines, not pair plans.
            print(dep.label())
            print(f"  no pair plan: {exc}")
            exit_code = 1
            continue
        print(plan.describe())
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data-dependency profiling and checking "
        "(Song et al.'s family tree, executable).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_budget_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--timeout", type=float, default=None,
            help="wall-clock budget in seconds; on expiry the command "
            "returns partial results instead of failing",
        )
        p.add_argument(
            "--max-candidates", type=int, default=None,
            dest="max_candidates",
            help="cap on candidate checks across the run",
        )

    def add_workers_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=int, default=None,
            help="processes for sharded pairwise checking (default: "
            "REPRO_WORKERS env, else serial); results are "
            "order-identical to serial execution",
        )

    p_profile = sub.add_parser(
        "profile", aliases=["discover"],
        help="discover dependencies in a CSV",
    )
    p_profile.add_argument("csv")
    p_profile.add_argument(
        "--epsilon", type=float, default=0.05,
        help="AFD g3 tolerance (default 0.05)",
    )
    p_profile.add_argument(
        "--max-lhs", type=int, default=2, dest="max_lhs",
        help="max determinant size (default 2)",
    )
    p_profile.add_argument("--numerical", action="append", default=[],
                           help="force a column numerical")
    p_profile.add_argument("--text", action="append", default=[],
                           help="force a column textual")
    add_budget_args(p_profile)
    add_workers_arg(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_check = sub.add_parser("check", help="validate declared dependencies")
    p_check.add_argument("csv")
    p_check.add_argument(
        "--fd", action="append", default=[], type=_parse_fd,
        help="an FD like 'zip->city' (repeatable)",
    )
    p_check.add_argument(
        "--rules", default=None,
        help="JSON rule file with mixed Table-2 notations "
        "(see docs/api.md)",
    )
    p_check.add_argument("--limit", type=int, default=5,
                         help="violations to print per rule")
    p_check.add_argument("--numerical", action="append", default=[])
    p_check.add_argument("--text", action="append", default=[])
    p_check.add_argument(
        "--no-analyze", action="store_true", dest="no_analyze",
        help="skip the static pre-screen (implied-rule skipping and the "
        "unsatisfiable-rule gate)",
    )
    add_budget_args(p_check)
    add_workers_arg(p_check)
    p_check.set_defaults(func=cmd_check)

    p_watch = sub.add_parser(
        "watch", help="replay a mutation log through incremental checking"
    )
    p_watch.add_argument("csv", help="initial relation state")
    p_watch.add_argument(
        "--rules", required=True,
        help="JSON rule file with mixed Table-2 notations",
    )
    p_watch.add_argument(
        "--log", default=None,
        help="JSONL mutation log; '-' or omitted reads stdin",
    )
    p_watch.add_argument("--limit", type=int, default=10,
                         help="changefeed lines to print per batch")
    p_watch.add_argument("--numerical", action="append", default=[])
    p_watch.add_argument("--text", action="append", default=[])
    p_watch.add_argument(
        "--no-analyze", action="store_true", dest="no_analyze",
        help="skip the static pre-screen (implied-rule skipping and the "
        "unsatisfiable-rule gate)",
    )
    add_budget_args(p_watch)
    p_watch.set_defaults(func=cmd_watch)

    p_lint = sub.add_parser(
        "lint",
        help="statically analyze a rule file (no data access)",
    )
    p_lint.add_argument(
        "rules",
        help="JSON rule file with mixed Table-2 notations "
        "(see docs/api.md)",
    )
    p_lint.add_argument(
        "--csv", default=None,
        help="CSV whose schema enables the DD001/DD002 checks",
    )
    p_lint.add_argument(
        "--fix", action="store_true",
        help="write the minimized rule set (drops unsatisfiable, "
        "trivial, duplicate, and implied rules)",
    )
    p_lint.add_argument(
        "--output", default=None,
        help="where --fix writes (default: overwrite the rule file)",
    )
    p_lint.add_argument("--numerical", action="append", default=[])
    p_lint.add_argument("--text", action="append", default=[])
    p_lint.set_defaults(func=cmd_lint)

    p_static = sub.add_parser(
        "staticcheck",
        help="run the repo-wide invariant analyzer over source trees",
    )
    p_static.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src)",
    )
    p_static.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="report format (default text)",
    )
    p_static.add_argument(
        "--baseline", default=None,
        help="JSON report (or fingerprint list) of known findings to "
        "waive; new findings still fail",
    )
    p_static.set_defaults(func=cmd_staticcheck)

    p_plan = sub.add_parser(
        "plan",
        help="print the compiled evaluation plan of each rule",
    )
    p_plan.add_argument(
        "rules",
        help="JSON rule file with mixed Table-2 notations "
        "(see docs/api.md)",
    )
    add_workers_arg(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-tenant dependency-checking HTTP service",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8095,
        help="TCP port (default 8095; 0 binds an ephemeral port, "
        "reported in the startup log line)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="engine/job worker threads (default 4); also seeds the "
        "sharded checking process pool for large relations",
    )
    p_serve.add_argument(
        "--log-level", default="info", dest="log_level",
        choices=["debug", "info", "warning", "error"],
        help="JSON log verbosity (default info)",
    )
    p_serve.add_argument(
        "--data-dir", default=None, dest="data_dir",
        help="durable state directory (per-tenant WAL + snapshots); "
        "omit for in-memory-only operation",
    )
    p_serve.add_argument(
        "--fsync", default="batch",
        choices=["always", "batch", "off"],
        help="WAL fsync policy: always (per record), batch "
        "(amortized, default), off (flush to OS only)",
    )
    p_serve.add_argument(
        "--recover", dest="recover", action="store_true", default=True,
        help="replay snapshot + WAL tail at startup (default)",
    )
    p_serve.add_argument(
        "--no-recover", dest="recover", action="store_false",
        help="skip startup recovery (existing durable state is kept "
        "but not loaded)",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=8, dest="max_inflight",
        help="per-tenant in-flight batch ceiling before shedding with "
        "429 (default 8; 0 disables)",
    )
    p_serve.add_argument(
        "--max-rss-mb", type=float, default=0.0, dest="max_rss_mb",
        help="resident-set watermark in MiB: above it the server goes "
        "read-only and sheds mutating requests (default off)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_tree = sub.add_parser("tree", help="print the family tree")
    p_tree.set_defaults(func=cmd_tree)

    p_survey = sub.add_parser(
        "survey", help="print the regenerated tables and figures"
    )
    p_survey.set_defaults(func=cmd_survey)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    workers = getattr(args, "workers", None)
    if workers is not None:
        from .plan import set_workers, warm_pool

        set_workers(workers)
        if workers > 1:
            # Fork the process pool up front, while we are still on the
            # main thread and before any server/job threads exist.
            warm_pool(workers)
    try:
        return args.func(args)
    except ReproError as exc:
        # Typed library errors (bad input, engine faults) are user
        # messages, not tracebacks.
        print(f"[error] {exc}")
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; standard
        # CLI etiquette is a quiet exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
