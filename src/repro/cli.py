"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``profile <csv>`` — discover dependencies in a CSV and report them
  (see :mod:`repro.profiler`);
* ``check <csv> --fd X->Y [--fd ...]`` — validate declared FDs and
  print their violations;
* ``tree`` — print the family tree of extensions (Fig. 1A);
* ``survey`` — print the regenerated Tables 2/3 and Figs 1B/2/3.

Column types: numerical columns are auto-detected (every non-empty cell
parses as a number) unless ``--text`` / ``--numerical`` overrides are
given.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.categorical import FD
from .profiler import profile_relation
from .relation import Attribute, AttributeType, Relation, Schema
from .relation.io import read_csv


def _detect_schema(path: str, numerical: set[str], text: set[str]) -> Schema:
    """Infer column types from the CSV head, honouring overrides."""
    raw = read_csv(path)

    def is_number(v: object) -> bool:
        try:
            float(str(v))
        except (TypeError, ValueError):
            return False
        return True

    attrs = []
    for name in raw.schema.names():
        if name in numerical:
            dtype = AttributeType.NUMERICAL
        elif name in text:
            dtype = AttributeType.TEXT
        else:
            column = [v for v in raw.column(name) if v is not None]
            dtype = (
                AttributeType.NUMERICAL
                if column and all(is_number(v) for v in column)
                else AttributeType.TEXT
            )
        attrs.append(Attribute(name, dtype))
    return Schema(attrs)


def load_relation(path: str, numerical: Sequence[str] = (),
                  text: Sequence[str] = ()) -> Relation:
    """Load a CSV with auto-detected (or overridden) column types."""
    schema = _detect_schema(path, set(numerical), set(text))
    return read_csv(path, schema)


def _parse_fd(spec: str) -> FD:
    """Parse ``a,b->c`` into an FD."""
    if "->" not in spec:
        raise argparse.ArgumentTypeError(
            f"FD spec must look like 'a,b->c', got {spec!r}"
        )
    lhs, __, rhs = spec.partition("->")
    return FD(
        [a.strip() for a in lhs.split(",") if a.strip()],
        [a.strip() for a in rhs.split(",") if a.strip()],
    )


def cmd_profile(args: argparse.Namespace) -> int:
    relation = load_relation(args.csv, args.numerical, args.text)
    report = profile_relation(
        relation,
        epsilon=args.epsilon,
        max_lhs_size=args.max_lhs,
    )
    print(report.render())
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    relation = load_relation(args.csv, args.numerical, args.text)
    exit_code = 0
    for dep in args.fd:
        try:
            dep.validate_schema(relation.schema)
        except KeyError as exc:
            print(f"[error] {dep}: {exc}")
            return 2
        violations = dep.violations(relation)
        if violations:
            exit_code = 1
            print(f"[FAIL] {dep}: {len(violations)} violations")
            print("  " + violations.summary(limit=args.limit)
                  .replace("\n", "\n  "))
        else:
            print(f"[ok]   {dep}")
    return exit_code


def cmd_tree(args: argparse.Namespace) -> int:
    from .core.familytree import DEFAULT_TREE

    print(DEFAULT_TREE.to_text())
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    from .survey import (
        render_fig1b,
        render_fig2,
        render_fig3,
        render_table2,
        render_table3,
    )

    for block in (
        render_table2(),
        render_table3(),
        render_fig1b(),
        render_fig2(),
        render_fig3(),
    ):
        print(block)
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data-dependency profiling and checking "
        "(Song et al.'s family tree, executable).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_profile = sub.add_parser(
        "profile", help="discover dependencies in a CSV"
    )
    p_profile.add_argument("csv")
    p_profile.add_argument(
        "--epsilon", type=float, default=0.05,
        help="AFD g3 tolerance (default 0.05)",
    )
    p_profile.add_argument(
        "--max-lhs", type=int, default=2, dest="max_lhs",
        help="max determinant size (default 2)",
    )
    p_profile.add_argument("--numerical", action="append", default=[],
                           help="force a column numerical")
    p_profile.add_argument("--text", action="append", default=[],
                           help="force a column textual")
    p_profile.set_defaults(func=cmd_profile)

    p_check = sub.add_parser("check", help="validate declared FDs")
    p_check.add_argument("csv")
    p_check.add_argument(
        "--fd", action="append", required=True, type=_parse_fd,
        help="an FD like 'zip->city' (repeatable)",
    )
    p_check.add_argument("--limit", type=int, default=5,
                         help="violations to print per rule")
    p_check.add_argument("--numerical", action="append", default=[])
    p_check.add_argument("--text", action="append", default=[])
    p_check.set_defaults(func=cmd_check)

    p_tree = sub.add_parser("tree", help="print the family tree")
    p_tree.set_defaults(func=cmd_tree)

    p_survey = sub.add_parser(
        "survey", help="print the regenerated tables and figures"
    )
    p_survey.set_defaults(func=cmd_survey)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; standard
        # CLI etiquette is a quiet exit.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
