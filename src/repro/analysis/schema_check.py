"""Per-rule schema diagnostics: unknown attributes and type mismatches.

Given a relation :class:`~repro.relation.schema.Schema`, two checks run
without touching any data:

* **DD001 unknown-attribute** — the rule mentions an attribute the
  schema does not declare (every such rule would raise at check time).
* **DD002 type-mismatch** — an atom of the rule's compiled plan is
  incompatible with the declared column type: an order comparison
  (``<``, ``<=``, ``>``, ``>=``) on a CATEGORICAL column, or a
  metric/distance constraint on a CATEGORICAL column.  These rules
  *run*, but under SQL semantics an order atom on unordered data is
  vacuously false (or, for Python values, compares incidental
  representations), which almost always means the rule does not say
  what its author intended.

Notations without a pair-plan lowering (SDs, CFDs, conjunctions) get
structural checks on the dependency object itself.
"""

from __future__ import annotations

from ..core.base import Conjunction, Dependency
from ..plan.compile import compile_dependency
from ..plan.ir import (
    CmpAtom,
    ConstAtom,
    MetricAtom,
    PlanCompileError,
)
from ..relation.schema import AttributeType, Schema
from .diagnostics import TYPE_MISMATCH, UNKNOWN_ATTRIBUTE, Diagnostic, make

_ORDER_OPS = ("<", "<=", ">", ">=")


def _known(schema: Schema, attr: str) -> bool:
    return attr in schema


def _order_atom_attrs(dep: Dependency) -> list[tuple[str, str]]:
    """(attribute, description) pairs for order/metric atoms of the plan."""
    try:
        plan = compile_dependency(dep)
    except PlanCompileError:
        return _structural_atoms(dep)
    out: list[tuple[str, str]] = []
    for clause in plan.clauses:
        for atom in clause.atoms:
            if isinstance(atom, CmpAtom) and atom.op in _ORDER_OPS:
                for attr in (atom.lhs_attr, atom.rhs_attr):
                    out.append(
                        (attr, f"order comparison {atom.op} in {atom}")
                    )
            elif isinstance(atom, ConstAtom) and atom.op in _ORDER_OPS:
                out.append(
                    (atom.attr, f"order comparison {atom.op} in {atom}")
                )
            elif isinstance(atom, MetricAtom):
                out.append((atom.attribute, f"distance constraint {atom}"))
    return out


def _structural_atoms(dep: Dependency) -> list[tuple[str, str]]:
    """Fallback for notations that do not lower to a pair plan."""
    from ..core.numerical.sd import SD

    if isinstance(dep, Conjunction):
        out: list[tuple[str, str]] = []
        for part in dep.parts:
            out.extend(_order_atom_attrs(part))
        return out
    if isinstance(dep, SD):
        # The gap constrains numeric differences of consecutive RHS
        # values, so the RHS column must carry a meaningful order.
        return [(dep.rhs, f"sequential gap {dep.gap} on {dep.rhs}")]
    return []


def check_schema(
    dep: Dependency,
    schema: Schema,
    *,
    rule: str,
    location: str = "",
) -> list[Diagnostic]:
    """DD001/DD002 diagnostics for one dependency against ``schema``."""
    diagnostics: list[Diagnostic] = []
    unknown = [a for a in dep.attributes() if not _known(schema, a)]
    for attr in unknown:
        diagnostics.append(
            make(
                UNKNOWN_ATTRIBUTE,
                rule,
                f"attribute {attr!r} is not in the schema "
                f"{list(schema.names())}",
                location=location,
            )
        )
    if unknown:
        # Type checks need resolvable columns; DD001 already blocks.
        return diagnostics

    flagged: set[str] = set()
    for attr, reason in _order_atom_attrs(dep):
        if attr in flagged or not _known(schema, attr):
            continue
        dtype = schema[attr].dtype
        if dtype is AttributeType.CATEGORICAL:
            flagged.add(attr)
            diagnostics.append(
                make(
                    TYPE_MISMATCH,
                    rule,
                    f"{reason}, but column {attr!r} is "
                    f"{dtype.value} (no meaningful order/distance)",
                    location=location,
                )
            )
    return diagnostics
