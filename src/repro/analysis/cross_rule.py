"""Cross-rule analysis: implication, redundancy, and conflicts.

The family tree's subsumption edges (PAPER Fig. 1) give *sound*
implication tests between rules of a mixed-notation rule set:

* **FD / wildcard-CFD / AFD** — Armstrong implication over the FD pool
  (a variable CFD with an all-wildcard pattern *is* its embedded FD;
  an FD implies any AFD whose embedded FD it implies, since g3 = 0).
  AFD-to-AFD implication is restricted to the monotone case (same or
  smaller LHS implied is unsound because g3 is not monotone under
  general Armstrong steps): identical sides with a looser error bound.
* **DD** — :meth:`DD.subsumes` (looser LHS, tighter RHS).
* **OD** — identical attribute sequences with pointwise mark
  implication (``<`` implies ``<=``, ``=`` implies both non-strict
  marks) in the premise-weakening / conclusion-strengthening direction.
* **SD** — same sides with gap containment.
* **MD** — tighter LHS thresholds and a larger RHS set imply the rest.
* **MFD** — identical sides with a smaller delta.

Deliberately *not* implied (unsound): MD ⇒ FD (NaN distances escape),
DC ⇒ FD (NULL semantics differ), SD ⇒ OD (SDs skip NULL rows).

Outputs are :class:`~repro.analysis.diagnostics.Diagnostic` findings —
DD007 implied-rule, DD008 duplicate-rule, DD009 conflicting-rules —
plus :func:`minimal_cover_entries`, the rule set with duplicates and
implied rules removed (a greedy descending cover: later rules are
dropped first, so the surviving set keeps the earliest declarations).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.base import Dependency
from ..core.categorical.afd import AFD
from ..core.categorical.cfd import CFD
from ..core.categorical.fd import FD
from ..core.heterogeneous.dd import DD
from ..core.heterogeneous.md import MD
from ..core.heterogeneous.mfd import MFD
from ..core.implication import implies as fd_implies
from ..core.numerical.od import OD, MarkedAttribute
from ..core.numerical.sd import SD
from ..rules_io import RuleEntry
from .diagnostics import (
    CONFLICTING_RULES,
    DUPLICATE_RULE,
    IMPLIED_RULE,
    Diagnostic,
    make,
)

#: mark m1 implies mark m2: every pair ordered by m1 is ordered by m2.
_MARK_IMPLIES: dict[str, tuple[str, ...]] = {
    "<": ("<", "<="),
    "<=": ("<=",),
    ">": (">", ">="),
    ">=": (">=",),
    "=": ("=", "<=", ">="),
}


def _mark_implies(strong: str, weak: str) -> bool:
    return weak in _MARK_IMPLIES.get(strong, ())


def _as_fd(dep: Dependency) -> FD | None:
    """The plain FD a rule *states outright*, when there is one.

    A variable CFD whose pattern is all-wildcard places no condition at
    all, so it is exactly its embedded FD.  AFDs/MFDs are weaker than
    their embedded FD and must not enter the FD pool.
    """
    if type(dep) is FD:
        return dep
    if type(dep) is CFD and dep.pattern.is_pure_wildcard(dep.attributes()):
        return FD(dep.lhs, dep.rhs)
    return None


def _same_registry(a: Dependency, b: Dependency) -> bool:
    return getattr(a, "registry", None) is getattr(b, "registry", None)


def _od_marks(side: tuple[MarkedAttribute, ...]) -> tuple[str, ...]:
    return tuple(m.attribute for m in side)


def _implies_pairwise(a: Dependency, b: Dependency) -> bool:
    """Sound single-rule implication a ⇒ b outside the FD pool."""
    if isinstance(a, DD) and isinstance(b, DD) and _same_registry(a, b):
        return a.subsumes(b)
    if isinstance(a, OD) and isinstance(b, OD):
        if _od_marks(a.lhs) != _od_marks(b.lhs):
            return False
        if _od_marks(a.rhs) != _od_marks(b.rhs):
            return False
        premise_ok = all(
            _mark_implies(mb.mark, ma.mark) for ma, mb in zip(a.lhs, b.lhs, strict=True)
        )
        conclusion_ok = all(
            _mark_implies(ma.mark, mb.mark) for ma, mb in zip(a.rhs, b.rhs, strict=True)
        )
        return premise_ok and conclusion_ok
    if isinstance(a, SD) and isinstance(b, SD):
        return (
            a.lhs == b.lhs
            and a.rhs == b.rhs
            and b.gap.subsumes(a.gap)
        )
    if isinstance(a, MD) and isinstance(b, MD) and _same_registry(a, b):
        if not set(b.rhs) <= set(a.rhs):
            return False
        # b's premise must select a subset of a's premise pairs: every
        # a-threshold is met whenever b's (tighter) thresholds are.
        for pa in a.lhs:
            if not any(
                pb.attribute == pa.attribute
                and pb.metric is pa.metric
                and pb.threshold <= pa.threshold
                for pb in b.lhs
            ):
                return False
        return True
    if isinstance(a, MFD) and isinstance(b, MFD) and _same_registry(a, b):
        return (
            a.lhs == b.lhs and a.rhs == b.rhs and a.delta <= b.delta
        )
    if isinstance(a, AFD) and isinstance(b, AFD):
        return (
            a.lhs == b.lhs
            and a.rhs == b.rhs
            and a.max_error <= b.max_error
        )
    return False


def _implied_by_set(
    index: int,
    entries: Sequence[RuleEntry],
    active: set[int],
) -> tuple[int, ...] | None:
    """Witness indices when rule ``index`` is implied by the others."""
    target = entries[index].dependency

    target_fd: FD | None = _as_fd(target)
    if target_fd is None and type(target) is AFD:
        # An FD pool implying the embedded FD implies the AFD (g3 = 0).
        target_fd = target.embedded
    if target_fd is not None and not fd_implies([], target_fd):
        # (A trivial FD is implied by the empty set — that is DD004's
        # finding, not an implication between rules.)
        pool: list[tuple[int, FD]] = []
        for j in active:
            if j == index:
                continue
            fd = _as_fd(entries[j].dependency)
            if fd is not None:
                pool.append((j, fd))
        if pool and fd_implies([fd for _, fd in pool], target_fd):
            for j, fd in pool:
                if fd_implies([fd], target_fd):
                    return (j,)
            return tuple(j for j, _ in pool)

    for j in active:
        if j == index:
            continue
        if _implies_pairwise(entries[j].dependency, target):
            return (j,)
    return None


def _is_duplicate(a: Dependency, b: Dependency) -> bool:
    if type(a) is not type(b):
        return False
    if a == b:  # FD/CFD/AFD/DD/DC define structural equality
        return True
    return _implies_pairwise(a, b) and _implies_pairwise(b, a)


def _disjoint(a, b) -> bool:
    """Interval disjointness (no value in both)."""
    if a.high < b.low or b.high < a.low:
        return True
    if a.high == b.low and (a.high_open or b.low_open):
        return True
    if b.high == a.low and (b.high_open or a.low_open):
        return True
    return False


_OD_OPPOSED = {("<", ">"), ("<", ">="), ("<=", ">"), (">", "<"),
                (">=", "<"), (">", "<=")}


def _conflict(a: Dependency, b: Dependency) -> str | None:
    """A reason the two rules cannot both hold on non-trivial data."""
    if isinstance(a, SD) and isinstance(b, SD):
        if a.lhs == b.lhs and a.rhs == b.rhs and _disjoint(a.gap, b.gap):
            return (
                f"gaps {a.gap} and {b.gap} on {a.rhs} are disjoint; any "
                "two consecutive rows violate one of the rules"
            )
        return None
    if isinstance(a, DD) and isinstance(b, DD) and _same_registry(a, b):
        if a.lhs != b.lhs:
            return None
        for attr, iv_a in a.rhs.ranges.items():
            iv_b = b.rhs.ranges.get(attr)
            if iv_b is not None and _disjoint(iv_a, iv_b):
                return (
                    f"RHS ranges on {attr} ({iv_a} vs {iv_b}) are "
                    "disjoint; any pair matching the shared LHS "
                    "violates one of the rules"
                )
        return None
    if isinstance(a, OD) and isinstance(b, OD):
        if a.lhs != b.lhs:
            return None
        marks_b = {m.attribute: m.mark for m in b.rhs}
        for m in a.rhs:
            other = marks_b.get(m.attribute)
            if other is not None and (m.mark, other) in _OD_OPPOSED:
                return (
                    f"opposed RHS marks {m.attribute}^{m.mark} vs "
                    f"{m.attribute}^{other}; any strictly LHS-ordered "
                    "pair violates one of the rules"
                )
        return None
    if isinstance(a, CFD) and isinstance(b, CFD):
        if not (a.is_constant_cfd() and b.is_constant_cfd()):
            return None
        if a.lhs != b.lhs:
            return None
        lhs_pat_a = {x: a.pattern.entry(x) for x in a.lhs}
        lhs_pat_b = {x: b.pattern.entry(x) for x in b.lhs}
        if lhs_pat_a != lhs_pat_b:
            return None
        consts_b = {
            y: b.pattern.entry(y).constant for y in b.rhs
        }
        for y in a.rhs:
            if y in consts_b:
                c_a = a.pattern.entry(y).constant
                if c_a != consts_b[y]:
                    return (
                        f"the same LHS pattern pins {y} to {c_a!r} in "
                        f"one rule and {consts_b[y]!r} in the other; "
                        "any matching tuple violates one of the rules"
                    )
        return None
    return None


def analyze_rule_set(entries: Sequence[RuleEntry]) -> list[Diagnostic]:
    """DD007/DD008/DD009 findings over a whole rule set."""
    diagnostics: list[Diagnostic] = []

    # DD008: exact duplicates (the later declaration is the finding).
    duplicate_of: dict[int, int] = {}
    for i, entry in enumerate(entries):
        for j in range(i):
            if j in duplicate_of:
                continue
            if _is_duplicate(entries[j].dependency, entry.dependency):
                duplicate_of[i] = j
                diagnostics.append(
                    make(
                        DUPLICATE_RULE,
                        entry.name,
                        f"duplicates rule {entries[j].name!r}",
                        location=entry.location,
                        related=(entries[j].location,),
                    )
                )
                break

    # DD007: greedy descending minimal cover over the non-duplicates.
    implied = implied_indices(entries, exclude=set(duplicate_of))
    for i, witnesses in sorted(implied.items()):
        names = [entries[j].name for j in witnesses]
        diagnostics.append(
            make(
                IMPLIED_RULE,
                entries[i].name,
                "implied by "
                + (
                    f"rule {names[0]!r}"
                    if len(names) == 1
                    else f"the rules {', '.join(repr(n) for n in names)}"
                ),
                location=entries[i].location,
                related=tuple(entries[j].location for j in witnesses),
            )
        )

    # DD009: pairwise conflicts (both orientations checked).
    for i, entry in enumerate(entries):
        for j in range(i):
            reason = _conflict(entries[j].dependency, entry.dependency)
            if reason is None:
                reason = _conflict(entry.dependency, entries[j].dependency)
            if reason is not None:
                diagnostics.append(
                    make(
                        CONFLICTING_RULES,
                        entry.name,
                        f"conflicts with rule {entries[j].name!r}: "
                        f"{reason}",
                        location=entry.location,
                        related=(entries[j].location,),
                    )
                )
    return diagnostics


def implied_indices(
    entries: Sequence[RuleEntry],
    exclude: set[int] | None = None,
) -> dict[int, tuple[int, ...]]:
    """index -> witness indices for rules implied by the remaining set.

    Greedy descending pass: try to drop the *latest* rule first, then
    re-test earlier ones against the shrunken set, so mutual-implication
    groups keep their earliest member and the result is a cover (the
    surviving rules still imply everything dropped).
    """
    exclude = exclude or set()
    active = {i for i in range(len(entries)) if i not in exclude}
    witnesses: dict[int, tuple[int, ...]] = {}
    for i in sorted(active, reverse=True):
        found = _implied_by_set(i, entries, active)
        if found is not None:
            witnesses[i] = found
            active.discard(i)
    return witnesses


def minimal_cover_entries(
    entries: Sequence[RuleEntry],
) -> list[RuleEntry]:
    """The rule set with duplicates and implied rules removed."""
    drop: set[int] = set()
    for i, entry in enumerate(entries):
        for j in range(i):
            if j not in drop and _is_duplicate(
                entries[j].dependency, entry.dependency
            ):
                drop.add(i)
                break
    drop.update(implied_indices(entries, exclude=drop))
    return [e for i, e in enumerate(entries) if i not in drop]
