"""Static rule analysis: lint, simplify, and cross-rule implication.

The paper's family tree is a set of subsumption claims — "every P is a
special Q" with explicit parameter instantiations — and this package
turns those claims into a *static analyzer* that runs with zero data
access, in the tableau-minimization spirit of CFD reasoning (Fan et
al.) and FASTDC's predicate-space analysis (Chu et al.).  Three layers:

* **per-rule diagnostics** — schema checks, unsatisfiable deny clauses
  (contradiction closure + interval arithmetic), trivial rules, dead
  atoms (:mod:`~repro.analysis.schema_check`,
  :mod:`~repro.analysis.satisfy`);
* **plan simplification** — equivalence-preserving rewrites of compiled
  plans that the kernels then execute
  (:mod:`~repro.analysis.simplify`);
* **cross-rule analysis** — pairwise implication via family-tree
  embeddings, duplicate detection, conflicts, and a minimal cover
  (:mod:`~repro.analysis.cross_rule`).

Every finding is a structured :class:`~repro.analysis.diagnostics.Diagnostic`
with a stable ``DD0xx`` code; the CLI surface is ``repro lint``.
"""

from .cross_rule import analyze_rule_set, minimal_cover_entries
from .diagnostics import CODES, Diagnostic, Severity
from .linter import (
    LintReport,
    lint_entries,
    lint_rules,
    screen_rules,
    skippable_rules,
)
from .simplify import simplify_plan

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "Severity",
    "analyze_rule_set",
    "lint_entries",
    "lint_rules",
    "minimal_cover_entries",
    "screen_rules",
    "simplify_plan",
    "skippable_rules",
]
