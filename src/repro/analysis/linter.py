"""The rule linter: every static diagnostic for a rule set, in one pass.

:func:`lint_entries` runs the full pipeline over parsed
:class:`~repro.rules_io.RuleEntry` objects (``lint_rules`` wraps bare
dependencies):

1. **schema checks** (optional, when a schema is supplied) — DD001
   unknown attributes, DD002 type-incompatible atoms;
2. **per-rule plan analysis** — structural triviality (DD004) first,
   then clause satisfiability over the compiled plan: all clauses dead
   is DD003 unsatisfiable, some dead is DD005, redundant atoms inside
   live clauses are DD006.  The linter analyzes the *raw* compiled
   plan (not the simplified one the kernels run) under assume-clean
   semantics — these are diagnostics about intent, never about
   evaluation;
3. **cross-rule analysis** — DD007 implied, DD008 duplicate, DD009
   conflicting (:mod:`repro.analysis.cross_rule`).

The report keeps enough structure for every consumer: the CLI renders
``diagnostics`` and exits non-zero on errors, ``repro lint --fix``
writes :meth:`LintReport.minimized` back out, and the check/watch
paths skip the rules in :attr:`LintReport.skippable`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..core.base import Dependency
from ..core.categorical.afd import AFD
from ..core.categorical.cfd import CFD
from ..core.categorical.fd import FD
from ..core.heterogeneous.dd import DD
from ..core.numerical.od import OD
from ..plan.compile import compile_dependency
from ..plan.ir import PlanCompileError
from ..relation.schema import Schema
from ..rules_io import RuleEntry
from .cross_rule import _mark_implies, analyze_rule_set, implied_indices
from .diagnostics import (
    DEAD_ATOM,
    DEAD_CLAUSE,
    TRIVIAL_RULE,
    UNSATISFIABLE_RULE,
    Diagnostic,
    Severity,
    make,
)
from .satisfy import analyze_plan
from .schema_check import check_schema


def _trivial_reason(dep: Dependency) -> str | None:
    """A reason the rule holds on *every* relation, else None."""
    if isinstance(dep, AFD) and dep.embedded.is_trivial():
        # A trivial embedded FD has g3 error 0 <= any max_error.  (The
        # same is NOT sound for MFDs: d(v, v) = 0 is a metric axiom an
        # arbitrary user-supplied distance need not satisfy.)
        return (
            f"embedded FD is trivial (RHS {list(dep.rhs)} ⊆ LHS "
            f"{list(dep.lhs)})"
        )
    if isinstance(dep, FD) and dep.is_trivial():
        return f"RHS {list(dep.rhs)} ⊆ LHS {list(dep.lhs)}"
    if isinstance(dep, CFD):
        if set(dep.rhs) <= set(dep.lhs) and dep.is_variable_cfd():
            return (
                f"RHS {list(dep.rhs)} ⊆ LHS {list(dep.lhs)} with a "
                "wildcard RHS pattern"
            )
        return None
    if isinstance(dep, DD):
        ranges = dep.rhs.ranges
        if all(
            a in dep.lhs.ranges and iv.subsumes(dep.lhs.ranges[a])
            for a, iv in ranges.items()
        ):
            return "every RHS range contains its LHS range"
        return None
    if isinstance(dep, OD):
        lhs_marks = {m.attribute: m.mark for m in dep.lhs}
        if all(
            m.attribute in lhs_marks
            and _mark_implies(lhs_marks[m.attribute], m.mark)
            for m in dep.rhs
        ):
            return "every RHS mark is implied by the same LHS mark"
        return None
    return None


@dataclass
class LintReport:
    """Everything the static analyzer found about one rule set."""

    entries: list[RuleEntry]
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Entry indices that evaluation may skip: unsatisfiable (can never
    #: fire), trivial (never violated), duplicates, and implied rules.
    skippable: dict[int, str] = field(default_factory=dict)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def minimized(self) -> list[RuleEntry]:
        """The rule set without skippable rules (``repro lint --fix``)."""
        return [
            e for i, e in enumerate(self.entries) if i not in self.skippable
        ]

    def minimized_payload(self) -> dict[str, list[Any]]:
        """The minimized set as a rule-file JSON document."""
        return {"rules": [dict(e.raw) for e in self.minimized()]}

    def for_rule(self, index: int) -> list[Diagnostic]:
        location = self.entries[index].location
        return [d for d in self.diagnostics if d.location == location]


def lint_entries(
    entries: Sequence[RuleEntry],
    schema: Schema | None = None,
) -> LintReport:
    """Run every static check over a parsed rule set."""
    report = LintReport(entries=list(entries))

    for index, entry in enumerate(entries):
        dep = entry.dependency
        if schema is not None:
            report.diagnostics.extend(
                check_schema(
                    dep, schema, rule=entry.name, location=entry.location
                )
            )

        trivial = _trivial_reason(dep)
        if trivial is not None:
            report.diagnostics.append(
                make(
                    TRIVIAL_RULE,
                    entry.name,
                    f"rule can never be violated: {trivial}",
                    location=entry.location,
                )
            )
            report.skippable.setdefault(index, "trivial")
            continue

        try:
            plan = compile_dependency(dep)
        except PlanCompileError:
            continue
        facts = analyze_plan(plan, assume_clean=True)
        dead = [f for f in facts if f.dead]
        if dead and len(dead) == len(facts):
            report.diagnostics.append(
                make(
                    UNSATISFIABLE_RULE,
                    entry.name,
                    "every deny clause is statically contradictory "
                    f"({dead[0].contradiction}); the rule can never "
                    "report a violation",
                    location=entry.location,
                )
            )
            report.skippable.setdefault(index, "unsatisfiable")
            continue
        for clause_idx, f in enumerate(facts):
            if f.dead:
                report.diagnostics.append(
                    make(
                        DEAD_CLAUSE,
                        entry.name,
                        f"deny clause {clause_idx + 1} can never fire: "
                        f"{f.contradiction}",
                        location=entry.location,
                    )
                )
            else:
                for atom_idx, reason in f.redundant:
                    atom = plan.clauses[clause_idx].atoms[atom_idx]
                    report.diagnostics.append(
                        make(
                            DEAD_ATOM,
                            entry.name,
                            f"atom {atom} in clause {clause_idx + 1} "
                            f"is redundant: {reason}",
                            location=entry.location,
                        )
                    )

    cross = analyze_rule_set(entries)
    report.diagnostics.extend(cross)
    by_location = {e.location: i for i, e in enumerate(entries)}
    for diag in cross:
        index = by_location.get(diag.location)
        if index is None:
            continue
        if diag.code == "DD008":
            report.skippable.setdefault(index, "duplicate")
        elif diag.code == "DD007":
            report.skippable.setdefault(index, "implied")
    return report


def lint_rules(
    rules: Sequence[Dependency] | Sequence[RuleEntry],
    schema: Schema | None = None,
) -> LintReport:
    """Lint dependencies that did not come from a rule file."""
    entries: list[RuleEntry] = []
    for index, rule in enumerate(rules):
        if isinstance(rule, RuleEntry):
            entries.append(rule)
        else:
            raw: Mapping[str, Any] = {"kind": rule.kind}
            entries.append(RuleEntry(dependency=rule, raw=raw, index=index))
    return lint_entries(entries, schema=schema)


def skippable_rules(
    rules: Sequence[Dependency],
) -> dict[int, str]:
    """Indices of rules evaluation may skip, with the reason.

    The fast path for check/watch wiring (opt-in there): triviality
    and implication facts only — no plan analysis, no schema.  A
    *trivial* rule provably has no violations on any relation; an
    *implied* rule cannot change the pass/fail verdict (whenever the
    implying rules hold it holds too), though its own violation
    listing is suppressed when the implying rule is violated — which
    is why the callers expose this as an explicit option and report
    the skip in their stats.
    """
    entries = [
        RuleEntry(dependency=dep, raw={"kind": dep.kind}, index=i)
        for i, dep in enumerate(rules)
    ]
    out: dict[int, str] = {}
    for i, entry in enumerate(entries):
        if _trivial_reason(entry.dependency) is not None:
            out[i] = "trivial"
    exclude = set(out)
    for i in implied_indices(entries, exclude=exclude):
        out[i] = "implied"
    return out


def screen_rules(rules: Sequence[Dependency]) -> dict[int, str]:
    """The pre-evaluation gate for check/watch: fail fast or skip.

    Raises :class:`~repro.runtime.errors.InputError` for any rule whose
    compiled plan is *strictly* unsatisfiable (dead on every relation —
    the rule can never report a violation, which is virtually always a
    declaration mistake), then returns :func:`skippable_rules` for the
    rest.  Run ``repro lint`` on the rule file for the full diagnosis.
    """
    from ..runtime.errors import InputError

    skip = skippable_rules(rules)
    for i, dep in enumerate(rules):
        if i in skip:
            continue
        try:
            plan = compile_dependency(dep)
        except PlanCompileError:
            continue
        facts = analyze_plan(plan)
        if facts and all(f.dead for f in facts):
            raise InputError(
                f"rule {dep.label()} is statically unsatisfiable "
                f"({facts[0].contradiction}) and can never report a "
                "violation; fix or remove it (see 'repro lint')"
            )
    return skip
