"""Equivalence-preserving plan simplification.

:func:`simplify_plan` rewrites a compiled deny-form plan into a smaller
plan with the *same deny-set on every relation* — including relations
with ``None`` cells, NaN values, and mixed incomparable types — using
only the strict facts of :mod:`repro.analysis.satisfy`:

* drop statically dead clauses (their conjunction can never hold);
* drop atoms proved redundant inside their clause;
* merge overlapping ``"interval"``-semantics metric atoms on one
  measure into their intersection (NaN-safe: a NaN distance is inside
  every interval, so it is inside the intersection too);
* drop clauses subsumed by another clause (atom-set inclusion: if
  clause A's atoms ⊆ clause B's, B fires only when A already fired);
* canonicalize structurally equal atoms to one shared instance across
  clauses, preserving the identity-based guard detection
  (:meth:`Plan.shared_atoms`) that drives kernel strategy selection.

When *every* clause is dead the plan is returned with ``never=True``
and the kernels skip evaluation entirely.

The kernels re-verify every candidate pair against the notation's own
predicate, so even a hypothetical simplifier bug could only cost
performance, never change reported violations — but the parity suite
(``tests/test_analysis_parity.py``) pins full deny-set equality anyway.
"""

from __future__ import annotations

import math
from typing import Any

from ..plan.ir import Clause, MetricAtom, Plan, PredicateAtom
from .satisfy import analyze_clause, atom_key

_KeyedAtoms = list[tuple[tuple[Any, ...], PredicateAtom]]


def _intersect_intervals(intervals: list[Any]) -> Any | None:
    """The intersection Interval, or None when it is empty."""
    from ..core.heterogeneous.constraints import Interval

    lo, lo_open = -math.inf, False
    hi, hi_open = math.inf, False
    for iv in intervals:
        if iv.low > lo or (iv.low == lo and iv.low_open):
            lo, lo_open = iv.low, iv.low_open
        if iv.high < hi or (iv.high == hi and iv.high_open):
            hi, hi_open = iv.high, iv.high_open
    if lo > hi or (lo == hi and (lo_open or hi_open)):
        return None
    return Interval(lo, hi, lo_open, hi_open)


def _merge_interval_atoms(atoms: _KeyedAtoms) -> tuple[_KeyedAtoms, bool]:
    """Merge same-measure positive interval atoms into the intersection."""
    groups: dict[Any, list[int]] = {}
    for pos, (_, atom) in enumerate(atoms):
        if (
            isinstance(atom, MetricAtom)
            and atom.semantics == "interval"
            and not atom.negated
        ):
            key = (atom.attribute, id(atom.metric) if atom.metric is not None
                   else None, id(atom.registry) if atom.registry is not None
                   else None)
            groups.setdefault(key, []).append(pos)
    drop: set[int] = set()
    replace: dict[int, PredicateAtom] = {}
    for positions in groups.values():
        if len(positions) < 2:
            continue
        members = [atoms[p][1] for p in positions]
        merged = _intersect_intervals([a.interval for a in members])
        if merged is None:
            # Empty numeric intersection: the conjunction still fires on
            # NaN distances, which no single Interval can express — keep
            # the atoms untouched.
            continue
        first = members[0]
        replace[positions[0]] = MetricAtom(
            first.attribute,
            merged,
            "interval",
            negated=False,
            metric=first.metric,
            registry=first.registry,
        )
        drop.update(positions[1:])
    if not drop and not replace:
        return atoms, False
    out: _KeyedAtoms = []
    for pos, (key, atom) in enumerate(atoms):
        if pos in drop:
            continue
        if pos in replace:
            atom = replace[pos]
            key = atom_key(atom)
        out.append((key, atom))
    return out, True


def simplify_plan(plan: Plan) -> Plan:
    """A provably equivalent, usually smaller plan (or ``plan`` itself)."""
    if plan.never:
        return plan
    changed = False
    canonical: dict[tuple[Any, ...], PredicateAtom] = {}
    simplified: list[tuple[frozenset[tuple[Any, ...]], list[PredicateAtom]]] = []
    for clause in plan.clauses:
        facts = analyze_clause(clause)
        if facts.dead:
            changed = True
            continue
        drop = {idx for idx, _ in facts.redundant}
        kept: _KeyedAtoms = []
        kept_keys: set[tuple[Any, ...]] = set()
        for idx, atom in enumerate(clause.atoms):
            key = atom_key(atom)
            if idx in drop or key in kept_keys:
                changed = True
                continue
            kept_keys.add(key)
            kept.append((key, atom))
        if not kept:
            # Every atom is individually tautological; one must stay so
            # the clause still fires exactly when it used to (always).
            key = atom_key(clause.atoms[0])
            kept = [(key, clause.atoms[0])]
        kept, merged = _merge_interval_atoms(kept)
        changed = changed or merged
        atoms: list[PredicateAtom] = []
        for key, atom in kept:
            canon = canonical.setdefault(key, atom)
            if canon is not atom:
                changed = True
            atoms.append(canon)
        simplified.append((frozenset(key for key, _ in kept), atoms))

    if not simplified:
        # All clauses dead: the plan can never fire on any relation.
        return Plan(
            plan.label,
            plan.clauses,
            arity=plan.arity,
            style=plan.style,
            source=plan.source,
            note=_join_note(plan.note, "statically never fires"),
            never=True,
        )

    # Clause subsumption: drop any clause whose atom set contains
    # another clause's atom set (ties keep the earlier clause).
    final: list[list[PredicateAtom]] = []
    for i, (keys_i, atoms_i) in enumerate(simplified):
        subsumed = False
        for j, (keys_j, _) in enumerate(simplified):
            if i == j:
                continue
            if keys_j < keys_i or (keys_j == keys_i and j < i):
                subsumed = True
                break
        if subsumed:
            changed = True
        else:
            final.append(atoms_i)

    if not changed:
        return plan
    return Plan(
        plan.label,
        [Clause(atoms) for atoms in final],
        arity=plan.arity,
        style=plan.style,
        source=plan.source,
        note=_join_note(plan.note, "simplified"),
    )


def _join_note(existing: str, extra: str) -> str:
    return f"{existing}; {extra}" if existing else extra
