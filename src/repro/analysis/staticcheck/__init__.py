"""Source-level invariant analyzer (``repro staticcheck``).

PR 5 turned static analysis on the *rules* users hand us (DD001–DD009);
this package turns the same machinery on the codebase itself.  The
system's correctness rests on cross-cutting invariants no unit test can
pin exhaustively — every kernel candidate loop reaches a budget
``checkpoint()``, kernels never touch a ``Relation``, shared-memory
segments are released on every path, lock acquisition stays acyclic,
only picklable module-level work crosses the fork boundary, the WAL
append dominates the ack, async handlers never block the loop, and
broad exception handlers never swallow ``BudgetExhausted``.  Each is an
AST pass (stdlib ``ast``, no dependencies) emitting stable ``SC0xx``
findings; ``# staticcheck: disable=SC0xx — reason`` comments waive a
finding with a mandatory written reason.  The CI gate runs
``repro staticcheck src/`` and fails on any unsuppressed finding.
"""

from .base import CheckPass
from .findings import SC_CODES, CheckCode, Finding, make_finding
from .kernels_passes import BudgetCheckpointPass, EngineNeutralityPass
from .model import SourceModule, Suppression, load_source
from .runner import (
    CheckReport,
    collect_files,
    default_passes,
    load_baseline,
    render_json,
    render_text,
    run_paths,
)

__all__ = [
    "SC_CODES",
    "BudgetCheckpointPass",
    "CheckCode",
    "CheckPass",
    "CheckReport",
    "EngineNeutralityPass",
    "Finding",
    "SourceModule",
    "Suppression",
    "collect_files",
    "default_passes",
    "load_baseline",
    "load_source",
    "make_finding",
    "render_json",
    "render_text",
    "run_paths",
]
