"""Parsed source modules and inline suppression comments.

A :class:`SourceModule` is one parsed file: the AST, a parent map (the
passes navigate upward for dominance questions), and the parsed
``# staticcheck: disable=SC00x — reason`` comments.  A suppression
covers findings of the named codes on its own line; a comment that is
the only thing on its line covers the *next* source line instead, so
wide expressions keep their annotations readable.  The reason text is
mandatory — a suppression without one is itself reported (SC000), so
every silenced finding carries a written justification into review.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

from .findings import BAD_SUPPRESSION, Finding, make_finding

__all__ = [
    "SourceModule",
    "Suppression",
    "load_source",
    "parse_suppressions",
]

#: ``# staticcheck: disable=SC001,SC003 — why this is fine``
_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*disable=(?P<codes>[A-Z0-9,\s]+?)"
    r"(?:\s*[—–-]+\s*(?P<reason>.*))?$"
)
_CODE_RE = re.compile(r"^SC\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One inline suppression: the codes it silences and the reason."""

    line: int
    codes: tuple[str, ...]
    reason: str


@dataclass
class SourceModule:
    """One file the analyzer reasons about."""

    path: str
    text: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)
    #: Malformed suppression comments, reported as SC000.
    suppression_errors: list[Finding] = field(default_factory=list)
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict, repr=False)

    @property
    def name(self) -> str:
        """Best-effort dotted module name (from the path tail)."""
        parts = self.path.replace("\\", "/").rstrip("/").split("/")
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        anchor = parts.index("repro") if "repro" in parts else len(parts) - 1
        return ".".join(parts[anchor:])

    def parent(self, node: ast.AST) -> ast.AST | None:
        if not self._parents:
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    self._parents[child] = outer
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        """Chain of enclosing nodes, innermost first."""
        out: list[ast.AST] = []
        cur = self.parent(node)
        while cur is not None:
            out.append(cur)
            cur = self.parent(cur)
        return out

    def context_of(self, node: ast.AST) -> str:
        """Dotted ``Class.function`` context for a node, if any."""
        names = [
            a.name
            for a in self.ancestors(node)
            if isinstance(
                a, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        return ".".join(reversed(names))

    def suppressed(self, code: str, line: int) -> Suppression | None:
        for sup in self.suppressions:
            if code in sup.codes and line == sup.line:
                return sup
        return None


def parse_suppressions(
    path: str, text: str
) -> tuple[list[Suppression], list[Finding]]:
    """All well-formed suppressions in ``text``, plus SC000 findings.

    Uses :mod:`tokenize` so string literals that merely *look* like
    comments never register, and so a comment's own line number is
    exact even inside parenthesized expressions.
    """
    suppressions: list[Suppression] = []
    errors: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return [], []
    lines = text.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if "staticcheck" not in tok.string:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        line = tok.start[0]
        if match is None:
            errors.append(make_finding(
                BAD_SUPPRESSION, path, line,
                "unparseable staticcheck comment; expected "
                "'# staticcheck: disable=SC0xx — reason'",
            ))
            continue
        codes = tuple(
            c.strip() for c in match.group("codes").split(",") if c.strip()
        )
        bad = [c for c in codes if not _CODE_RE.match(c)]
        if bad or not codes:
            errors.append(make_finding(
                BAD_SUPPRESSION, path, line,
                f"suppression names invalid code(s): {bad or ['<none>']}",
            ))
            continue
        reason = (match.group("reason") or "").strip()
        if not reason:
            errors.append(make_finding(
                BAD_SUPPRESSION, path, line,
                f"suppression of {', '.join(codes)} has no written "
                "reason; append '— why it is safe'",
            ))
            continue
        # A comment alone on its line annotates the next *code* line;
        # continuation comment lines (a wrapped reason) are skipped.
        own_line = lines[line - 1] if line <= len(lines) else ""
        if own_line.strip().startswith("#"):
            line += 1
            while (
                line <= len(lines)
                and lines[line - 1].strip().startswith("#")
            ):
                line += 1
        suppressions.append(Suppression(line=line, codes=codes, reason=reason))
    return suppressions, errors


def load_source(path: str, text: str | None = None) -> SourceModule:
    """Parse one file into a :class:`SourceModule`.

    Raises :class:`SyntaxError` for files the compiler itself rejects —
    the runner reports those rather than analyzing half a tree.
    """
    if text is None:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    tree = ast.parse(text, filename=path)
    suppressions, errors = parse_suppressions(path, text)
    return SourceModule(
        path=path,
        text=text,
        tree=tree,
        suppressions=suppressions,
        suppression_errors=errors,
    )
