"""The SC-coded finding vocabulary of the source-level analyzer.

PR 5's ``DD0xx`` codes lint the *rules* the user hands us; the ``SC0xx``
codes lint the *codebase itself* — the cross-cutting invariants the
concurrent system rests on (budget checkpoints, engine neutrality,
shared-memory lifecycle, lock ordering, fork safety, WAL-before-ack,
async hygiene, exception discipline).  Codes are stable and must never
be renumbered; the catalog lives in ``docs/staticcheck.md``:

===== ========================== ========
code  name                       severity
===== ========================== ========
SC000 bad-suppression            error
SC001 missing-checkpoint         error
SC002 engine-neutrality          error
SC003 leaked-shared-memory       error
SC004 lock-order                 error
SC005 fork-safety                error
SC006 ack-before-wal             error
SC007 blocking-in-async          error
SC008 swallowed-exception        error
===== ========================== ========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..diagnostics import Severity

__all__ = [
    "SC_CODES",
    "CheckCode",
    "Finding",
    "make_finding",
]


@dataclass(frozen=True)
class CheckCode:
    """One registered source-invariant check: stable id, name, severity."""

    code: str
    name: str
    severity: Severity
    summary: str


BAD_SUPPRESSION = CheckCode(
    "SC000", "bad-suppression", Severity.ERROR,
    "a staticcheck suppression comment is malformed or missing its "
    "written reason",
)
MISSING_CHECKPOINT = CheckCode(
    "SC001", "missing-checkpoint", Severity.ERROR,
    "a kernel candidate loop can run unboundedly without reaching a "
    "budget checkpoint()",
)
ENGINE_NEUTRALITY = CheckCode(
    "SC002", "engine-neutrality", Severity.ERROR,
    "a kernel module references the Relation substrate it must stay "
    "neutral of",
)
LEAKED_SHARED_MEMORY = CheckCode(
    "SC003", "leaked-shared-memory", Severity.ERROR,
    "a shared-memory handle is created on a path that can exit without "
    "releasing it",
)
LOCK_ORDER = CheckCode(
    "SC004", "lock-order", Severity.ERROR,
    "lock acquisition order admits a cycle, or a lock is held across "
    "an await point",
)
FORK_SAFETY = CheckCode(
    "SC005", "fork-safety", Severity.ERROR,
    "process-pool usage that breaks under fork: non-module-level "
    "submit target or pool creation off the main thread",
)
ACK_BEFORE_WAL = CheckCode(
    "SC006", "ack-before-wal", Severity.ERROR,
    "an ingest path mutates acknowledged state before the WAL append "
    "that makes it durable",
)
BLOCKING_IN_ASYNC = CheckCode(
    "SC007", "blocking-in-async", Severity.ERROR,
    "a blocking call (file I/O, fsync, engine entry point) runs "
    "directly inside an async def instead of via run_sync",
)
SWALLOWED_EXCEPTION = CheckCode(
    "SC008", "swallowed-exception", Severity.ERROR,
    "a broad exception handler can swallow BudgetExhausted/EngineFault "
    "without re-raise, quarantine, or a written reason",
)

#: Stable code -> registration, in numbering order.
SC_CODES: dict[str, CheckCode] = {
    c.code: c
    for c in (
        BAD_SUPPRESSION,
        MISSING_CHECKPOINT,
        ENGINE_NEUTRALITY,
        LEAKED_SHARED_MEMORY,
        LOCK_ORDER,
        FORK_SAFETY,
        ACK_BEFORE_WAL,
        BLOCKING_IN_ASYNC,
        SWALLOWED_EXCEPTION,
    )
}


@dataclass(frozen=True)
class Finding:
    """One source-level finding, anchored to a file and line."""

    code: str
    severity: Severity
    path: str
    line: int
    message: str
    #: Dotted context — module, class, function — for stable baselines.
    context: str = ""

    @property
    def name(self) -> str:
        return SC_CODES[self.code].name

    @property
    def fingerprint(self) -> str:
        """Line-insensitive identity used by ``--baseline`` files."""
        return f"{self.code}:{self.path}:{self.context}:{self.message}"

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        ctx = f" [{self.context}]" if self.context else ""
        return f"{where}: {self.code} [{self.severity}]{ctx} {self.message}"

    def to_json(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "name": self.name,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "context": self.context,
            "message": self.message,
        }

    def __str__(self) -> str:
        return self.render()


def make_finding(
    code: CheckCode,
    path: str,
    line: int,
    message: str,
    context: str = "",
) -> Finding:
    """Build a finding with the code's registered severity."""
    return Finding(
        code=code.code,
        severity=code.severity,
        path=path,
        line=line,
        message=message,
        context=context,
    )
