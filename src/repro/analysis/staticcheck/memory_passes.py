"""Shared-memory lifecycle (SC003) and fork safety (SC005).

SC003 models the ownership discipline of :mod:`repro.plan.slabs` and
:mod:`repro.runtime.budget`: a function that *creates* a shared-memory
resource (a raw ``SharedMemory`` block, a ``ShardToken``) must either
hand ownership off — return/yield it, store it in a registry attribute
or subscript — or guarantee release on every exit path via a
``finally`` block that closes/unlinks it.  Anything else leaks a
``/dev/shm`` segment the moment an unexpected exception (including
``KeyboardInterrupt``) unwinds through the function.

SC005 models the fork-context process-pool rules: pools are created
only on the main thread (forking a multi-threaded parent from a helper
thread deadlocks), and only module-level callables are submitted —
closures and bound methods may pickle, but drag captured state across
the fork boundary where it silently diverges.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .base import CheckPass, call_target, walk_scope
from .findings import (
    FORK_SAFETY,
    LEAKED_SHARED_MEMORY,
    Finding,
    make_finding,
)
from .model import SourceModule

__all__ = ["ForkSafetyPass", "SharedMemoryLifecyclePass"]

#: Call-target suffixes that create an owned shared-memory resource.
CREATOR_SUFFIXES = (
    "SharedMemory",
    "ShardToken.create",
    "ShardToken.attach",
    "_attach_block",
)
#: A call whose target contains one of these releases resources.
RELEASER_HINTS = ("release",)
_CLOSERS = {"close", "unlink"}

_Func = ast.FunctionDef | ast.AsyncFunctionDef


def _is_creator(call: ast.Call) -> bool:
    target = call_target(call)
    return bool(target) and any(
        target == suf or target.endswith("." + suf)
        for suf in CREATOR_SUFFIXES
    )


def _name_in(tree: ast.AST, name: str) -> bool:
    """True when the *handle itself* appears in ``tree``.

    An attribute read (``token.name``) hands off a derived value, not
    the resource, so Name nodes that are the base of an Attribute do
    not count.
    """
    attr_bases = {
        id(n.value) for n in ast.walk(tree) if isinstance(n, ast.Attribute)
    }
    return any(
        isinstance(n, ast.Name) and n.id == name and id(n) not in attr_bases
        for n in ast.walk(tree)
    )


class SharedMemoryLifecyclePass(CheckPass):
    """SC003: created shared-memory handles escape or hit a finally."""

    code = "SC003"
    name = "leaked-shared-memory"

    def run(self, module: SourceModule) -> Iterable[Finding]:
        for func in (
            n for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            yield from self._check_function(module, func)

    def _check_function(
        self, module: SourceModule, func: _Func
    ) -> Iterable[Finding]:
        for stmt in walk_scope(func, include_root=False):
            if not isinstance(stmt, ast.Assign):
                continue
            if not isinstance(stmt.value, ast.Call):
                continue
            if not _is_creator(stmt.value):
                continue
            targets = [
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            ]
            for name in targets:
                if self._escapes(func, name):
                    continue
                if self._released_in_finally(func, name):
                    continue
                yield make_finding(
                    LEAKED_SHARED_MEMORY, module.path, stmt.lineno,
                    f"{name!r} holds a shared-memory resource from "
                    f"{call_target(stmt.value)}() but no finally block "
                    "releases it and it never escapes this function; an "
                    "unexpected exception leaks the segment",
                    context=module.context_of(stmt),
                )

    @staticmethod
    def _escapes(func: _Func, name: str) -> bool:
        """Returned/yielded, or stored into an attribute/subscript."""
        for node in walk_scope(func, include_root=False):
            if isinstance(node, ast.Return) and node.value is not None:
                if _name_in(node.value, name):
                    return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and _name_in(value, name):
                    return True
            if isinstance(node, ast.Assign):
                stored = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
                if stored and _name_in(node.value, name):
                    return True
        return False

    @staticmethod
    def _released_in_finally(func: _Func, name: str) -> bool:
        for node in walk_scope(func, include_root=False):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    target = call_target(call)
                    head, _, tail = target.rpartition(".")
                    if tail in _CLOSERS and head.split(".")[-1] == name:
                        return True
                    if any(h in target.lower() for h in RELEASER_HINTS):
                        return True
        return False


class ForkSafetyPass(CheckPass):
    """SC005: fork-context pools — main-thread creation, picklable work."""

    code = "SC005"
    name = "fork-safety"

    def run(self, module: SourceModule) -> Iterable[Finding]:
        creations = [
            node for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
            and call_target(node).rsplit(".", 1)[-1] == "ProcessPoolExecutor"
        ]
        if not creations:
            return
        for call in creations:
            func = self._enclosing_function(module, call)
            if func is None or not self._has_main_thread_guard(func):
                yield make_finding(
                    FORK_SAFETY, module.path, call.lineno,
                    "ProcessPoolExecutor created without a "
                    "current_thread() is main_thread() guard; forking a "
                    "multi-threaded parent off the main thread deadlocks",
                    context=module.context_of(call),
                )
        module_level = self._module_level_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_target(node).rsplit(".", 1)[-1] != "submit":
                continue
            if not node.args:
                continue
            yield from self._check_submit_target(
                module, node, node.args[0], module_level
            )

    @staticmethod
    def _enclosing_function(
        module: SourceModule, node: ast.AST
    ) -> _Func | None:
        for anc in module.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    @staticmethod
    def _has_main_thread_guard(func: _Func) -> bool:
        saw_current = saw_main = False
        for node in walk_scope(func):
            if isinstance(node, ast.Call):
                tail = call_target(node).rsplit(".", 1)[-1]
                saw_current = saw_current or tail == "current_thread"
                saw_main = saw_main or tail == "main_thread"
        return saw_current and saw_main

    @staticmethod
    def _module_level_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(stmt.name)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.split(".")[0])
        return names

    def _check_submit_target(
        self,
        module: SourceModule,
        call: ast.Call,
        target: ast.expr,
        module_level: set[str],
    ) -> Iterable[Finding]:
        if isinstance(target, ast.Lambda):
            yield make_finding(
                FORK_SAFETY, module.path, call.lineno,
                "lambda submitted to the process pool; lambdas do not "
                "pickle across the fork boundary",
                context=module.context_of(call),
            )
        elif isinstance(target, ast.Attribute):
            yield make_finding(
                FORK_SAFETY, module.path, call.lineno,
                f"bound method {ast.unparse(target)!r} submitted to the "
                "process pool; submit a module-level function so workers "
                "never unpickle captured instance state",
                context=module.context_of(call),
            )
        elif (
            isinstance(target, ast.Name)
            and target.id not in module_level
        ):
            yield make_finding(
                FORK_SAFETY, module.path, call.lineno,
                f"{target.id!r} is not a module-level callable; nested "
                "functions and closures do not pickle for process-pool "
                "workers",
                context=module.context_of(call),
            )
