"""Pass orchestration: collect files, run passes, apply suppressions.

The runner is what both surfaces use: ``repro staticcheck`` (the CLI
and CI gate) and the test suite (which points it at fixture trees).
Local passes run per module; whole-program passes (lock ordering)
see every module at once.  Suppression comments silence findings of
the named codes on their line; suppressed findings are retained on the
report (with their reasons) so ``--format json`` artifacts show what
was waived, not just what fired.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..diagnostics import Severity
from .base import CheckPass
from .concurrency_passes import AsyncBlockingPass, LockOrderPass
from .findings import BAD_SUPPRESSION, Finding, make_finding
from .kernels_passes import BudgetCheckpointPass, EngineNeutralityPass
from .memory_passes import ForkSafetyPass, SharedMemoryLifecyclePass
from .model import SourceModule, Suppression, load_source
from .reliability_passes import ExceptionDisciplinePass, WalBeforeAckPass

__all__ = [
    "CheckReport",
    "collect_files",
    "default_passes",
    "render_json",
    "render_text",
    "run_paths",
]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def default_passes() -> list[CheckPass]:
    """All registered passes, in SC-code order."""
    return [
        BudgetCheckpointPass(),
        EngineNeutralityPass(),
        SharedMemoryLifecyclePass(),
        LockOrderPass(),
        ForkSafetyPass(),
        WalBeforeAckPass(),
        AsyncBlockingPass(),
        ExceptionDisciplinePass(),
    ]


def collect_files(paths: list[str]) -> list[str]:
    """Every ``.py`` file under the given paths, sorted."""
    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.add(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = [
                d for d in dirs
                if d not in _SKIP_DIRS and not d.startswith(".")
            ]
            for name in files:
                if name.endswith(".py"):
                    out.add(os.path.join(root, name))
    return sorted(out)


@dataclass
class CheckReport:
    """Everything one analyzer run produced."""

    files: int = 0
    findings: list[Finding] = field(default_factory=list)
    #: Findings waived by an inline suppression, with the reasons.
    suppressed: list[tuple[Finding, Suppression]] = field(
        default_factory=list
    )
    #: Findings waived by the ``--baseline`` file.
    baselined: list[Finding] = field(default_factory=list)

    @property
    def has_findings(self) -> bool:
        return bool(self.findings)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return out


def load_baseline(path: str) -> set[str]:
    """Fingerprints from a ``--baseline`` JSON report."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    entries = payload.get("findings", payload) if isinstance(
        payload, dict
    ) else payload
    prints: set[str] = set()
    for entry in entries:
        if isinstance(entry, str):
            prints.add(entry)
            continue
        finding = Finding(
            code=entry["code"],
            severity=Severity.ERROR,
            path=entry["path"],
            line=int(entry.get("line", 0)),
            message=entry["message"],
            context=entry.get("context", ""),
        )
        prints.add(finding.fingerprint)
    return prints


def run_paths(
    paths: list[str],
    *,
    passes: list[CheckPass] | None = None,
    baseline: set[str] | None = None,
) -> CheckReport:
    """Run the analyzer over ``paths`` and return the report."""
    if passes is None:
        passes = default_passes()
    report = CheckReport()
    modules: list[SourceModule] = []
    raw: list[tuple[SourceModule | None, Finding]] = []
    for path in collect_files(paths):
        try:
            module = load_source(path)
        except SyntaxError as exc:
            raw.append((None, make_finding(
                BAD_SUPPRESSION, path, exc.lineno or 1,
                f"file does not parse: {exc.msg}; nothing here is "
                "analyzable",
            )))
            continue
        modules.append(module)
        for error in module.suppression_errors:
            raw.append((module, error))
    report.files = len(modules)
    by_path = {m.path: m for m in modules}
    for check in passes:
        for module in modules:
            for finding in check.run(module):
                raw.append((module, finding))
        for finding in check.run_project(modules):
            raw.append((by_path.get(finding.path), finding))
    seen: set[tuple[str, int, str, str]] = set()
    for module, finding in raw:
        key = (finding.path, finding.line, finding.code, finding.message)
        if key in seen:
            continue
        seen.add(key)
        if baseline and finding.fingerprint in baseline:
            report.baselined.append(finding)
            continue
        sup = (
            module.suppressed(finding.code, finding.line)
            if module is not None and finding.code != "SC000"
            else None
        )
        if sup is not None:
            report.suppressed.append((finding, sup))
        else:
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.code))
    report.suppressed.sort(key=lambda p: (p[0].path, p[0].line))
    return report


def render_text(report: CheckReport) -> str:
    lines = [f.render() for f in report.findings]
    total = len(report.findings)
    lines.append(
        f"{total} finding(s) in {report.files} file(s); "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined"
    )
    return "\n".join(lines)


def render_json(report: CheckReport) -> dict[str, Any]:
    return {
        "files": report.files,
        "counts": report.counts(),
        "findings": [f.to_json() for f in report.findings],
        "suppressed": [
            {**f.to_json(), "reason": sup.reason}
            for f, sup in report.suppressed
        ],
        "baselined": [f.to_json() for f in report.baselined],
    }
