"""Durability ordering (SC006) and exception discipline (SC008).

SC006 — the WAL contract of :mod:`repro.server.durability`: a batch
must be on disk *before* the state it acknowledges exists.  In any
server function that both persists (``log_batch``/``log_rules``/
``log_register``) and commits (applies a delta to the detector, or
installs a new detector), the persist call must lexically dominate the
commit; the reversed order acks state a crash would forget.

SC008 — the exception taxonomy of :mod:`repro.runtime.errors`:
``BudgetExhausted`` is control flow (honest partials) and
``EngineFault`` is a typed quarantine — a broad ``except Exception``
that neither re-raises nor sits behind a narrower
``BudgetExhausted``/``ReproError`` clause can silently convert either
into a wrong answer.  Handlers that are legitimately broad (server
boundaries, best-effort cleanup) carry an inline suppression with a
written reason.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .base import CheckPass, call_target, dotted_name, walk_scope
from .findings import (
    ACK_BEFORE_WAL,
    SWALLOWED_EXCEPTION,
    Finding,
    make_finding,
)
from .model import SourceModule

__all__ = ["ExceptionDisciplinePass", "WalBeforeAckPass"]

#: Calls that make state durable (the WAL append family).
PERSIST_TAILS = frozenset({"log_batch", "log_rules", "log_register"})
#: Exception names that make a broad handler acceptable when caught
#: by an *earlier* clause of the same try.
_GUARD_NAMES = frozenset({"BudgetExhausted", "ReproError"})
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_server_module(module: SourceModule) -> bool:
    path = module.path.replace("\\", "/")
    return "/server/" in path or path.endswith("/server.py")


def _commit_line(node: ast.AST) -> int | None:
    """Line of a state-commit: ``detector.apply(...)`` or
    ``<x>.detector = ...``."""
    if isinstance(node, ast.Call):
        target = call_target(node)
        parts = target.split(".")
        if parts[-1] == "apply" and len(parts) > 1 and (
            "detector" in parts[-2]
        ):
            return node.lineno
    if isinstance(node, ast.Assign):
        for tgt in node.targets:
            if isinstance(tgt, ast.Attribute) and tgt.attr == "detector":
                return node.lineno
    return None


class WalBeforeAckPass(CheckPass):
    """SC006: WAL append dominates the commit it makes durable."""

    code = "SC006"
    name = "ack-before-wal"

    def run(self, module: SourceModule) -> Iterable[Finding]:
        if not _is_server_module(module):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            persists: list[int] = []
            commits: list[tuple[int, ast.AST]] = []
            for node in walk_scope(func, include_root=False):
                if isinstance(node, ast.Call) and (
                    call_target(node).rsplit(".", 1)[-1] in PERSIST_TAILS
                ):
                    persists.append(node.lineno)
                line = _commit_line(node)
                if line is not None:
                    commits.append((line, node))
            if not persists or not commits:
                continue
            first_persist = min(persists)
            for line, node in commits:
                if line < first_persist:
                    yield make_finding(
                        ACK_BEFORE_WAL, module.path, line,
                        "state commit precedes the WAL append at line "
                        f"{first_persist}; a crash between them acks a "
                        "batch recovery cannot replay",
                        context=module.context_of(node),
                    )


def _handler_names(expr: ast.expr | None) -> set[str]:
    if expr is None:
        return {"BaseException"}  # bare except
    exprs = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    names: set[str] = set()
    for e in exprs:
        name = dotted_name(e)
        if name is not None:
            names.add(name.rsplit(".", 1)[-1])
    return names


class ExceptionDisciplinePass(CheckPass):
    """SC008: broad handlers must re-raise, narrow, or justify."""

    code = "SC008"
    name = "swallowed-exception"

    def run(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            guarded = False
            for handler in node.handlers:
                names = _handler_names(handler.type)
                if not names & _BROAD_NAMES:
                    if names & _GUARD_NAMES:
                        guarded = True
                    continue
                if guarded:
                    continue  # BudgetExhausted peeled off earlier
                if self._reraises(handler):
                    continue
                caught = (
                    "bare except" if handler.type is None
                    else f"except {ast.unparse(handler.type)}"
                )
                yield make_finding(
                    SWALLOWED_EXCEPTION, module.path, handler.lineno,
                    f"{caught} can swallow BudgetExhausted/EngineFault: "
                    "narrow it, peel those off in an earlier clause, "
                    "re-raise, or suppress with a written reason",
                    context=module.context_of(handler),
                )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for node in walk_scope(stmt):
                if isinstance(node, ast.Raise):
                    return True
        return False
