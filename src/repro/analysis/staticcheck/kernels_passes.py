"""Kernel-module invariants: budget discipline and engine neutrality.

SC001 — every candidate loop in a kernel module must *dominate* a
budget ``checkpoint()``: either the loop (transitively) calls
``checkpoint``, or it streams — every ``yield`` hands a candidate
straight to the consumer (which charges per item) on every iteration.
A loop whose yields are *guarded* (nested under an ``if``/``try``
between the yield and its loop) can examine unboundedly many
candidates while yielding none, so deadlines and cross-process
cancellation never bite; those loops must poll the budget themselves.

SC002 — kernel modules are engine-neutral: they consume
:class:`~repro.plan.slabs.ExecutionContext` column slabs and bare row
indices, never the ``Relation`` substrate.  This promotes the original
grep-style source pin ("the word relation never appears") to a real
pass over imports and identifiers.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from fnmatch import fnmatch
from pathlib import PurePath

from .base import CheckPass, call_target, walk_scope
from .findings import (
    ENGINE_NEUTRALITY,
    MISSING_CHECKPOINT,
    Finding,
    make_finding,
)
from .model import SourceModule

__all__ = ["BudgetCheckpointPass", "EngineNeutralityPass"]

#: Kernel modules, the scope of both passes (fnmatch on the
#: slash-normalized path, so ``kernels_passes.py`` — this file — and
#: test helpers that merely *mention* kernels stay out of scope).
KERNEL_MODULE_PATTERNS = ("*/plan/kernels*.py", "plan/kernels*.py")

_Loop = ast.For | ast.While
_Func = ast.FunctionDef | ast.AsyncFunctionDef


def _is_kernel_module(module: SourceModule, patterns: tuple[str, ...]) -> bool:
    path = PurePath(module.path).as_posix()
    name = PurePath(path).name
    return any(
        fnmatch(path if "/" in pat else name, pat) for pat in patterns
    )


def _loop_calls(loop: _Loop, name: str) -> bool:
    for node in walk_scope(loop):
        if isinstance(node, ast.Call):
            if call_target(node).rsplit(".", 1)[-1] == name:
                return True
    return False


def _loop_yields(loop: _Loop) -> list[ast.Yield | ast.YieldFrom]:
    return [
        n for n in walk_scope(loop)
        if isinstance(n, (ast.Yield, ast.YieldFrom))
    ]


def _yield_is_guarded(
    module: SourceModule, node: ast.AST, loop: _Loop
) -> bool:
    """True when a guard sits between the yield and its candidate loop.

    Walking up from the yield to ``loop``: loop nestings are streaming
    (each inner iteration still yields), ``Expr``/``Assign`` wrappers
    are transparent, but an ``if``/``try``/``with`` ancestor means the
    loop iteration can complete — having done its examination work —
    without handing anything to the charging consumer.
    """
    cur = module.parent(node)
    while cur is not None and cur is not loop:
        if isinstance(cur, (ast.If, ast.IfExp, ast.Try, ast.With, ast.Match)):
            return True
        cur = module.parent(cur)
    return False


class BudgetCheckpointPass(CheckPass):
    """SC001: candidate loops must dominate a ``checkpoint()`` call."""

    code = "SC001"
    name = "missing-checkpoint"

    def __init__(
        self, patterns: tuple[str, ...] = KERNEL_MODULE_PATTERNS
    ) -> None:
        self._patterns = patterns

    def run(self, module: SourceModule) -> Iterable[Finding]:
        if not _is_kernel_module(module, self._patterns):
            return
        for func in self._functions(module.tree):
            loops = [
                n for n in walk_scope(func, include_root=False)
                if isinstance(n, (ast.For, ast.While))
                and self._is_candidate_loop(n)
            ]
            for loop in self._outermost(module, loops):
                yield from self._check_loop(module, func, loop)

    @staticmethod
    def _functions(tree: ast.AST) -> list[_Func]:
        return [
            n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    @staticmethod
    def _is_candidate_loop(loop: _Loop) -> bool:
        return bool(_loop_yields(loop)) or _loop_calls(loop, "verify")

    @staticmethod
    def _outermost(
        module: SourceModule, loops: list[_Loop]
    ) -> list[_Loop]:
        pool = set(loops)
        return [
            lp for lp in loops
            if not any(a in pool for a in module.ancestors(lp))
        ]

    def _check_loop(
        self, module: SourceModule, func: _Func, loop: _Loop
    ) -> Iterable[Finding]:
        if _loop_calls(loop, "checkpoint"):
            return
        yields = _loop_yields(loop)
        refines = _loop_calls(loop, "verify")
        if not refines and yields and not any(
            _yield_is_guarded(module, y, loop) for y in yields
        ):
            # Pure streaming generator: every iteration yields, the
            # executor charges per received candidate.
            return
        what = (
            "refines candidates via verify()" if refines
            else "generates candidates behind guarded yields"
        )
        yield make_finding(
            MISSING_CHECKPOINT, module.path, loop.lineno,
            f"loop {what} but no checkpoint() dominates its iterations; "
            "budget deadlines and shard cancellation cannot interrupt it",
            context=module.context_of(loop),
        )


class EngineNeutralityPass(CheckPass):
    """SC002: kernel modules never touch the ``Relation`` substrate."""

    code = "SC002"
    name = "engine-neutrality"

    def __init__(
        self, patterns: tuple[str, ...] = KERNEL_MODULE_PATTERNS
    ) -> None:
        self._patterns = patterns

    def run(self, module: SourceModule) -> Iterable[Finding]:
        if not _is_kernel_module(module, self._patterns):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if "relation" in source.lower().split("."):
                    yield self._finding(
                        module, node,
                        f"imports from the substrate package {source!r}",
                    )
                    continue
            names: list[str] = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.Name):
                names = [node.id]
            elif isinstance(node, ast.Attribute):
                names = [node.attr]
            elif isinstance(node, ast.arg):
                names = [node.arg]
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                names = [node.name]
            for name in names:
                if "relation" in name.lower():
                    yield self._finding(
                        module, node,
                        f"references substrate identifier {name!r}",
                    )

    @staticmethod
    def _finding(
        module: SourceModule, node: ast.AST, what: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return make_finding(
            ENGINE_NEUTRALITY, module.path, line,
            f"kernel module {what}; kernels consume ExecutionContext "
            "slabs and row indices only",
            context=module.context_of(node),
        )
