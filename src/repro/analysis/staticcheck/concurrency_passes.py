"""Lock-order (SC004) and async-hygiene (SC007) analysis.

SC004 builds the project-wide lock acquisition graph: every
``with <lock>:`` statement is an acquisition site, nested acquisitions
and lock-holding calls contribute *order edges* (lock A held while B is
taken), and any cycle in that graph is a potential deadlock — two
threads entering the cycle from different nodes block forever.  Lock
identities are ``Class.attr`` (receiver variables are matched to
classes by name and by attribute-construction inference), so
``tenant.lock`` in the app and ``self.lock`` inside ``Tenant`` are the
same node.  Call edges are deliberately conservative: a call only
contributes its callee's locks when the callee resolves with high
confidence (same module, ``self.``, or an inferred receiver class);
an unresolvable call contributes nothing rather than a false cycle.

SC004 also flags a lock held across an ``await``: the event loop
parks the coroutine mid-critical-section while every other task —
including ones that need the same lock — is starved behind it.

SC007 flags blocking calls made directly inside ``async def`` bodies:
file I/O, ``fsync``, ``time.sleep`` and the engine entry points all
stall the entire event loop; handlers must push them through
``run_sync``/``run_in_thread``/``run_in_executor`` instead.  Work
wrapped in a lambda or nested function (the ``run_sync`` idiom) is a
separate scope and is not flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass, field

from .base import CheckPass, call_target, dotted_name, walk_scope
from .findings import (
    BLOCKING_IN_ASYNC,
    LOCK_ORDER,
    Finding,
    make_finding,
)
from .model import SourceModule

__all__ = ["AsyncBlockingPass", "LockOrderPass"]

_Func = ast.FunctionDef | ast.AsyncFunctionDef

#: Call tails that block the event loop when awaited nowhere.
BLOCKING_TAILS = frozenset({
    "open", "fsync", "sleep",
    # engine entry points: CPU-bound kernel work
    "apply_batch", "log_batch", "violations", "detect",
    "profile_relation", "repair_fds", "recover", "write_snapshot",
})
#: Dotted prefixes that make a blocking tail non-blocking (async APIs).
_ASYNC_SAFE_HEADS = frozenset({"asyncio", "loop", "self"})


def _is_lock_expr(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return "lock" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "lock" in expr.attr.lower()
    return False


@dataclass
class _LockSite:
    """One ``with <lock>:`` acquisition."""

    identity: str
    node: ast.With | ast.AsyncWith
    module: SourceModule
    function: _Func


@dataclass
class _FunctionInfo:
    key: str
    node: _Func
    module: SourceModule
    cls: str | None
    sites: list[_LockSite] = field(default_factory=list)
    calls: list[ast.Call] = field(default_factory=list)
    #: Transitive "may acquire" summary, filled by the fixpoint.
    summary: set[str] = field(default_factory=set)


class _ProjectIndex:
    """Classes, methods, attribute types across the analyzed modules."""

    def __init__(self, modules: list[SourceModule]) -> None:
        #: lowercase class name -> class name
        self.classes: dict[str, str] = {}
        #: (class name, method name) -> function key
        self.methods: dict[tuple[str, str], str] = {}
        #: module path -> {top-level callable name -> function key}
        self.module_level: dict[str, dict[str, str]] = {}
        #: attribute name -> class name (dropped on conflict)
        self.attr_types: dict[str, str | None] = {}
        self.functions: dict[str, _FunctionInfo] = {}
        for module in modules:
            self._index_module(module)

    def _index_module(self, module: SourceModule) -> None:
        top: dict[str, str] = {}
        self.module_level[module.path] = top
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self.classes[node.name.lower()] = node.name
                self._index_attr_types(node)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cls = self._enclosing_class(module, node)
            key = f"{module.path}::{cls or ''}::{node.name}"
            info = _FunctionInfo(
                key=key, node=node, module=module, cls=cls
            )
            self.functions[key] = info
            if cls is not None:
                self.methods.setdefault((cls, node.name), key)
                if node.name == "__init__":
                    self.methods.setdefault((cls, "__call_class__"), key)
            elif isinstance(module.parent(node), ast.Module):
                top[node.name] = key

    def _index_attr_types(self, cls: ast.ClassDef) -> None:
        """Record ``self.x = ClassName(...)`` / ``x: ClassName`` types."""
        for node in ast.walk(cls):
            attr: str | None = None
            type_name: str | None = None
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and isinstance(node.value, ast.Call)
            ):
                attr = node.targets[0].attr
                type_name = call_target(node.value).rsplit(".", 1)[-1]
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                attr = node.target.id
                type_name = self._annotation_class(node.annotation)
            if attr is None or not type_name:
                continue
            if not type_name[:1].isupper():
                continue
            if attr in self.attr_types and self.attr_types[attr] != type_name:
                self.attr_types[attr] = None  # conflicting; drop
            else:
                self.attr_types.setdefault(attr, type_name)

    @staticmethod
    def _annotation_class(annotation: ast.expr) -> str | None:
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id[:1].isupper():
                return node.id
        return None

    @staticmethod
    def _enclosing_class(
        module: SourceModule, node: ast.AST
    ) -> str | None:
        for anc in module.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc.name
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None
        return None

    def resolve_call(
        self, info: _FunctionInfo, call: ast.Call
    ) -> str | None:
        """Function key for a call, or ``None`` when not confident."""
        target = dotted_name(call.func)
        if target is None:
            return None
        parts = target.split(".")
        if len(parts) == 1:
            key = self.module_level[info.module.path].get(parts[0])
            if key is not None:
                return key
            cls = self.classes.get(parts[0].lower())
            if cls is not None:
                return self.methods.get((cls, "__call_class__"))
            return None
        receiver, method = parts[-2], parts[-1]
        if receiver == "self" and info.cls is not None:
            key = self.methods.get((info.cls, method))
            if key is not None:
                return key
        cls = self.classes.get(receiver.lower())
        if cls is None:
            inferred = self.attr_types.get(receiver)
            cls = inferred if inferred else None
        if cls is not None:
            return self.methods.get((cls, method))
        return None

    def lock_identity(
        self, info: _FunctionInfo, expr: ast.expr
    ) -> str:
        """Stable cross-module identity for a lock expression."""
        if isinstance(expr, ast.Name):
            return f"{info.module.name}:{expr.id}"
        assert isinstance(expr, ast.Attribute)
        receiver = dotted_name(expr.value) or "?"
        head = receiver.split(".")[-1]
        if head == "self" and info.cls is not None:
            return f"{info.cls}.{expr.attr}"
        cls = self.classes.get(head.lower()) or self.attr_types.get(head)
        if cls:
            return f"{cls}.{expr.attr}"
        return f"{head}.{expr.attr}"


class LockOrderPass(CheckPass):
    """SC004: cycles in the acquisition graph, locks held across await."""

    code = "SC004"
    name = "lock-order"

    def run_project(
        self, modules: list[SourceModule]
    ) -> Iterable[Finding]:
        index = _ProjectIndex(modules)
        self._collect(index)
        self._fixpoint(index)
        edges = self._edges(index)
        yield from self._report_cycles(edges)
        yield from self._await_under_lock(index)

    @staticmethod
    def _collect(index: _ProjectIndex) -> None:
        for info in index.functions.values():
            for node in walk_scope(info.node, include_root=False):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if _is_lock_expr(item.context_expr):
                            info.sites.append(_LockSite(
                                identity=index.lock_identity(
                                    info, item.context_expr
                                ),
                                node=node,
                                module=info.module,
                                function=info.node,
                            ))
                elif isinstance(node, ast.Call):
                    info.calls.append(node)

    @staticmethod
    def _fixpoint(index: _ProjectIndex) -> None:
        for info in index.functions.values():
            info.summary = {site.identity for site in info.sites}
        changed = True
        while changed:
            changed = False
            for info in index.functions.values():
                for call in info.calls:
                    key = index.resolve_call(info, call)
                    if key is None:
                        continue
                    callee = index.functions[key].summary
                    if not callee <= info.summary:
                        info.summary |= callee
                        changed = True

    @staticmethod
    def _edges(
        index: _ProjectIndex,
    ) -> dict[str, dict[str, tuple[str, int]]]:
        """held-lock -> taken-lock -> one (path, line) witness."""
        edges: dict[str, dict[str, tuple[str, int]]] = {}

        def add(held: str, taken: str, path: str, line: int) -> None:
            if taken == held:
                pass  # self-edges are real too (non-reentrant Lock)
            edges.setdefault(held, {}).setdefault(taken, (path, line))

        for info in index.functions.values():
            for site in info.sites:
                for node in walk_scope(site.node, include_root=False):
                    if isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            if _is_lock_expr(item.context_expr):
                                add(
                                    site.identity,
                                    index.lock_identity(
                                        info, item.context_expr
                                    ),
                                    info.module.path,
                                    node.lineno,
                                )
                    elif isinstance(node, ast.Call):
                        key = index.resolve_call(info, node)
                        if key is None:
                            continue
                        for taken in index.functions[key].summary:
                            add(
                                site.identity, taken,
                                info.module.path, node.lineno,
                            )
        return edges

    @staticmethod
    def _report_cycles(
        edges: dict[str, dict[str, tuple[str, int]]]
    ) -> Iterable[Finding]:
        seen_cycles: set[frozenset[str]] = set()
        for start in sorted(edges):
            stack = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in sorted(edges.get(node, {})):
                    if nxt == start:
                        cycle = frozenset(path)
                        if cycle in seen_cycles:
                            continue
                        seen_cycles.add(cycle)
                        witness_path, witness_line = edges[node][nxt]
                        chain = " -> ".join([*path, start])
                        yield make_finding(
                            LOCK_ORDER, witness_path, witness_line,
                            f"lock acquisition cycle: {chain}; two "
                            "threads entering at different nodes "
                            "deadlock",
                        )
                    elif nxt not in path:
                        stack.append((nxt, [*path, nxt]))
        return

    @staticmethod
    def _await_under_lock(index: _ProjectIndex) -> Iterable[Finding]:
        for info in index.functions.values():
            if not isinstance(info.node, ast.AsyncFunctionDef):
                continue
            for site in info.sites:
                if isinstance(site.node, ast.AsyncWith):
                    continue  # asyncio locks are await-safe by design
                for node in walk_scope(site.node, include_root=False):
                    if isinstance(node, ast.Await):
                        yield make_finding(
                            LOCK_ORDER, info.module.path, node.lineno,
                            f"lock {site.identity} held across an await; "
                            "the event loop parks this coroutine "
                            "mid-critical-section and starves every "
                            "task needing the lock",
                            context=info.module.context_of(node),
                        )
                        break


class AsyncBlockingPass(CheckPass):
    """SC007: no direct blocking calls inside ``async def`` bodies."""

    code = "SC007"
    name = "blocking-in-async"

    def run(self, module: SourceModule) -> Iterable[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in walk_scope(func, include_root=False):
                if not isinstance(node, ast.Call):
                    continue
                target = call_target(node)
                if not target:
                    continue
                parts = target.split(".")
                tail = parts[-1]
                if tail not in BLOCKING_TAILS:
                    continue
                if len(parts) > 1 and parts[0] in _ASYNC_SAFE_HEADS:
                    # asyncio.sleep / loop.* / self-delegation are the
                    # caller's own async machinery, not blocking work.
                    if tail == "sleep" or parts[0] != "self":
                        continue
                yield make_finding(
                    BLOCKING_IN_ASYNC, module.path, node.lineno,
                    f"blocking call {target}() directly inside async "
                    f"def {func.name}; route it through run_sync/"
                    "run_in_thread so the event loop keeps serving",
                    context=module.context_of(node),
                )
