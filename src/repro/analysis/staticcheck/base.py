"""Pass protocol and the small AST vocabulary every pass shares."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .findings import Finding
from .model import SourceModule

__all__ = [
    "CheckPass",
    "call_target",
    "dotted_name",
    "iter_functions",
    "walk_scope",
]

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def call_target(node: ast.Call) -> str:
    """Dotted target of a call (``""`` for computed callees)."""
    return dotted_name(node.func) or ""


def walk_scope(node: ast.AST, *, include_root: bool = True) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested def/class scopes.

    The bread and butter of "does *this function* do X" questions:
    a nested helper's body is its own scope and must not answer for
    its parent.
    """
    if include_root:
        yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _SCOPE_BARRIERS):
            continue
        yield from walk_scope(child, include_root=True)


def iter_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function in the tree, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class CheckPass:
    """One registered invariant check.

    Local passes override :meth:`run`; whole-program passes (lock
    ordering needs every acquisition site at once) override
    :meth:`run_project`.  A pass may implement both.
    """

    #: The SC code this pass emits (used for suppression matching).
    code: str = ""
    name: str = ""

    def run(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def run_project(
        self, modules: list[SourceModule]
    ) -> Iterable[Finding]:
        return ()
