"""The structured diagnostic vocabulary of the static analyzer.

Every finding carries a *stable* code so scripts and CI gates can match
on it; the code space is documented in ``docs/api.md`` and must never
be renumbered:

===== ======================= ========
code  name                    severity
===== ======================= ========
DD001 unknown-attribute       error
DD002 type-mismatch           warning
DD003 unsatisfiable-rule      error
DD004 trivial-rule            warning
DD005 dead-clause             warning
DD006 dead-atom               info
DD007 implied-rule            warning
DD008 duplicate-rule          warning
DD009 conflicting-rules       error
===== ======================= ========
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering supports ``max()`` aggregation."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class DiagnosticCode:
    """One registered code: stable identifier, name, default severity."""

    code: str
    name: str
    severity: Severity
    summary: str


UNKNOWN_ATTRIBUTE = DiagnosticCode(
    "DD001", "unknown-attribute", Severity.ERROR,
    "rule mentions an attribute absent from the relation schema",
)
TYPE_MISMATCH = DiagnosticCode(
    "DD002", "type-mismatch", Severity.WARNING,
    "atom is type-incompatible with the column it constrains",
)
UNSATISFIABLE_RULE = DiagnosticCode(
    "DD003", "unsatisfiable-rule", Severity.ERROR,
    "every deny clause is statically contradictory; the rule can never "
    "fire",
)
TRIVIAL_RULE = DiagnosticCode(
    "DD004", "trivial-rule", Severity.WARNING,
    "rule is structurally tautological (e.g. FD with RHS ⊆ LHS)",
)
DEAD_CLAUSE = DiagnosticCode(
    "DD005", "dead-clause", Severity.WARNING,
    "some (not all) deny clauses are statically contradictory",
)
DEAD_ATOM = DiagnosticCode(
    "DD006", "dead-atom", Severity.INFO,
    "atom is redundant inside its clause and can be dropped",
)
IMPLIED_RULE = DiagnosticCode(
    "DD007", "implied-rule", Severity.WARNING,
    "rule is implied by another rule via a family-tree embedding",
)
DUPLICATE_RULE = DiagnosticCode(
    "DD008", "duplicate-rule", Severity.WARNING,
    "rule duplicates an earlier rule",
)
CONFLICTING_RULES = DiagnosticCode(
    "DD009", "conflicting-rules", Severity.ERROR,
    "two rules cannot be satisfied together on non-trivial data",
)

#: Stable code -> registration, in numbering order.
CODES: dict[str, DiagnosticCode] = {
    c.code: c
    for c in (
        UNKNOWN_ATTRIBUTE,
        TYPE_MISMATCH,
        UNSATISFIABLE_RULE,
        TRIVIAL_RULE,
        DEAD_CLAUSE,
        DEAD_ATOM,
        IMPLIED_RULE,
        DUPLICATE_RULE,
        CONFLICTING_RULES,
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    severity: Severity
    rule: str
    message: str
    location: str = ""
    #: Names/locations of other rules involved (implication, conflicts).
    related: tuple[str, ...] = field(default_factory=tuple)

    @property
    def name(self) -> str:
        return CODES[self.code].name

    def render(self) -> str:
        where = f" ({self.location})" if self.location else ""
        text = (
            f"{self.code} [{self.severity}] {self.rule}{where}: "
            f"{self.message}"
        )
        if self.related:
            text += f" [see: {', '.join(self.related)}]"
        return text

    def __str__(self) -> str:
        return self.render()


def make(code: DiagnosticCode, rule: str, message: str,
         location: str = "", related: tuple[str, ...] = ()) -> Diagnostic:
    """Build a diagnostic with the code's registered severity."""
    return Diagnostic(
        code=code.code,
        severity=code.severity,
        rule=rule,
        message=message,
        location=location,
        related=related,
    )
