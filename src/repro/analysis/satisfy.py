"""Static satisfiability facts about plan clauses — zero data access.

A deny-form clause *fires* when every atom holds; a clause no
assignment of values can make fire is **dead** (statically
contradictory), and a rule all of whose clauses are dead can never
report a violation.  This module derives those facts by:

* **twin contradiction** — an atom and its structural negation in one
  clause (sound for every atom type: ``negated`` flips the evaluated
  result, so the conjunction is identically false);
* **contradiction closure on comparison atoms** — a constraint graph
  over the terms of non-negated SQL comparison atoms; a cycle through a
  strict edge is unsatisfiable (all values on a firing chain are
  defined and mutually comparable, hence totally ordered);
* **interval arithmetic** — constant atoms on one term, and metric /
  theta threshold atoms on one distance, intersected with careful
  NaN bookkeeping (an ``"interval"``-semantics metric atom *accepts*
  NaN; a ``"within"`` atom rejects it).

Two modes:

* **strict** (``assume_clean=False``) — only facts valid for arbitrary
  data, including ``None`` cells, NaN distances, and incomparable
  types.  The plan simplifier uses these, so rewrites are
  equivalence-preserving on any relation (the parity suite pins this).
* **assume-clean** (``assume_clean=True``) — additionally assumes
  comparisons are defined (no ``None``) and metrics are total (no NaN),
  which lets negated comparison atoms participate.  The linter uses
  this for *diagnostics only*; it never changes evaluation.

Constant reasoning is restricted to builtin scalar types (numbers,
strings), whose orderings are total and transitive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..plan.ir import (
    Clause,
    CmpAtom,
    ConstAtom,
    FnAtom,
    MetricAtom,
    NotNullAtom,
    PatternAtom,
    Plan,
    PredicateAtom,
    ResemblanceAtom,
    ThetaAtom,
)

_COMPLEMENT = {
    "=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<",
}

#: Op implication on one term: a true strong op makes the weak one true.
_WEAKENS = {"<": ("<=", "!="), ">": (">=", "!="), "=": ("<=", ">=")}


def _obj_key(obj: Any) -> Any:
    """A dict-key stand-in for arbitrary objects (identity fallback)."""
    try:
        hash(obj)
    except TypeError:
        return ("id@", id(obj))
    return obj


def atom_key(atom: PredicateAtom) -> tuple[Any, ...]:
    """A structural identity key: equal keys ⇒ identical evaluation."""
    if isinstance(atom, CmpAtom):
        return ("cmp", atom.lhs_var, atom.lhs_attr, atom.op, atom.rhs_var,
                atom.rhs_attr, atom.semantics, atom.negated)
    if isinstance(atom, ConstAtom):
        return ("const", atom.var, atom.attr, atom.op,
                type(atom.constant).__name__, _obj_key(atom.constant),
                atom.negated)
    if isinstance(atom, PatternAtom):
        return ("pat", atom.var, atom.attr, _obj_key(atom.entry))
    if isinstance(atom, MetricAtom):
        return ("metric", atom.attribute, atom.interval, atom.semantics,
                atom.negated, _obj_key(atom.metric), id(atom.registry)
                if atom.registry is not None else None)
    if isinstance(atom, ThetaAtom):
        return ("theta", _obj_key(atom.fn), id(atom.registry), atom.negated)
    if isinstance(atom, ResemblanceAtom):
        return ("res", id(atom.ffd))
    if isinstance(atom, NotNullAtom):
        return ("notnull", atom.attrs)
    if isinstance(atom, FnAtom):
        return ("fn", id(atom.fn), atom.attrs, atom.symmetric)
    return ("opaque", id(atom))


def negation_key(key: tuple[Any, ...]) -> tuple[Any, ...] | None:
    """The key of the structural negation twin, when the type has one."""
    if key[0] == "cmp" or key[0] == "const" or key[0] == "theta":
        return key[:-1] + (not key[-1],)
    if key[0] == "metric":
        return key[:4] + (not key[4],) + key[5:]
    return None


# -- pseudo-intervals over the extended reals --------------------------------


@dataclass
class _Range:
    """A (possibly empty) interval with individually open endpoints."""

    lo: float = -math.inf
    lo_open: bool = False
    hi: float = math.inf
    hi_open: bool = False

    def empty(self) -> bool:
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    def clip_low(self, bound: float, open_: bool) -> None:
        if bound > self.lo or (bound == self.lo and open_):
            self.lo, self.lo_open = bound, open_

    def clip_high(self, bound: float, open_: bool) -> None:
        if bound < self.hi or (bound == self.hi and open_):
            self.hi, self.hi_open = bound, open_

    def contains(self, value: float) -> bool:
        if value < self.lo or (value == self.lo and self.lo_open):
            return False
        if value > self.hi or (value == self.hi and self.hi_open):
            return False
        return True

    def apply_op(self, op: str, c: float) -> None:
        if op == "<":
            self.clip_high(c, True)
        elif op == "<=":
            self.clip_high(c, False)
        elif op == ">":
            self.clip_low(c, True)
        elif op == ">=":
            self.clip_low(c, False)
        elif op == "=":
            self.clip_low(c, False)
            self.clip_high(c, False)

    def inside(self, interval: Any) -> bool:
        """Whether this whole (nonempty) range lies inside an Interval."""
        lo_ok = self.lo > interval.low or (
            self.lo == interval.low
            and (not interval.low_open or self.lo_open)
        )
        hi_ok = self.hi < interval.high or (
            self.hi == interval.high
            and (not interval.high_open or self.hi_open)
        )
        return lo_ok and hi_ok


def _scalar_family(value: Any) -> str | None:
    """'num' / 'str' for totally-ordered builtin scalars, else None."""
    if isinstance(value, bool) or isinstance(value, (int, float)):
        if isinstance(value, float) and math.isnan(value):
            return None
        return "num"
    if isinstance(value, str):
        return "str"
    return None


# -- the per-clause analysis --------------------------------------------------


@dataclass
class ClauseFacts:
    """What static reasoning established about one clause."""

    #: Human-readable reason the clause can never fire, else None.
    contradiction: str | None = None
    #: (atom index, reason) for atoms provably redundant in the clause.
    redundant: list[tuple[int, str]] = field(default_factory=list)

    @property
    def dead(self) -> bool:
        return self.contradiction is not None


def _effective_op(op: str, negated: bool) -> str:
    return _COMPLEMENT[op] if negated else op


def _strict_cycle(edges: list[tuple[Any, Any, bool]]) -> bool:
    """Is there a cycle through a strict edge? (tiny-graph reachability)"""
    adjacency: dict[Any, list[Any]] = {}
    for u, v, _ in edges:
        adjacency.setdefault(u, []).append(v)
    for u, v, strict in edges:
        if not strict:
            continue
        # Strict edge u -> v: contradiction iff v reaches u.
        seen = {v}
        frontier = [v]
        while frontier:
            node = frontier.pop()
            if node == u:
                return True
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
    return False


def _cmp_facts(
    atoms: list[tuple[int, CmpAtom]],
    facts: ClauseFacts,
    assume_clean: bool,
) -> None:
    """Comparison-atom reasoning: same-term folds, closure, subsumption."""
    usable: list[tuple[int, str, tuple[Any, ...], tuple[Any, ...]]] = []
    for idx, atom in atoms:
        left = (atom.lhs_var, atom.lhs_attr)
        right = (atom.rhs_var, atom.rhs_attr)
        if atom.semantics == "py":
            if left == right:
                # Identity-shortcut equality of a cell with itself is a
                # tautology for *any* value, including NaN and None.
                if atom.negated:
                    facts.contradiction = f"{atom} is identically false"
                    return
                facts.redundant.append((idx, f"{atom} is identically true"))
            continue
        if left == right:
            if not atom.negated and atom.op in ("<", ">"):
                # x < x is false for every defined value and SQL-false
                # for None/NaN, so the atom never holds.
                facts.contradiction = f"{atom} can never hold"
                return
            if assume_clean:
                op = _effective_op(atom.op, atom.negated)
                if op in ("<", ">", "!="):
                    facts.contradiction = (
                        f"{atom} can never hold on clean data"
                    )
                    return
                facts.redundant.append(
                    (idx, f"{atom} always holds on clean data")
                )
            continue
        if not atom.negated:
            usable.append((idx, atom.op, left, right))
        elif assume_clean:
            usable.append(
                (idx, _effective_op(atom.op, True), left, right)
            )

    # Same-term-pair folds: = vs !=, and strong-op subsumption.
    by_pair: dict[tuple[Any, Any], dict[str, int]] = {}
    for idx, op, left, right in usable:
        by_pair.setdefault((left, right), {}).setdefault(op, idx)
    for ops in by_pair.values():
        if "=" in ops and "!=" in ops:
            facts.contradiction = "term compared both = and != to the same term"
            return
        for strong, weak_ops in _WEAKENS.items():
            if strong not in ops:
                continue
            for weak in weak_ops:
                if weak in ops:
                    facts.redundant.append(
                        (ops[weak], f"implied by the {strong} atom")
                    )

    # Contradiction closure: order-constraint graph over the terms.
    edges: list[tuple[Any, Any, bool]] = []
    for _, op, left, right in usable:
        if op == "<":
            edges.append((left, right, True))
        elif op == "<=":
            edges.append((left, right, False))
        elif op == ">":
            edges.append((right, left, True))
        elif op == ">=":
            edges.append((right, left, False))
        elif op == "=":
            edges.append((left, right, False))
            edges.append((right, left, False))
    if _strict_cycle(edges):
        facts.contradiction = (
            "comparison atoms form a strict cycle (e.g. x < y ∧ y < x)"
        )


def _const_facts(
    atoms: list[tuple[int, ConstAtom]],
    facts: ClauseFacts,
    assume_clean: bool,
) -> None:
    """Interval arithmetic on constant atoms, per (tuple var, attribute)."""
    by_term: dict[tuple[str, str, str], list[tuple[int, str, Any]]] = {}
    for idx, atom in atoms:
        if atom.constant is None:
            # SQL: a comparison against NULL is false no matter the op.
            if atom.negated:
                facts.redundant.append(
                    (idx, f"{atom} always holds (NULL comparison)")
                )
            else:
                facts.contradiction = (
                    f"{atom} compares against None and can never hold"
                )
                return
            continue
        family = _scalar_family(atom.constant)
        if family is None:
            continue
        if atom.negated and not assume_clean:
            continue
        op = _effective_op(atom.op, atom.negated)
        by_term.setdefault((atom.var, atom.attr, family), []).append(
            (idx, op, atom.constant)
        )

    for (var, attr, family), items in by_term.items():
        term = f"t{var}.{attr}"
        if family == "num":
            rng = _Range()
            ne: list[Any] = []
            eq: list[Any] = []
            for _, op, c in items:
                value = float(c)
                if op == "!=":
                    ne.append(value)
                    continue
                if op == "=":
                    eq.append(value)
                rng.apply_op(op, value)
            if rng.empty():
                facts.contradiction = (
                    f"constant bounds on {term} have empty intersection"
                )
                return
            if eq and any(v != eq[0] for v in eq):
                facts.contradiction = (
                    f"{term} pinned to two different constants"
                )
                return
            if eq and any(v == eq[0] for v in ne):
                facts.contradiction = (
                    f"{term} required both = and != the same constant"
                )
                return
        else:
            eq_s: list[str] = [c for _, op, c in items if op == "="]
            ne_s: list[str] = [c for _, op, c in items if op == "!="]
            if eq_s and any(v != eq_s[0] for v in eq_s):
                facts.contradiction = (
                    f"{term} pinned to two different constants"
                )
                return
            if eq_s and eq_s[0] in ne_s:
                facts.contradiction = (
                    f"{term} required both = and != the same constant"
                )
                return

    if assume_clean:
        # Mixed-family constants on one term: a single value cannot
        # satisfy an order/equality test against both a number and a
        # string (cross-type comparisons are SQL-false).
        seen: dict[tuple[str, str], set[str]] = {}
        for (var, attr, family), items in by_term.items():
            if any(op != "!=" for _, op, _ in items):
                seen.setdefault((var, attr), set()).add(family)
        for (var, attr), families in seen.items():
            if len(families) > 1:
                facts.contradiction = (
                    f"t{var}.{attr} constrained against constants of "
                    "incompatible types"
                )
                return


def _metric_facts(
    atoms: list[tuple[int, MetricAtom]],
    facts: ClauseFacts,
    assume_clean: bool,
) -> None:
    """Threshold arithmetic on one distance, with NaN bookkeeping.

    All atoms on one *measure* (attribute + metric binding) constrain
    the same distance ``d``.  ``"interval"`` semantics accept NaN
    (every ``Interval.contains`` comparison is false), ``"within"``
    rejects it; negation flips both parts.
    """
    by_measure: dict[Any, list[tuple[int, MetricAtom]]] = {}
    for idx, atom in atoms:
        key = (atom.attribute, _obj_key(atom.metric),
               id(atom.registry) if atom.registry is not None else None)
        by_measure.setdefault(key, []).append((idx, atom))

    for (attr, _, _), group in by_measure.items():
        positive: list[tuple[int, MetricAtom]] = []
        negative: list[tuple[int, MetricAtom]] = []
        for idx, atom in group:
            (negative if atom.negated else positive).append((idx, atom))

        rng = _Range()
        nan_ok = True  # does every positive atom accept a NaN distance?
        for _, atom in positive:
            if atom.semantics == "within":
                rng.clip_high(atom.interval.high, False)
                nan_ok = False
            else:
                iv = atom.interval
                rng.clip_low(iv.low, iv.low_open)
                if iv.high != math.inf or iv.high_open:
                    rng.clip_high(iv.high, iv.high_open)
        if positive and rng.empty() and (not nan_ok or assume_clean):
            facts.contradiction = (
                f"distance bounds on {attr} have empty intersection"
            )
            return

        for idx, atom in negative:
            if atom.semantics == "within":
                # Fires iff d > high, or d is NaN — the NaN escape only
                # helps when every positive atom accepts NaN.
                if positive and not rng.empty() and not nan_ok:
                    if rng.hi <= atom.interval.high:
                        facts.contradiction = (
                            f"distance on {attr} required both within "
                            f"{rng.hi:g} and beyond {atom.interval.high:g}"
                        )
                        return
            else:
                # Fires iff d ∉ interval and d is not NaN (a NaN
                # distance is *inside* every Interval, so the negation
                # rejects it) — NaN can never rescue this combination.
                if positive and not rng.empty() and rng.inside(atom.interval):
                    facts.contradiction = (
                        f"distance bounds on {attr} land entirely inside "
                        f"the excluded range {atom.interval}"
                    )
                    return

        # Redundancy among positive atoms of one semantics.
        withins = [
            (idx, a) for idx, a in positive if a.semantics == "within"
        ]
        if len(withins) > 1:
            keep = min(withins, key=lambda item: item[1].interval.high)
            for idx, a in withins:
                if idx != keep[0] and a.interval.high >= keep[1].interval.high:
                    facts.redundant.append(
                        (idx, f"implied by the tighter ≤{keep[1].interval.high:g}"
                              f" bound on {attr}")
                    )
        ranges = [
            (idx, a) for idx, a in positive if a.semantics == "interval"
        ]
        for idx, a in ranges:
            for other_idx, other in ranges:
                if other_idx == idx:
                    continue
                if a.interval.subsumes(other.interval) and (
                    a.interval != other.interval or other_idx < idx
                ):
                    facts.redundant.append(
                        (idx, f"implied by the tighter {other.interval} "
                              f"range on {attr}")
                    )
                    break


def analyze_clause(
    clause: Clause, *, assume_clean: bool = False
) -> ClauseFacts:
    """Derive contradiction/redundancy facts for one clause."""
    facts = ClauseFacts()
    keys = [atom_key(a) for a in clause.atoms]
    seen: dict[tuple[Any, ...], int] = {}
    key_set = set(keys)
    for idx, key in enumerate(keys):
        first = seen.get(key)
        if first is None:
            seen[key] = idx
        else:
            facts.redundant.append(
                (idx, f"duplicate of atom {first + 1}")
            )
        twin = negation_key(key)
        if twin is not None and twin in key_set:
            facts.contradiction = (
                f"clause contains both {clause.atoms[idx]} and its negation"
            )
            return facts

    cmps = [
        (i, a) for i, a in enumerate(clause.atoms) if isinstance(a, CmpAtom)
    ]
    consts = [
        (i, a) for i, a in enumerate(clause.atoms) if isinstance(a, ConstAtom)
    ]
    metrics = [
        (i, a) for i, a in enumerate(clause.atoms)
        if isinstance(a, MetricAtom)
    ]
    for step in (
        lambda: _cmp_facts(cmps, facts, assume_clean),
        lambda: _const_facts(consts, facts, assume_clean),
        lambda: _metric_facts(metrics, facts, assume_clean),
    ):
        step()
        if facts.dead:
            return facts
    # Dedupe redundancy records (several rules can flag one atom).
    unique: dict[int, str] = {}
    for idx, reason in facts.redundant:
        unique.setdefault(idx, reason)
    facts.redundant = sorted(unique.items())
    return facts


def analyze_plan(
    plan: Plan, *, assume_clean: bool = False
) -> list[ClauseFacts]:
    """Per-clause facts for a whole plan, in clause order."""
    return [
        analyze_clause(c, assume_clean=assume_clean) for c in plan.clauses
    ]
