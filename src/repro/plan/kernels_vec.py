"""Vectorized columnar kernels: whole-clause evaluation as array ops.

The scalar kernels in :mod:`repro.plan.kernels` prune the pair space
well but still refine every candidate one pair at a time through a
Python ``verify`` callback.  This module evaluates whole deny-form
clauses as batch numpy operations over the dictionary-encoded column
slabs exposed by an :class:`~repro.plan.slabs.ExecutionContext`:

* equality / inequality atoms become code-column comparisons on
  candidate index arrays (with per-code lookup tables for the SQL
  self-comparison corner cases — NaN, ``None``);
* order and interval atoms become float-column comparisons and
  ``searchsorted`` windows over the context's cached sorted
  projections;
* metric atoms (``abs_diff``) become blocked arithmetic with explicit
  ``None``/NaN class corrections mirroring :meth:`Metric.distance`.

The result of the clause masks is a *violation index array*; the
notation's ``verify`` callback is invoked only for the pairs that
survive every mask, so it runs O(violations) times instead of
O(candidates) times.  Semantics are unchanged: every atom's batch
evaluation reproduces its scalar ``eval`` bit-for-bit, and the parity
suites (``test_plan_parity``, ``test_vector_parity``) drive all three
paths — naive, scalar plan, vectorized plan — to identical reports.

Binding is *dynamic*: :func:`bind` returns ``None`` whenever any atom
of the plan cannot be vectorized for this context (opaque predicates,
non-numeric order columns, exotic metrics, unhashable cells), and the
caller falls back to the scalar kernels.  Candidate generation streams
index blocks of at most :data:`_CHUNK` pairs, charging each block to
the ambient budget ``checkpoint`` so deadlines and ``max_pairs`` caps
still bite mid-batch.

The streamed blocks double as the **shard unit** for the parallel
executor: block generation is deterministic for a given (plan, slabs)
pair, so ``shard=(k, m)`` simply keeps every m-th block — shards
partition the candidate pair space exactly, and the merged results are
byte-identical to a single-process run.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator
from typing import Any

import numpy as np

from ..runtime import checkpoint
from ..runtime.errors import BudgetExhausted
from .ir import (
    CmpAtom,
    ConstAtom,
    MetricAtom,
    NotNullAtom,
    PatternAtom,
    Plan,
    _sql_compare,
)
from .slabs import ExecutionContext

#: Candidate pairs per streamed block (and per budget checkpoint).
_CHUNK = 1 << 16
#: Bind-time cap on the sweep kernel's inner work (candidate rows x
#: prefix lengths); beyond it the scalar sweep is the better engine.
_SWEEP_WORK_CAP = 1 << 26

_Arr = Any  # numpy ndarray (kept opaque: numpy is an optional dep)
_AtomFn = Callable[[_Arr, _Arr], _Arr]
_BlockIter = Iterator[tuple[_Arr, _Arr]]

_NP_OPS: dict[str, Any] = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


# -- column data -------------------------------------------------------------


class _Col:
    """Per-column kernel arrays: codes, float projection, validity."""

    __slots__ = ("codes", "floats", "valid", "values", "name")

    def __init__(
        self, codes: _Arr, floats: _Arr | None, valid: _Arr,
        values: list[Any], name: str,
    ) -> None:
        self.codes = codes
        self.floats = floats
        self.valid = valid
        self.values = values
        self.name = name


def _gather_columns(
    ctx: ExecutionContext, attrs: set[str]
) -> dict[str, _Col] | None:
    out: dict[str, _Col] = {}
    for a in attrs:
        try:
            codes, floats, valid = ctx.gather(a)
            values = ctx.distinct_values(a)
        except BudgetExhausted:
            raise  # exhaustion must propagate, never degrade to scalar
        except Exception:
            # Unknown attribute (SchemaError) or unhashable cells
            # (TypeError from the codebook build): not encodable.
            return None
        out[a] = _Col(codes, floats, valid, values, a)
    return out


def _lut(col: _Col, fn: Callable[[Any], bool]) -> _Arr:
    """Per-distinct-value truth table, indexed by dictionary code."""
    return np.fromiter(
        (bool(fn(v)) for v in col.values), dtype=bool, count=len(col.values)
    )


# -- atom binding ------------------------------------------------------------


def _bind_cmp(atom: CmpAtom, cols: dict[str, _Col]) -> _AtomFn | None:
    lhs, rhs = cols[atom.lhs_attr], cols[atom.rhs_attr]
    neg = atom.negated
    from .ir import ALPHA

    lhs_alpha = atom.lhs_var == ALPHA
    rhs_alpha = atom.rhs_var == ALPHA

    if atom.semantics == "py":
        # py "=" is the 1-tuple identity-shortcut equality — exactly the
        # dictionary-code equivalence, so code comparison is exact.
        if atom.lhs_attr != atom.rhs_attr:
            return None
        c = lhs.codes

        def eval_py(p: _Arr, q: _Arr) -> _Arr:
            m = c[p if lhs_alpha else q] == c[p if rhs_alpha else q]
            return ~m if neg else m

        return eval_py

    if atom.lhs_attr == atom.rhs_attr and atom.op in ("=", "!="):
        # Same-column SQL (in)equality via codes.  Equal codes mean
        # dict-equal values; the per-code LUT supplies the SQL
        # self-comparison (False for None and NaN under "=",
        # True for NaN under "!=").
        c = lhs.codes
        if atom.op == "=":
            self_eq = _lut(lhs, lambda v: _sql_compare("=", v, v))

            def eval_eq(p: _Arr, q: _Arr) -> _Arr:
                lc = c[p if lhs_alpha else q]
                m = (lc == c[p if rhs_alpha else q]) & self_eq[lc]
                return ~m if neg else m

            return eval_eq
        self_ne = _lut(lhs, lambda v: _sql_compare("!=", v, v))
        valid = lhs.valid

        def eval_ne(p: _Arr, q: _Arr) -> _Arr:
            lp = p if lhs_alpha else q
            rp = p if rhs_alpha else q
            lc, rc = c[lp], c[rp]
            m = valid[lp] & valid[rp] & ((lc != rc) | self_ne[lc])
            return ~m if neg else m

        return eval_ne

    # Cross-column or order comparison: needs exact float projections.
    if lhs.floats is None or rhs.floats is None:
        return None
    fl, fr = lhs.floats, rhs.floats
    if atom.op == "!=":
        # numpy NaN != x is True, but SQL None never compares — mask the
        # None cells explicitly (actual NaN cells must keep numpy's
        # answer, which matches Python's).
        vl, vr = lhs.valid, rhs.valid

        def eval_fne(p: _Arr, q: _Arr) -> _Arr:
            lp = p if lhs_alpha else q
            rp = p if rhs_alpha else q
            m = vl[lp] & vr[rp] & (fl[lp] != fr[rp])
            return ~m if neg else m

        return eval_fne
    op = _NP_OPS[atom.op]

    def eval_f(p: _Arr, q: _Arr) -> _Arr:
        # NaN (and the None -> NaN projection) compares False under
        # every remaining operator — the SQL rule, for free.
        m = op(fl[p if lhs_alpha else q], fr[p if rhs_alpha else q])
        return ~m if neg else m

    return eval_f


def _bind_const(atom: ConstAtom, cols: dict[str, _Col]) -> _AtomFn:
    from .ir import ALPHA

    col = cols[atom.attr]
    lut = _lut(
        col, lambda v: _sql_compare(atom.op, v, atom.constant)
    )
    if atom.negated:
        lut = ~lut
    c = col.codes
    if atom.var == ALPHA:
        return lambda p, q: lut[c[p]]
    return lambda p, q: lut[c[q]]


def _bind_pattern(atom: PatternAtom, cols: dict[str, _Col]) -> _AtomFn | None:
    from .ir import ALPHA

    col = cols[atom.attr]
    try:
        lut = _lut(col, atom.entry.matches)
    except BudgetExhausted:
        raise  # exhaustion must propagate, never degrade to scalar
    except Exception:
        return None
    c = col.codes
    if atom.var == ALPHA:
        return lambda p, q: lut[c[p]]
    return lambda p, q: lut[c[q]]


def _bind_notnull(atom: NotNullAtom, cols: dict[str, _Col]) -> _AtomFn:
    valids = [cols[a].valid for a in atom.attrs]

    def eval_nn(p: _Arr, q: _Arr) -> _Arr:
        m = np.ones(len(p), dtype=bool)
        for v in valids:
            m &= v[p] & v[q]
        return m

    return eval_nn


def _bind_metric(
    atom: MetricAtom, ctx: ExecutionContext, cols: dict[str, _Col]
) -> _AtomFn | None:
    from ..metrics.numeric import ABS_DIFF

    try:
        metric = atom.resolve_metric(ctx)
    except BudgetExhausted:
        raise  # exhaustion must propagate, never degrade to scalar
    except Exception:
        return None
    if metric is not ABS_DIFF:
        # Only the numeric distance has a known batch form; text and
        # custom metrics stay on the scalar path.
        return None
    col = cols[atom.attribute]
    if col.floats is None:
        return None
    f, valid = col.floats, col.valid
    neg = atom.negated
    within = atom.semantics == "within"
    iv = atom.interval
    low, high = float(iv.low), float(iv.high)
    low_open, high_open = bool(iv.low_open), bool(iv.high_open)

    def eval_metric(p: _Arr, q: _Arr) -> _Arr:
        with np.errstate(invalid="ignore"):
            d = np.abs(f[p] - f[q])
        # Metric.distance None rules: d(None, None) = 0, one-sided = inf
        # (the float projection turns None into NaN, which would
        # otherwise contaminate the arithmetic).
        vp, vq = valid[p], valid[q]
        both_none = ~vp & ~vq
        one_none = vp ^ vq
        if both_none.any():
            d = np.where(both_none, 0.0, d)
        if one_none.any():
            d = np.where(one_none, np.inf, d)
        if within:
            # NaN <= high is False: NaN distances are not "within".
            m = d <= high
        else:
            # Interval.contains as a negated-outside test, so a NaN
            # distance (all comparisons False) lands *inside*.
            bad = (d < low) | (d > high)
            if low_open:
                bad |= d == low
            if high_open:
                bad |= d == high
            m = ~bad
        return ~m if neg else m

    return eval_metric


def _bind_atom(
    atom: Any, ctx: ExecutionContext, cols: dict[str, _Col]
) -> _AtomFn | None:
    # Exact-type dispatch: a subclass could override ``eval``, and the
    # batch forms below reproduce only the base-class semantics.
    kind = type(atom)
    if kind is CmpAtom:
        return _bind_cmp(atom, cols)
    if kind is ConstAtom:
        return _bind_const(atom, cols)
    if kind is PatternAtom:
        return _bind_pattern(atom, cols)
    if kind is NotNullAtom:
        return _bind_notnull(atom, cols)
    if kind is MetricAtom:
        return _bind_metric(atom, ctx, cols)
    return None


# -- streaming candidate blocks ----------------------------------------------


def _stream_ranges(
    anchors: _Arr, starts: _Arr, ends: _Arr, pool: _Arr
) -> _BlockIter:
    """Pairs ``(anchors[k], pool[starts[k]:ends[k]])`` in bounded blocks.

    The concatenated-arange expansion: one ``searchsorted`` per block
    recovers each flat offset's owning anchor, so arbitrary per-anchor
    partner ranges stream without ever materializing the full pair set.
    """
    counts = ends - starts
    keep = counts > 0
    if not keep.any():
        return
    anchors, starts = anchors[keep], starts[keep]
    counts = counts[keep]
    cum = np.concatenate(([0], np.cumsum(counts)))
    total = int(cum[-1])
    pos = 0
    while pos < total:
        stop = min(pos + _CHUNK, total)
        flat = np.arange(pos, stop, dtype=np.int64)
        owner = np.searchsorted(cum, flat, side="right") - 1
        q = pool[starts[owner] + (flat - cum[owner])]
        p = anchors[owner]
        yield np.minimum(p, q), np.maximum(p, q)
        pos = stop


def _triangle_blocks(members: _Arr) -> _BlockIter:
    """All unordered pairs within ``members`` (ascending row ids)."""
    k = len(members)
    if k < 2:
        return
    pos = np.arange(k, dtype=np.int64)
    yield from _stream_ranges(
        members, pos + 1, np.full(k, k, dtype=np.int64), members
    )


def _cross_blocks(a: _Arr, b: _Arr) -> _BlockIter:
    """All pairs across two disjoint row sets."""
    if len(a) == 0 or len(b) == 0:
        return
    yield from _stream_ranges(
        a,
        np.zeros(len(a), dtype=np.int64),
        np.full(len(a), len(b), dtype=np.int64),
        b,
    )


def _scan_blocks(n: int, rmask: _Arr | None) -> _BlockIter:
    if rmask is None:
        rows = np.arange(n, dtype=np.int64)
        yield from _stream_ranges(
            rows, rows + 1, np.full(n, n, dtype=np.int64), rows
        )
        return
    rs = np.flatnonzero(rmask).astype(np.int64)
    # Mirror the scalar scan: every pair touching a restricted row,
    # each exactly once — partners above the anchor (all rows), plus
    # non-restricted partners below it.
    yield from _stream_ranges(
        rs, rs + 1, np.full(len(rs), n, dtype=np.int64), np.arange(n, dtype=np.int64)
    )
    unrestricted = np.flatnonzero(~rmask).astype(np.int64)
    below = np.searchsorted(unrestricted, rs).astype(np.int64)
    yield from _stream_ranges(
        rs, np.zeros(len(rs), dtype=np.int64), below, unrestricted
    )


def _group_blocks(
    ctx: ExecutionContext, eq_attrs: tuple[str, ...]
) -> _BlockIter:
    codes = np.asarray(ctx.combined_codes(eq_attrs))
    order = np.argsort(codes, kind="stable").astype(np.int64)
    ordered = codes[order]
    ends = np.searchsorted(ordered, ordered, side="right").astype(np.int64)
    pos = np.arange(len(order), dtype=np.int64)
    yield from _stream_ranges(order, pos + 1, ends, order)


def _metric_blocks(
    ctx: ExecutionContext, atom: MetricAtom, col: _Col
) -> _BlockIter:
    rows_s, vals_s = ctx.sorted_projection(col.name)
    iv = atom.interval
    within = atom.semantics == "within"
    low, high = (0.0, float(iv.high)) if within else (
        float(iv.low), float(iv.high)
    )
    lo_side = "right" if (iv.low_open and not within) else "left"
    hi_side = "left" if iv.high_open else "right"
    m = len(rows_s)
    if m:
        with np.errstate(invalid="ignore"):
            starts = np.searchsorted(
                vals_s, vals_s + low, side=lo_side
            ).astype(np.int64)
            if high == math.inf:
                ends = np.full(m, m, dtype=np.int64)
            else:
                ends = np.searchsorted(
                    vals_s, vals_s + high, side=hi_side
                ).astype(np.int64)
        pos = np.arange(m, dtype=np.int64)
        starts = np.maximum(starts, pos + 1)
        yield from _stream_ranges(rows_s, starts, ends, rows_s)
    # None / NaN classes: their distances are fixed by Metric.distance
    # (None-None = 0, one-sided None = inf, NaN arithmetic = NaN), so
    # whole class blocks are accepted or rejected wholesale.
    f, valid = col.floats, col.valid
    none_rows = np.flatnonzero(~valid).astype(np.int64)
    with np.errstate(invalid="ignore"):
        nan_rows = np.flatnonzero(valid & np.isnan(f)).astype(np.int64)
    if none_rows.size:
        if atom.accepts_distance(0.0):
            yield from _triangle_blocks(none_rows)
        if atom.accepts_distance(math.inf):
            yield from _cross_blocks(
                none_rows, np.flatnonzero(valid).astype(np.int64)
            )
    if nan_rows.size and atom.accepts_distance(math.nan):
        yield from _triangle_blocks(nan_rows)
        yield from _cross_blocks(nan_rows, rows_s)


class _SweepPrep:
    """Bind-time product of the vectorized sorted-sweep."""

    __slots__ = ("rows_s", "block_start", "tie_runs", "clauses", "cand")

    def __init__(
        self,
        rows_s: _Arr,
        block_start: _Arr,
        tie_runs: list[tuple[int, int]],
        clauses: list[tuple[_Arr, Any, bool, _Arr]],
        cand: _Arr,
    ) -> None:
        self.rows_s = rows_s
        self.block_start = block_start
        self.tie_runs = tie_runs
        self.clauses = clauses
        self.cand = cand


def _sweep_prep(
    ctx: ExecutionContext, spec: Any, cols: dict[str, _Col]
) -> _SweepPrep | None:
    """Vectorize the scalar sweep: prefix extrema find the candidate
    rows, per-candidate float comparisons recover their partners."""
    if spec.sort_kind == "str":
        return None
    sort_col = cols.get(spec.sort_attr)
    if sort_col is None or sort_col.floats is None:
        return None
    for store_attr, query_attr, _, _, kind in spec.clauses:
        if kind == "str":
            return None
        for a in (store_attr, query_attr):
            c = cols.get(a)
            if c is None or c.floats is None:
                return None
    rows_s, vals_s = ctx.sorted_projection(spec.sort_attr)
    m = len(rows_s)
    if m == 0:
        return _SweepPrep(
            rows_s, np.zeros(0, dtype=np.int64), [], [], np.zeros(0, np.int64)
        )
    block_start = np.searchsorted(vals_s, vals_s, side="left").astype(np.int64)
    tie_runs: list[tuple[int, int]] = []
    if not spec.strict:
        run_end = np.searchsorted(vals_s, vals_s, side="right")
        run_bounds = np.flatnonzero(block_start == np.arange(m))
        for s in run_bounds.tolist():
            e = int(run_end[s])
            if e - s > 1:
                tie_runs.append((s, e))
    has_prior = block_start > 0
    prev = np.maximum(block_start - 1, 0)
    any_fire = np.zeros(m, dtype=bool)
    clauses: list[tuple[_Arr, Any, bool, _Arr]] = []
    for store_attr, query_attr, eff_op, negated, _ in spec.clauses:
        stored = cols[store_attr].floats[rows_s]
        qvals = cols[query_attr].floats[rows_s]
        smin = np.fmin.accumulate(stored)
        smax = np.fmax.accumulate(stored)
        with np.errstate(invalid="ignore"):
            bad_cum = np.cumsum(np.isnan(stored))
            pmin = np.where(has_prior, smin[prev], np.nan)
            pmax = np.where(has_prior, smax[prev], np.nan)
            pbad = np.where(has_prior, bad_cum[prev], 0)
            qnan = np.isnan(qvals)
            if negated:
                if eff_op == "<":
                    fire = pmax >= qvals
                elif eff_op == "<=":
                    fire = pmax > qvals
                elif eff_op == ">":
                    fire = pmin <= qvals
                else:
                    fire = pmin < qvals
                fire = fire | (pbad > 0) | (qnan & has_prior)
            else:
                if eff_op == "<":
                    fire = pmin < qvals
                elif eff_op == "<=":
                    fire = pmin <= qvals
                elif eff_op == ">":
                    fire = pmax > qvals
                else:
                    fire = pmax >= qvals
        any_fire |= fire
        clauses.append((stored, _NP_OPS[eff_op], bool(negated), qvals))
    cand = np.flatnonzero(any_fire).astype(np.int64)
    if cand.size and int(block_start[cand].sum()) > _SWEEP_WORK_CAP:
        # Too much prefix work for the per-candidate pass — the scalar
        # sweep's incremental structures handle this regime better.
        return None
    return _SweepPrep(rows_s, block_start, tie_runs, clauses, cand)


def _sweep_blocks(prep: _SweepPrep) -> _BlockIter:
    rows_s = prep.rows_s
    for s, e in prep.tie_runs:
        yield from _triangle_blocks(rows_s[s:e])
    buf_p: list[_Arr] = []
    buf_q: list[_Arr] = []
    buffered = 0
    for k, t in enumerate(prep.cand.tolist()):
        # Each candidate does O(prefix) vector work but may buffer or
        # drop every partner without yielding; poll the budget in
        # batches so deadlines and shard cancellation still bite.
        if k % 256 == 0:
            checkpoint()
        b = int(prep.block_start[t])
        if b == 0:
            continue
        fire = np.zeros(b, dtype=bool)
        for stored, op, negated, qvals in prep.clauses:
            with np.errstate(invalid="ignore"):
                cm = op(stored[:b], qvals[t])
            if negated:
                cm = ~cm
            fire |= cm
            if fire.all():
                break
        partners = rows_s[:b][fire]
        if partners.size == 0:
            continue
        anchor = np.full(len(partners), int(rows_s[t]), dtype=np.int64)
        buf_p.append(np.minimum(partners, anchor))
        buf_q.append(np.maximum(partners, anchor))
        buffered += len(partners)
        if buffered >= _CHUNK:
            yield np.concatenate(buf_p), np.concatenate(buf_q)
            buf_p, buf_q, buffered = [], [], 0
    if buffered:
        yield np.concatenate(buf_p), np.concatenate(buf_q)


# -- bound plans -------------------------------------------------------------


class VecPlan:
    """A plan bound to one context's column arrays, ready to stream."""

    __slots__ = (
        "plan", "ctx", "n", "clauses", "strategy", "symmetric",
        "_eq_attrs", "_metric_atom", "_metric_col", "_sweep",
    )

    def __init__(
        self,
        plan: Plan,
        ctx: ExecutionContext,
        clauses: list[list[_AtomFn]],
        strategy: str,
        eq_attrs: tuple[str, ...] | None = None,
        metric_atom: MetricAtom | None = None,
        metric_col: _Col | None = None,
        sweep: _SweepPrep | None = None,
    ) -> None:
        self.plan = plan
        self.ctx = ctx
        self.n = ctx.n
        self.clauses = clauses
        self.strategy = strategy
        self.symmetric = all(
            a.symmetric for c in plan.clauses for a in c.atoms
        )
        self._eq_attrs = eq_attrs
        self._metric_atom = metric_atom
        self._metric_col = metric_col
        self._sweep = sweep

    def denies(self, p: _Arr, q: _Arr) -> _Arr:
        """Mask of pairs denied with t_α = p, t_β = q (exact)."""
        out = np.zeros(len(p), dtype=bool)
        for clause in self.clauses:
            cm = np.ones(len(p), dtype=bool)
            for ev in clause:
                cm &= ev(p, q)
                if not cm.any():
                    break
            out |= cm
            if out.all():
                break
        return out

    def violation_mask(self, p: _Arr, q: _Arr) -> _Arr:
        """Denied in either orientation (one pass for symmetric plans)."""
        m = self.denies(p, q)
        if not self.symmetric:
            m = m | self.denies(q, p)
        return m

    def blocks(self, rmask: _Arr | None) -> _BlockIter:
        source: _BlockIter
        if self.strategy == "group":
            assert self._eq_attrs is not None
            source = _group_blocks(self.ctx, self._eq_attrs)
        elif self.strategy == "sweep":
            assert self._sweep is not None
            source = _sweep_blocks(self._sweep)
        elif self.strategy == "metric":
            assert self._metric_atom is not None
            assert self._metric_col is not None
            source = _metric_blocks(
                self.ctx, self._metric_atom, self._metric_col
            )
        else:
            yield from _scan_blocks(self.n, rmask)
            return
        if rmask is None:
            yield from source
            return
        for p, q in source:
            # A restriction mask can drop whole blocks, leaving the
            # consumer nothing to charge; poll per source block.
            checkpoint()
            keep = rmask[p] | rmask[q]
            if keep.any():
                yield p[keep], q[keep]


def bind(plan: Plan, ctx: ExecutionContext) -> VecPlan | None:
    """Bind a plan to one context's arrays, or ``None`` to fall back.

    The returned strategy mirrors the scalar selection (group > sweep >
    metric > scan); when the structurally preferred kernel cannot be
    vectorized for *this* context (string order columns, exotic
    metrics) the whole binding is refused rather than degraded to a
    blind vec-scan, because the scalar kernel keeps the pruning.
    """
    attrs = {
        a for c in plan.clauses for atom in c.atoms
        for a in atom.attributes()
    }
    cols = _gather_columns(ctx, attrs)
    if cols is None:
        return None
    clauses: list[list[_AtomFn]] = []
    for c in plan.clauses:
        bound: list[_AtomFn] = []
        for atom in c.atoms:
            fn = _bind_atom(atom, ctx, cols)
            if fn is None:
                return None
            bound.append(fn)
        clauses.append(bound)
    if plan.arity == 1:
        return VecPlan(plan, ctx, clauses, "rows")
    from .kernels import (
        _shared_equality_attrs,
        _shared_metric_atom,
        _sweep_spec,
        _sweep_struct,
    )

    eq_attrs = _shared_equality_attrs(plan)
    if eq_attrs:
        return VecPlan(plan, ctx, clauses, "group", eq_attrs=eq_attrs)
    struct = _sweep_struct(plan)
    if struct is not None:
        spec = _sweep_spec(struct, ctx)
        if spec is None:
            return None
        prep = _sweep_prep(ctx, spec, cols)
        if prep is None:
            return None
        return VecPlan(plan, ctx, clauses, "sweep", sweep=prep)
    atom = _shared_metric_atom(plan)
    if atom is not None:
        from ..metrics.numeric import ABS_DIFF

        try:
            metric = atom.resolve_metric(ctx)
        except BudgetExhausted:
            raise  # exhaustion must propagate, never degrade to scalar
        except Exception:
            return None
        col = cols[atom.attribute]
        if metric is not ABS_DIFF or col.floats is None:
            return None
        return VecPlan(
            plan, ctx, clauses, "metric",
            metric_atom=atom, metric_col=col,
        )
    return VecPlan(plan, ctx, clauses, "scan")


# -- executors ---------------------------------------------------------------


def run_pairs(
    vp: VecPlan,
    verify: Callable[[int, int], Any],
    *,
    restrict: set[int] | None = None,
    first_only: bool = False,
    shard: tuple[int, int] | None = None,
) -> list[tuple[Any, Any]]:
    """Stream candidate blocks, mask them, verify only the survivors.

    Returns the raw ``(sort_key, payload)`` hits; the caller sorts.
    Examined pairs and block checkpoints are charged exactly like the
    scalar executor, so budgets and fault injection see the same
    accounting regardless of backend.

    ``shard=(k, m)`` keeps only every m-th streamed block (by block
    ordinal, which is deterministic per (plan, slabs)): shards
    partition the candidate pair space exactly, each shard charges only
    its own blocks to the counters/budget, and the per-block totals sum
    across shards to the unsharded run's totals.
    """
    from .kernels import COUNTERS

    rmask: _Arr | None = None
    if restrict is not None:
        rmask = np.zeros(vp.n, dtype=bool)
        rows = [r for r in restrict if 0 <= r < vp.n]
        if not rows:
            return []
        rmask[rows] = True
    hits: list[tuple[Any, Any]] = []
    for ordinal, (p, q) in enumerate(vp.blocks(rmask)):
        if shard is not None and ordinal % shard[1] != shard[0]:
            continue
        size = len(p)
        if size == 0:
            continue
        COUNTERS.pairs_examined += size
        COUNTERS.chunks += 1
        checkpoint(pairs=size)
        mask = vp.violation_mask(p, q)
        if not mask.any():
            continue
        pv, qv = p[mask], q[mask]
        order = np.argsort(pv * np.int64(vp.n) + qv, kind="stable")
        for k in order.tolist():
            hit = verify(int(pv[k]), int(qv[k]))
            if hit is not None:
                hits.append(hit)
                if first_only:
                    return hits
    return hits


def run_rows(
    vp: VecPlan,
    verify: Callable[[int], Any],
    *,
    restrict: set[int] | None = None,
    first_only: bool = False,
) -> list[tuple[Any, Any]]:
    """Single-tuple plans: one mask pass over the row index array."""
    from .kernels import COUNTERS

    if restrict is not None:
        rows = np.asarray(
            sorted(r for r in restrict if 0 <= r < vp.n), dtype=np.int64
        )
    else:
        rows = np.arange(vp.n, dtype=np.int64)
    hits: list[tuple[Any, Any]] = []
    for s in range(0, len(rows), _CHUNK):
        chunk = rows[s:s + _CHUNK]
        COUNTERS.chunks += 1
        checkpoint()
        mask = vp.denies(chunk, chunk)
        for r in chunk[mask].tolist():
            hit = verify(int(r))
            if hit is not None:
                hits.append(hit)
                if first_only:
                    return hits
    return hits
