"""Lowering every pairwise/measured notation into the plan IR.

:func:`compile_dependency` makes the family tree's subsumption edges
executable: each notation's violation condition is rewritten as a
deny-form plan (guards ∧ ¬consequent per clause), the same shape the
paper uses to embed FDs/ODs/eCFDs into DCs (Section 4.3).  Guard atoms
are constructed **once** and shared by identity across clauses, which is
how the kernels recognize them (see :meth:`Plan.shared_atoms`).

Notations with genuinely non-pairwise semantics (MVDs, FHDs, CFDs with
their single-tuple pattern part, SDs over sorted sequences,
conjunctions) raise :class:`PlanCompileError`; unknown *pairwise*
subclasses never fail — they get a generic one-atom fallback plan that
wraps their own ``pair_violation``, so the plan layer can always take
over the scan loop.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.base import MeasuredDependency, PairwiseDependency
from ..core.heterogeneous.constraints import Interval
from .ir import (
    ALPHA,
    BETA,
    Clause,
    CmpAtom,
    ConstAtom,
    FnAtom,
    MetricAtom,
    NotNullAtom,
    PatternAtom,
    Plan,
    PlanCompileError,
    PredicateAtom,
    ResemblanceAtom,
    ThetaAtom,
)

_LOWERINGS: dict[type, Callable] = {}


def lowering(cls: type) -> Callable:
    """Register the lowering for one notation class (exact type match)."""

    def register(fn: Callable) -> Callable:
        _LOWERINGS[cls] = fn
        return fn

    return register


def compile_dependency(dep) -> Plan:
    """Lower a dependency into an evaluation plan.

    Measured notations wrapping an embedded base notation (AFD, SFD,
    PFD) compile to the embedded plan with a note recording the
    threshold comparison — their *evidence* is the embedded violations;
    whether the measured constraint holds stays a threshold test.
    """
    for cls in type(dep).__mro__:
        fn = _LOWERINGS.get(cls)
        if fn is not None:
            return fn(dep)
    embedded = getattr(dep, "embedded", None)
    if isinstance(dep, MeasuredDependency) and embedded is not None:
        plan = compile_dependency(embedded)
        return Plan(
            dep.label(),
            plan.clauses,
            arity=plan.arity,
            style=plan.style,
            source=dep,
            note=(
                f"measured: holds iff measure {dep.measure_direction} "
                f"{dep.threshold:g}"
            ),
        )
    if isinstance(dep, PairwiseDependency):
        return _generic_pairwise(dep)
    raise PlanCompileError(
        f"{type(dep).__name__} has no pair-plan lowering "
        f"({dep.kind}: not universally quantified over tuple pairs)"
    )


def _generic_pairwise(dep, note: str = "") -> Plan:
    """Fallback: one opaque atom wrapping the notation's own predicate.

    ``pair_violation`` receives the unordered pair and checks both
    orientations itself (the scanner contract), so the atom is
    symmetric by construction.
    """
    atom = FnAtom(
        lambda relation, i, j, dep=dep: dep.pair_violation(
            relation, min(i, j), max(i, j)
        )
        is not None,
        dep.attributes(),
        symmetric=True,
        text=f"pair_violation[{dep.kind}]",
    )
    return Plan(
        dep.label(),
        [Clause([atom])],
        source=dep,
        note=note or "generic fallback: no structural lowering registered",
    )


def _py_eq(attr: str, negated: bool = False) -> CmpAtom:
    return CmpAtom(ALPHA, attr, "=", BETA, attr, "py", negated=negated)


def _guarded(guards, consequents) -> list[Clause]:
    """One clause per consequent: guards ∧ ¬consequent_k (deny form)."""
    return [Clause(list(guards) + [c]) for c in consequents]


def _condition_atoms(condition) -> list[PredicateAtom]:
    """Pattern-condition atoms on *both* tuple variables (CDD/CMD)."""
    atoms: list[PredicateAtom] = []
    for attr, entry in condition.entries().items():
        if entry.is_wildcard:
            continue
        atoms.append(PatternAtom(ALPHA, attr, entry))
        atoms.append(PatternAtom(BETA, attr, entry))
    return atoms


def _similarity_atom(p, registry, negated: bool = False) -> MetricAtom:
    """A SimilarityPredicate as a within-threshold metric atom."""
    return MetricAtom(
        p.attribute,
        Interval.at_most(p.threshold),
        "within",
        negated=negated,
        metric=p.metric,
        registry=registry,
    )


def compile_guards(dep) -> Plan:
    """The plan matching the pairs a notation's LHS selects.

    Match/support/confidence measures (MD.matches, NED support, CD
    confidence, PAC pair counts) quantify over LHS-selected pairs, not
    violations; this is the pruning plan for that query.  Note the CMD
    guard deliberately omits the condition — ``MD.matches`` counts
    LHS-similar pairs regardless of it.
    """
    from ..core.heterogeneous.cd import CD
    from ..core.heterogeneous.md import MD
    from ..core.heterogeneous.ned import NED
    from ..core.heterogeneous.pac import PAC

    if isinstance(dep, (MD, NED, PAC)):
        atoms = [_similarity_atom(p, dep.registry) for p in dep.lhs]
    elif isinstance(dep, CD):
        atoms = [ThetaAtom(f, dep.registry) for f in dep.lhs]
    else:
        raise PlanCompileError(
            f"{type(dep).__name__} has no guard-pair plan"
        )
    return Plan(f"{dep.label()} [guards]", [Clause(atoms)], source=dep)


def _register_all() -> None:
    from ..core.categorical.fd import FD
    from ..core.heterogeneous.cd import CD
    from ..core.heterogeneous.dd import CDD, DD
    from ..core.heterogeneous.ffd import FFD
    from ..core.heterogeneous.md import CMD, MD
    from ..core.heterogeneous.mfd import MFD
    from ..core.heterogeneous.ned import NED
    from ..core.heterogeneous.pac import PAC
    from ..core.numerical.dc import DC
    from ..core.numerical.od import OD
    from ..core.numerical.ofd import OFD

    @lowering(FD)
    def _compile_fd(dep: FD) -> Plan:
        guards = [_py_eq(a) for a in dep.lhs]
        return Plan(
            dep.label(),
            _guarded(guards, [_py_eq(b, negated=True) for b in dep.rhs]),
            source=dep,
        )

    @lowering(MFD)
    def _compile_mfd(dep: MFD) -> Plan:
        guards = [_py_eq(a) for a in dep.lhs]
        consequents = [
            # Interval semantics: a NaN distance never witnesses a
            # violation, matching the legacy max-combine (max(0, nan)
            # keeps 0).
            MetricAtom(
                b,
                Interval.at_most(dep.delta),
                "interval",
                negated=True,
                registry=dep.registry,
            )
            for b in dep.rhs
        ]
        return Plan(dep.label(), _guarded(guards, consequents), source=dep)

    @lowering(NED)
    def _compile_ned(dep: NED) -> Plan:
        guards = [_similarity_atom(p, dep.registry) for p in dep.lhs]
        consequents = [
            _similarity_atom(p, dep.registry, negated=True) for p in dep.rhs
        ]
        return Plan(dep.label(), _guarded(guards, consequents), source=dep)

    @lowering(PAC)
    def _compile_pac(dep: PAC) -> Plan:
        guards = [_similarity_atom(p, dep.registry) for p in dep.lhs]
        consequents = [
            _similarity_atom(p, dep.registry, negated=True) for p in dep.rhs
        ]
        return Plan(
            dep.label(),
            _guarded(guards, consequents),
            source=dep,
            note=(
                f"measured: holds iff measure >= {dep.confidence:g} "
                "(violations are the X-close, Y-far pairs)"
            ),
        )

    def _dd_clauses(dep: DD, extra) -> list[Clause]:
        guards = list(extra) + [
            MetricAtom(a, interval, "interval", registry=dep.registry)
            for a, interval in dep.lhs.ranges.items()
        ]
        consequents = [
            MetricAtom(
                a, interval, "interval", negated=True, registry=dep.registry
            )
            for a, interval in dep.rhs.ranges.items()
        ]
        return _guarded(guards, consequents)

    @lowering(DD)
    def _compile_dd(dep: DD) -> Plan:
        return Plan(dep.label(), _dd_clauses(dep, []), source=dep)

    @lowering(CDD)
    def _compile_cdd(dep: CDD) -> Plan:
        return Plan(
            dep.label(),
            _dd_clauses(dep, _condition_atoms(dep.condition)),
            source=dep,
        )

    def _md_clauses(dep: MD, extra) -> list[Clause]:
        guards = list(extra) + [
            _similarity_atom(p, dep.registry) for p in dep.lhs
        ]
        consequents = [_py_eq(b, negated=True) for b in dep.rhs]
        return _guarded(guards, consequents)

    @lowering(MD)
    def _compile_md(dep: MD) -> Plan:
        return Plan(dep.label(), _md_clauses(dep, []), source=dep)

    @lowering(CMD)
    def _compile_cmd(dep: CMD) -> Plan:
        return Plan(
            dep.label(),
            _md_clauses(dep, _condition_atoms(dep.condition)),
            source=dep,
        )

    @lowering(CD)
    def _compile_cd(dep: CD) -> Plan:
        guards = [ThetaAtom(f, dep.registry) for f in dep.lhs]
        consequents = [ThetaAtom(dep.rhs, dep.registry, negated=True)]
        return Plan(dep.label(), _guarded(guards, consequents), source=dep)

    @lowering(FFD)
    def _compile_ffd(dep: FFD) -> Plan:
        return Plan(
            dep.label(), [Clause([ResemblanceAtom(dep)])], source=dep
        )

    @lowering(OFD)
    def _compile_ofd(dep: OFD) -> Plan:
        attrs = tuple(dict.fromkeys(dep.lhs + dep.rhs))
        notnull = NotNullAtom(attrs)
        if dep.ordering != "pointwise":
            # Lexicographic ordering compares whole tuples; it does not
            # decompose into per-attribute atoms.
            atom = FnAtom(
                lambda relation, i, j, dep=dep: dep._leq(
                    relation.values_at(i, dep.lhs),
                    relation.values_at(j, dep.lhs),
                )
                and not dep._leq(
                    relation.values_at(i, dep.rhs),
                    relation.values_at(j, dep.rhs),
                ),
                attrs,
                text="lex: tα.X <= tβ.X ∧ ¬(tα.Y <= tβ.Y)",
            )
            return Plan(dep.label(), [Clause([notnull, atom])], source=dep)
        guards = [notnull] + [
            CmpAtom(ALPHA, a, "<=", BETA, a) for a in dep.lhs
        ]
        consequents = [
            CmpAtom(ALPHA, b, "<=", BETA, b, negated=True) for b in dep.rhs
        ]
        return Plan(dep.label(), _guarded(guards, consequents), source=dep)

    @lowering(OD)
    def _compile_od(dep: OD) -> Plan:
        guards = [
            CmpAtom(ALPHA, m.attribute, m.mark, BETA, m.attribute)
            for m in dep.lhs
        ]
        consequents = [
            CmpAtom(ALPHA, m.attribute, m.mark, BETA, m.attribute,
                    negated=True)
            for m in dep.rhs
        ]
        return Plan(dep.label(), _guarded(guards, consequents), source=dep)

    @lowering(DC)
    def _compile_dc(dep: DC) -> Plan:
        atoms: list[PredicateAtom] = []
        for p in dep.predicates:
            op = "=" if p.op == "==" else p.op
            if p.is_constant:
                atoms.append(
                    ConstAtom(p.lhs_var, p.lhs_attribute, op, p.constant)
                )
            else:
                atoms.append(
                    CmpAtom(
                        p.lhs_var, p.lhs_attribute, op,
                        p.rhs_var, p.rhs_attribute,
                    )
                )
        if dep.is_single_tuple:
            return Plan(
                dep.label(), [Clause(atoms)], arity=1, source=dep
            )
        return Plan(
            dep.label(), [Clause(atoms)], style="ordered", source=dep
        )


_register_all()
