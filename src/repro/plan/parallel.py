"""Sharded parallel execution of pair plans across worker processes.

The engine-neutral refactor (kernels consume an immutable
:class:`~repro.plan.slabs.ExecutionContext`, never a live substrate
handle) makes checking embarrassingly parallel: the candidate
generators in :mod:`repro.plan.kernels` / :mod:`repro.plan.kernels_vec`
accept a ``shard=(k, m)`` selector that partitions the candidate space
exactly — by partition group, metric bucket, sorted-sweep position, or
streamed ≤65536-pair vector block — so ``m`` workers each walk a
disjoint slice and the union is pair-for-pair the single-core run.

This module owns the fan-out:

* **selection** — ``REPRO_WORKERS`` / :func:`set_workers` /
  :func:`workers` mirror the ``REPRO_KERNEL_BACKEND`` pattern; an
  explicit ``workers=`` argument wins outright, the ambient mode
  additionally respects a minimum row count so small checks stay
  serial (``REPRO_PARALLEL_MIN_ROWS``, default 2048);
* **transport** — column slabs ship once per snapshot through
  ``multiprocessing.shared_memory`` (:meth:`ExecutionContext.share`)
  and are cached per token in each worker; unshareable snapshots fall
  back to inline pickling, unpicklable ones to serial execution;
* **determinism** — every shard returns *keyed* hits; the parent
  concatenates and sorts once, which is byte-identical to the serial
  executor's sort because shard keys are disjoint;
* **governance** — the parent's ambient :class:`Budget` is projected
  into each worker (remaining deadline, memory cap) and stitched back
  through a :class:`~repro.runtime.budget.ShardToken`: workers publish
  their work into per-slot accounting (so *global* pair/candidate caps
  bite), and cancellation — from the parent's poll loop or any
  exhausted sibling — is observed at the next cooperative checkpoint;
* **accounting** — per-worker :class:`KernelCounters` snapshot deltas
  come home with the results and merge into the parent's counters, so
  parent totals equal the sum of worker totals.

Any infrastructure failure (broken pool, unpicklable payloads, forking
off the main thread before a pool exists) degrades to ``None`` and the
entry layer runs the identical serial path.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..runtime.budget import ShardToken

from .ir import kernel_backend_mode
from .slabs import (
    ColumnSlabs,
    ExecutionContext,
    context_for,
    load_shared,
    release_shared,
)

_WORKERS_ENV = "REPRO_WORKERS"
_MIN_ROWS_ENV = "REPRO_PARALLEL_MIN_ROWS"
_DEFAULT_MIN_ROWS = 2048
_POLL_S = 0.05

#: Programmatic worker-count override (wins over the environment).
_workers_override: int | None = None
#: Set in worker processes: nested entry points stay serial.
_in_worker = False


def set_workers(n: int | None) -> None:
    """Force the ambient worker count (``None`` defers to the env)."""
    global _workers_override
    if n is not None and int(n) < 1:
        raise ValueError(f"worker count must be >= 1, got {n!r}")
    _workers_override = None if n is None else int(n)


@contextmanager
def workers(n: int | None) -> Iterator[None]:
    """Temporarily force the worker count (tests and benchmarks)."""
    global _workers_override
    previous = _workers_override
    set_workers(n)
    try:
        yield
    finally:
        _workers_override = previous


def workers_mode() -> int | None:
    """The ambient worker count: override, else ``REPRO_WORKERS``."""
    if _workers_override is not None:
        return _workers_override
    raw = os.environ.get(_WORKERS_ENV, "")
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None


def _min_rows() -> int:
    try:
        return int(os.environ.get(_MIN_ROWS_ENV, ""))
    except ValueError:
        return _DEFAULT_MIN_ROWS


def resolve_workers(explicit: int | None, n_rows: int) -> int:
    """The worker count one execution should use.

    An explicit ``workers=`` argument wins outright (the caller asked);
    the ambient mode (override / ``REPRO_WORKERS``) applies only to
    snapshots of at least ``REPRO_PARALLEL_MIN_ROWS`` rows, so a
    fleet-wide ``REPRO_WORKERS=4`` (the CI matrix leg) doesn't tax
    every tiny unit-test check with process dispatch.
    """
    if _in_worker:
        return 1
    if explicit is not None:
        return max(1, int(explicit))
    mode = workers_mode()
    if mode is None or mode <= 1:
        return 1
    if n_rows < _min_rows():
        return 1
    return mode


# -- worker pool -------------------------------------------------------------

_pool: ProcessPoolExecutor | None = None
_pool_size = 0
_pool_lock = threading.Lock()


def _get_pool(n: int) -> ProcessPoolExecutor | None:
    """A fork-context pool with at least ``n`` slots, if obtainable.

    Pools are created (and re-created larger) only from the main
    thread: forking a multi-threaded parent from a helper thread is
    how deadlocks are made.  Off-main-thread callers reuse whatever
    pool exists — a smaller pool still completes all ``n`` shards,
    just with less overlap — or get ``None`` (serial fallback); a
    server warms the pool at startup (:func:`warm_pool`) precisely so
    its event-loop threads land in the reuse case.
    """
    global _pool, _pool_size
    with _pool_lock:
        if _pool is not None and _pool_size >= n:
            return _pool
        on_main = threading.current_thread() is threading.main_thread()
        if not on_main:
            return _pool
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
        import multiprocessing

        mp = multiprocessing.get_context("fork")
        _pool = ProcessPoolExecutor(max_workers=n, mp_context=mp)
        _pool_size = n
        return _pool


def warm_pool(n: int) -> None:
    """Pre-create the worker pool (call from the main thread, once)."""
    _get_pool(n)


def shutdown() -> None:
    """Tear down the pool and release owned shared-memory slabs."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
            _pool = None
            _pool_size = 0
    release_shared()


atexit.register(shutdown)


# -- worker side -------------------------------------------------------------

#: Per-worker context cache, keyed by slab token: one snapshot is
#: attached/decoded once per worker, not once per shard task.
_CTX_CACHE: dict[str, ExecutionContext] = {}
_CTX_CACHE_CAP = 4


def _worker_context(payload: dict[str, Any]) -> ExecutionContext:
    handle = payload.get("handle")
    slabs = payload.get("slabs")
    token = handle.token if handle is not None else slabs.token
    ctx = _CTX_CACHE.get(token)
    if ctx is None:
        if handle is not None:
            slabs = load_shared(handle)
        ctx = slabs.to_context()
        _CTX_CACHE[token] = ctx
        while len(_CTX_CACHE) > _CTX_CACHE_CAP:
            _CTX_CACHE.pop(next(iter(_CTX_CACHE)))
    return ctx


def _run_shard(blob: bytes) -> bytes:
    """Run one shard in a worker process; returns a pickled result dict."""
    global _in_worker
    _in_worker = True
    payload: dict[str, Any] = pickle.loads(blob)
    from ..relation.encoding import substrate_mode
    from ..runtime import Budget, governed
    from ..runtime.budget import ShardToken
    from ..runtime.errors import BudgetExhausted
    from . import entry
    from .ir import kernel_backend
    from .kernels import COUNTERS, execute_pairs_keyed

    ctx = _worker_context(payload)
    dep = payload["dep"]
    mode = payload["mode"]
    if mode == "guard":
        plan = entry.guard_plan_for(dep)
    else:
        plan = entry.plan_for(dep)
    verify = entry.build_verify(mode, dep, ctx.source(), payload.get("extra"))
    restrict = payload["restrict"]
    rset: set[int] | None = None if restrict is None else set(restrict)
    shard: tuple[int, int] = tuple(payload["shard"])  # type: ignore[assignment]

    token: ShardToken | None = None
    budget: Budget | None = None
    spec = payload.get("budget")
    if spec is not None:
        token = ShardToken.attach(spec["token"])
        budget = Budget(
            deadline_s=spec["deadline_s"],
            max_memory_bytes=spec["max_memory_bytes"],
        )
        budget.bind_token(token, shard[0])
    exhausted = ""
    strategy = ""
    hits: list[tuple[Any, Any]] = []
    before = COUNTERS.snapshot()
    try:
        with kernel_backend(payload["backend"]):
            with substrate_mode(payload["substrate"]):
                with governed(budget):
                    strategy, hits = execute_pairs_keyed(
                        plan, ctx, verify, restrict=rset, shard=shard
                    )
    except BudgetExhausted as exc:
        exhausted = exc.reason
    finally:
        if token is not None:
            if budget is not None:
                token.publish(shard[0], budget.candidates, budget.pairs)
            token.close()
    delta = COUNTERS.snapshot().diff(before)
    return pickle.dumps(
        {
            "hits": hits,
            "strategy": strategy,
            "counters": delta,
            "candidates": budget.candidates if budget is not None else 0,
            "pairs": budget.pairs if budget is not None else 0,
            "exhausted": exhausted,
        }
    )


# -- parent side -------------------------------------------------------------

#: Introspection record of the most recent parallel run (tests).
_last_run: dict[str, Any] | None = None


def last_run() -> dict[str, Any] | None:
    """The most recent fan-out's merge record, or ``None``."""
    return _last_run


def _expired_reason(budget: Any) -> str:
    if budget.exhausted:
        reason: str = budget.exhausted
        return reason
    if (
        budget.max_candidates is not None
        and budget.candidates >= budget.max_candidates
    ):
        return "candidates"
    if budget.max_pairs is not None and budget.pairs >= budget.max_pairs:
        return "pairs"
    return "deadline"


def execute_parallel(
    dep: Any,
    source: Any,
    *,
    mode: str,
    extra: Any = None,
    restrict: "set[int] | None" = None,
    workers: int,
) -> "list[Any] | None":
    """Fan one pair-plan execution across ``workers`` shard processes.

    Returns the merged, sorted payload list — byte-identical to the
    serial executor — or ``None`` when the fan-out cannot run here
    (no pool obtainable, unpicklable dependency/snapshot, broken
    pool), in which case the caller runs the serial path.  Raises
    :class:`BudgetExhausted` exactly like the serial path when the
    governing budget runs out, after absorbing the work the shards
    already performed.
    """
    global _last_run
    from ..relation.encoding import encoded_enabled
    from ..runtime import current_budget
    from ..runtime.budget import ShardToken
    from .kernels import COUNTERS

    pool = _get_pool(workers)
    if pool is None:
        return None
    ctx = context_for(source)
    handle = None
    slabs = None
    try:
        handle = ctx.share()
    # staticcheck: disable=SC008 — shm sharing is an optimization; any
    # failure falls back to pickled slabs, then to the serial path.
    except Exception:
        try:
            slabs = ColumnSlabs.from_context(ctx)
        # staticcheck: disable=SC008 — unpicklable snapshot state: the
        # serial executor handles this dependency with zero loss.
        except Exception:
            return None
    base: dict[str, Any] = {
        "mode": mode,
        "dep": dep,
        "extra": extra,
        "restrict": None if restrict is None else sorted(restrict),
        "backend": kernel_backend_mode(),
        "substrate": "encoded" if encoded_enabled() else "naive",
        "handle": handle,
        "slabs": slabs,
    }
    budget = current_budget()
    token: ShardToken | None = None
    if budget is not None:
        budget.start()

        def headroom(cap: "int | None", spent: int) -> "int | None":
            return None if cap is None else max(0, cap - spent)

        token = ShardToken.create(
            workers,
            max_candidates=headroom(budget.max_candidates, budget.candidates),
            max_pairs=headroom(budget.max_pairs, budget.pairs),
        )
        budget.attach_token(token)
        base["budget"] = {
            "token": token.name,
            "deadline_s": budget.remaining_s(),
            "max_memory_bytes": budget.max_memory_bytes,
        }

    def release_token() -> None:
        # Idempotent: the finally below runs on *every* exit path
        # (including KeyboardInterrupt mid-merge), and the earlier
        # explicit callers must not double-close the segment.
        nonlocal token
        if token is not None:
            released, token = token, None
            if budget is not None:
                budget.detach_token(released)
            released.close()
            released.unlink()

    try:
        return _run_sharded(
            pool, base, workers, budget, token, ctx, handle, mode
        )
    finally:
        release_token()


def _run_sharded(
    pool: Any,
    base: "dict[str, Any]",
    workers: int,
    budget: Any,
    token: "ShardToken | None",
    ctx: Any,
    handle: Any,
    mode: str,
) -> "list[Any] | None":
    """Body of :func:`execute_parallel` once the shard token exists.

    The caller owns the token and releases it in a ``finally``; this
    helper may use it but never closes it.
    """
    global _last_run
    from .kernels import COUNTERS

    try:
        blobs = [
            pickle.dumps({**base, "shard": (k, workers)})
            for k in range(workers)
        ]
    # staticcheck: disable=SC008 — pickling runs no budget-governed
    # code; any failure degrades to the lossless serial path.
    except Exception:
        # Opaque predicates / custom metrics close over unpicklable
        # state; the serial path handles them with zero loss.
        return None
    try:
        futures = [pool.submit(_run_shard, blob) for blob in blobs]
        pending = set(futures)
        while pending:
            _, pending = wait(
                pending, timeout=_POLL_S, return_when=FIRST_COMPLETED
            )
            if (
                token is not None
                and budget is not None
                and not token.cancelled()
                and budget.expired()
            ):
                # Satellite contract: an exhausted parent propagates
                # *into* running shards; each worker observes the
                # cancelled token at its next checkpoint.
                token.cancel(_expired_reason(budget))
        results: list[dict[str, Any]] = [
            pickle.loads(f.result()) for f in futures
        ]
    # staticcheck: disable=SC008 — shard exhaustion travels in-band
    # (the results' 'exhausted' field), never as an exception; what
    # lands here is a crashed/killed worker, and the serial rerun
    # re-applies the budget from scratch.
    except Exception:
        # A crashed worker poisons the whole pool — rebuild lazily and
        # degrade this execution to serial (no partial merge: counters
        # from a half-collected fleet would double-count after the
        # serial rerun).
        shutdown()
        return None
    n = ctx.n
    strategy = next((r["strategy"] for r in results if r["strategy"]), "never")
    COUNTERS.executions += 1
    COUNTERS.pairs_total += n * (n - 1) // 2
    COUNTERS.note(strategy)
    for r in results:
        COUNTERS.merge(r["counters"])
    exhausted = token.cancelled() if token is not None else ""
    for r in results:
        exhausted = exhausted or r["exhausted"]
    keyed: list[tuple[Any, Any]] = []
    for r in results:
        keyed.extend(r["hits"])
    keyed.sort(key=lambda item: item[0])
    _last_run = {
        "workers": workers,
        "mode": mode,
        "strategy": strategy,
        "shards": [
            {
                "strategy": r["strategy"],
                "counters": r["counters"],
                "candidates": r["candidates"],
                "pairs": r["pairs"],
                "exhausted": r["exhausted"],
                "hits": len(r["hits"]),
            }
            for r in results
        ],
        "exhausted": exhausted,
        "shared": handle is not None,
    }
    if budget is not None:
        budget.absorb(
            sum(r["candidates"] for r in results),
            sum(r["pairs"] for r in results),
        )
        if exhausted:
            # The caller's finally releases the token before this
            # BudgetExhausted reaches anyone who could observe it.
            budget._exhaust(exhausted)
    return [payload for _, payload in keyed]
