"""Notation-facing plan entry points: caches, verify closures, routing.

The kernels (:mod:`repro.plan.kernels`, :mod:`repro.plan.kernels_vec`)
are engine-neutral — they see an immutable
:class:`~repro.plan.slabs.ExecutionContext` and bare row indices, never
a dependency or a live substrate handle.  This module is the seam
between the notations and that engine:

* :func:`plan_for` / :func:`guard_plan_for` — per-dependency compiled
  plan caches (compile → simplify, instance-cached on the dependency);
* :func:`build_verify` — the three verify-closure shapes ("pair",
  "denial", "guard") shared by the serial executor *and* the worker
  processes of :mod:`repro.plan.parallel`, so both paths re-check
  candidates with literally the same code;
* :func:`pairwise_violations` / :func:`denial_violations` /
  :func:`guard_pairs` — the calls the detection, incremental and
  discovery engines make.  Each accepts ``workers=`` and consults the
  ambient ``REPRO_WORKERS`` mode; eligible executions (pair plans, not
  ``first_only``) fan out through the sharded parallel executor and
  fall back to the identical serial path whenever the fan-out declines.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from .ir import Plan
from .kernels import execute_pairs, execute_rows
from .slabs import context_for

_Verify = Callable[[int, int], "tuple[Any, Any] | None"]


def plan_for(dep: Any) -> Plan:
    """The compiled, simplified plan of a dependency (instance-cached).

    Compilation lowers the notation; the static simplifier then rewrites
    the plan into a provably equivalent smaller one (dead clauses
    dropped, redundant atoms removed — see
    :func:`repro.analysis.simplify.simplify_plan`).  Set
    ``REPRO_NO_SIMPLIFY=1`` to execute raw compiled plans instead.
    """
    import os

    plan = getattr(dep, "_repro_plan", None)
    if plan is None or plan.source is not dep:
        from .compile import compile_dependency

        plan = compile_dependency(dep)
        if os.environ.get("REPRO_NO_SIMPLIFY", "") in ("", "0"):
            from ..analysis.simplify import simplify_plan

            plan = simplify_plan(plan)
        try:
            dep._repro_plan = plan
        except (AttributeError, TypeError):
            pass
    return plan


def guard_plan_for(dep: Any) -> Plan:
    """The compiled guard (LHS) plan of a dependency (instance-cached)."""
    plan = getattr(dep, "_repro_guard_plan", None)
    if plan is None or plan.source is not dep:
        from .compile import compile_guards

        plan = compile_guards(dep)
        try:
            dep._repro_guard_plan = plan
        except (AttributeError, TypeError):
            pass
    return plan


def build_verify(
    mode: str, dep: Any, source: Any, extra: Any = None
) -> _Verify:
    """The verify closure for one execution mode, bound to ``source``.

    The notation's own definitional predicate stays the single source
    of truth for what a violation/match *is*; the closure shapes are
    shared between the serial executor and the shard workers (which
    rebuild them around the snapshot reconstructed from the slabs), so
    both report identical keys and payloads.
    """
    if mode == "pair":
        from ..core.violation import Violation

        label = dep.label()

        def verify_pairwise(p: int, q: int) -> "tuple[Any, Any] | None":
            reason = dep.pair_violation(source, p, q)
            if reason is None:
                return None
            return ((p, q), Violation(label, (p, q), reason))

        return verify_pairwise
    if mode == "denial":
        from ..core.numerical.dc import ALPHA, BETA
        from ..core.violation import Violation

        label = dep.label()

        def verify_denial(p: int, q: int) -> "tuple[Any, Any] | None":
            # The legacy ordered scan emits a pair at its first denied
            # (α, β) assignment in row-major order — sort by that key.
            for a, b in ((p, q), (q, p)):
                if dep._assignment_denied(source, {ALPHA: a, BETA: b}):
                    return (
                        (a, b),
                        Violation(
                            label,
                            (p, q),
                            f"(tα=t{a}, tβ=t{b}) satisfies all atoms",
                        ),
                    )
            return None

        return verify_denial
    if mode == "guard":

        def verify_guard(p: int, q: int) -> "tuple[Any, Any] | None":
            if extra(source, p, q):
                return ((p, q), (p, q))
            return None

        return verify_guard
    raise ValueError(f"unknown verify mode {mode!r}")


def _try_parallel(
    dep: Any,
    source: Any,
    plan: Plan,
    mode: str,
    extra: Any,
    restrict: "set[int] | None",
    first_only: bool,
    workers: "int | None",
) -> "list[Any] | None":
    """Route to the sharded executor when eligible; ``None`` = serial.

    ``first_only`` stays serial: its contract is "the first verified
    hit in candidate order", which a fan-out would have to run to
    completion to reproduce — the serial short-circuit is the faster
    engine by construction.
    """
    if first_only or plan.arity != 2 or plan.never:
        return None
    from .parallel import execute_parallel, resolve_workers

    w = resolve_workers(workers, len(source))
    if w <= 1:
        return None
    return execute_parallel(
        dep, source, mode=mode, extra=extra, restrict=restrict, workers=w
    )


def pairwise_violations(
    dep: Any,
    source: Any,
    *,
    restrict: "set[int] | None" = None,
    first_only: bool = False,
    workers: "int | None" = None,
) -> list[Any]:
    """Violations of a pairwise notation via its compiled plan.

    ``pair_violation`` stays the single source of truth for what a
    violation *is* (and its reason text); the plan only decides which
    pairs are worth asking about.
    """
    plan = plan_for(dep)
    out = _try_parallel(
        dep, source, plan, "pair", None, restrict, first_only, workers
    )
    if out is not None:
        return out
    verify = build_verify("pair", dep, source)
    return execute_pairs(
        plan, context_for(source), verify, restrict=restrict,
        first_only=first_only,
    )


def denial_violations(
    dep: Any,
    source: Any,
    *,
    restrict: "set[int] | None" = None,
    first_only: bool = False,
    workers: "int | None" = None,
) -> list[Any]:
    """Violations of a DC via its compiled plan (ordered semantics).

    Matches the legacy ordered scan exactly: per unordered pair the
    (α, β) orientation reported is the first denied one in row-major
    order.
    """
    from ..core.violation import Violation

    plan = plan_for(dep)
    label = dep.label()
    if plan.arity == 1:
        var = dep._variables[0]

        def verify_row(r: int) -> "tuple[Any, Any] | None":
            if dep._assignment_denied(source, {var: r}):
                return (r, Violation(label, (r,), "tuple satisfies all atoms"))
            return None

        return execute_rows(
            plan, context_for(source), verify_row, restrict=restrict,
            first_only=first_only,
        )
    out = _try_parallel(
        dep, source, plan, "denial", None, restrict, first_only, workers
    )
    if out is not None:
        return out
    verify = build_verify("denial", dep, source)
    return execute_pairs(
        plan, context_for(source), verify, restrict=restrict,
        first_only=first_only,
    )


def guard_pairs(
    dep: Any,
    source: Any,
    verify_pair: Callable[..., bool],
    *,
    workers: "int | None" = None,
) -> list[tuple[int, int]]:
    """All pairs selected by a notation's LHS (its guard atoms).

    Used for match/support/confidence measures (MD.matches, NED
    support, CD confidence, PAC pair counts): the guard plan prunes,
    ``verify_pair`` is the definitional LHS test.
    """
    plan = guard_plan_for(dep)
    out = _try_parallel(
        dep, source, plan, "guard", verify_pair, None, False, workers
    )
    if out is not None:
        return out
    verify = build_verify("guard", dep, source, verify_pair)
    return execute_pairs(plan, context_for(source), verify)
