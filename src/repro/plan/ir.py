"""The shared predicate-plan IR every notation lowers into.

The survey's thesis is that the family tree's notations are instances
of one predicate formalism (FD = SFD with s = 1, OD = SD with g = [0, ∞),
most notations embed into DCs).  This module makes that subsumption
executable: a :class:`Plan` is a *deny-form* formula over tuple-pair
predicates —

    violation(tα, tβ)  ⇔  ∃ clause: every atom of the clause holds

— mirroring the DC reading ``¬(P1 ∧ ... ∧ Pm)``.  An implication-shaped
notation ``guards ⇒ consequents`` lowers to one clause per consequent:
``guards ∧ ¬consequent_k`` (the paper's Section 4.3 embeddings, applied
uniformly).

Atom vocabulary (Table 2's comparison column, executable):

* :class:`CmpAtom` — order/equality comparison between the two tuples'
  cells (FDs, OFDs, ODs, DCs);
* :class:`ConstAtom` — one tuple's cell against a constant (constant
  DC predicates, eCFD-style constants);
* :class:`PatternAtom` — one tuple's cell against a CFD/CDD/CMD
  pattern entry;
* :class:`MetricAtom` — the pair's metric distance against an
  :class:`~repro.core.heterogeneous.constraints.Interval` (MFDs, NEDs,
  DDs, MDs);
* :class:`ThetaAtom` — a CD similarity function θ(Ai, Aj);
* :class:`ResemblanceAtom` — the FFD fuzzy-resemblance comparison;
* :class:`NotNullAtom` — missing-value guard (OFD semantics skip pairs
  with any ``None``);
* :class:`FnAtom` — opaque escape hatch for notations whose semantics
  do not decompose (lexicographic OFDs, unknown pairwise subclasses).

Two comparison semantics coexist, and conflating them is the classic
source of subtle parity bugs:

* ``"sql"`` — ``None`` or incomparable types make the comparison
  *false* (DC predicates, OD marks); with ``negated=True`` the flip
  happens **after** that rule, so an undefined comparison makes the
  negated atom *true* (matching ``not _ordered(...)`` in the legacy
  scans);
* ``"py"`` — plain Python equality with the identity shortcut tuples
  use (``NaN`` equals itself when it is the same object), exactly the
  ``values_at(i, X) == values_at(j, X)`` tests of FDs/MFDs/MDs.

Plans are *evaluated* by :mod:`repro.plan.kernels`; the kernels use the
atom structure for candidate-pair pruning and re-verify every candidate
against the source notation's own predicate, so a plan is always a
sound over-approximation and never changes reported semantics.

The plan path is on by default; set ``REPRO_NAIVE_PLAN=1`` (or call
:func:`set_mode`) to force the legacy per-class scan loops, which the
parity suite compares against.

Plans additionally carry a *kernel backend* switch: atoms whose
semantics reduce to bulk array operations over the encoded substrate
declare ``vectorizable = True``, and plans made entirely of such atoms
may be executed by :mod:`repro.plan.kernels_vec` as whole-clause numpy
computations instead of per-pair Python.  ``REPRO_KERNEL_BACKEND``
(or :func:`set_kernel_backend` / :func:`kernel_backend`) selects
``"auto"`` (vectorize large relations, default), ``"vector"`` (force
vectorized wherever eligible), or ``"scalar"`` (never vectorize).
"""

from __future__ import annotations

import operator
import os
from contextlib import contextmanager
from collections.abc import Callable, Iterator, Sequence
from typing import Any

Value = Any

_ENV_FLAG = "REPRO_NAIVE_PLAN"

_mode_override: bool | None = None


def set_mode(mode: str | None) -> None:
    """Force the evaluation path: ``"plan"``, ``"naive"``, or ``None``.

    ``None`` restores the default: compiled plans unless the
    ``REPRO_NAIVE_PLAN`` environment variable is set.
    """
    global _mode_override
    if mode is None:
        _mode_override = None
    elif mode == "plan":
        _mode_override = True
    elif mode == "naive":
        _mode_override = False
    else:
        raise ValueError(f"unknown plan mode {mode!r}")


@contextmanager
def plan_mode(mode: str | None) -> Iterator[None]:
    """Temporarily force the evaluation path (for tests and benchmarks)."""
    global _mode_override
    previous = _mode_override
    set_mode(mode)
    try:
        yield
    finally:
        _mode_override = previous


def plan_enabled() -> bool:
    """Whether compiled-plan evaluation is active."""
    if _mode_override is not None:
        return _mode_override
    return os.environ.get(_ENV_FLAG, "") in ("", "0")


_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_BACKEND_MODES = ("auto", "vector", "scalar")

_backend_override: str | None = None


def set_kernel_backend(mode: str | None) -> None:
    """Force the kernel backend: ``"auto"``, ``"vector"``, ``"scalar"``.

    ``None`` restores the default: the ``REPRO_KERNEL_BACKEND``
    environment variable, else ``"auto"``.  ``"vector"`` uses the
    columnar kernels for every eligible plan regardless of relation
    size; ``"scalar"`` never vectorizes; ``"auto"`` vectorizes eligible
    plans on relations large enough to amortize array setup.
    """
    global _backend_override
    if mode is not None and mode not in _BACKEND_MODES:
        raise ValueError(f"unknown kernel backend {mode!r}")
    _backend_override = mode


@contextmanager
def kernel_backend(mode: str | None) -> Iterator[None]:
    """Temporarily force the kernel backend (for tests and benchmarks)."""
    global _backend_override
    previous = _backend_override
    set_kernel_backend(mode)
    try:
        yield
    finally:
        _backend_override = previous


def kernel_backend_mode() -> str:
    """The active backend mode: ``"auto"``, ``"vector"`` or ``"scalar"``."""
    if _backend_override is not None:
        return _backend_override
    env = os.environ.get(_BACKEND_ENV, "")
    if env in _BACKEND_MODES:
        return env
    return "auto"


class PlanCompileError(ValueError):
    """Raised when a dependency has no pair-plan lowering (MVDs, ...)."""


#: Tuple variable names, matching the DC module's t_alpha / t_beta.
ALPHA = "a"
BETA = "b"

_OPS: dict[str, Callable[[Value, Value], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

ORDER_OPS = ("<", "<=", ">", ">=")


def _sql_compare(op: str, left: Value, right: Value) -> bool:
    """SQL-style comparison: ``None``/incomparable is false."""
    if left is None or right is None:
        return False
    try:
        return _OPS[op](left, right)
    except TypeError:
        return False


class PredicateAtom:
    """Base class of plan atoms.

    ``eval(relation, i, j)`` evaluates with tuple ``i`` bound to t_α and
    tuple ``j`` to t_β.  ``symmetric`` atoms satisfy
    ``eval(i, j) == eval(j, i)`` for all pairs, which lets kernels probe
    a single orientation.  ``vectorizable`` atoms have a batch-array
    evaluation in :mod:`repro.plan.kernels_vec`; the flag is *static*
    eligibility — the vectorized backend still falls back per relation
    when, e.g., a column is not numerically representable.
    """

    symmetric: bool = False
    vectorizable: bool = False

    def eval(self, relation, i: int, j: int) -> bool:
        raise NotImplementedError

    def attributes(self) -> tuple[str, ...]:
        return ()


def _var_row(var: str, i: int, j: int) -> int:
    return i if var == ALPHA else j


class CmpAtom(PredicateAtom):
    """``tα.A op tβ.B`` under ``"sql"`` or ``"py"`` semantics.

    ``negated`` flips the result *after* the semantics rule, so an
    undefined SQL comparison makes the negated atom true — the behavior
    of ``not leq(...)`` / ``not mark.compare(...)`` in the legacy scans.
    ``"py"`` semantics support only ``"="`` and evaluate the identity-
    shortcut equality of 1-tuples, matching ``values_at`` comparisons.
    """

    vectorizable = True

    __slots__ = ("lhs_var", "lhs_attr", "op", "rhs_var", "rhs_attr",
                 "semantics", "negated", "symmetric")

    def __init__(
        self,
        lhs_var: str,
        lhs_attr: str,
        op: str,
        rhs_var: str,
        rhs_attr: str,
        semantics: str = "sql",
        negated: bool = False,
    ) -> None:
        if op not in _OPS:
            raise PlanCompileError(f"unknown comparison operator {op!r}")
        if semantics not in ("sql", "py"):
            raise PlanCompileError(f"unknown semantics {semantics!r}")
        if semantics == "py" and op != "=":
            raise PlanCompileError("py semantics only support equality")
        # Normalize β-first atoms so kernels can assume α on the left.
        if lhs_var == BETA and rhs_var == ALPHA:
            lhs_var, rhs_var = ALPHA, BETA
            lhs_attr, rhs_attr = rhs_attr, lhs_attr
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        self.lhs_var = lhs_var
        self.lhs_attr = lhs_attr
        self.op = op
        self.rhs_var = rhs_var
        self.rhs_attr = rhs_attr
        self.semantics = semantics
        self.negated = negated
        self.symmetric = (
            op in ("=", "!=")
            and lhs_attr == rhs_attr
            and lhs_var != rhs_var
        )

    @property
    def cross_tuple(self) -> bool:
        return self.lhs_var != self.rhs_var

    def eval(self, relation, i: int, j: int) -> bool:
        left = relation.value_at(_var_row(self.lhs_var, i, j), self.lhs_attr)
        right = relation.value_at(_var_row(self.rhs_var, i, j), self.rhs_attr)
        if self.semantics == "py":
            # 1-tuple wrap: the identity-shortcut equality of values_at.
            result = (left,) == (right,)
        else:
            result = _sql_compare(self.op, left, right)
        return not result if self.negated else result

    def attributes(self) -> tuple[str, ...]:
        if self.lhs_attr == self.rhs_attr:
            return (self.lhs_attr,)
        return (self.lhs_attr, self.rhs_attr)

    def __str__(self) -> str:
        body = (
            f"t{'α' if self.lhs_var == ALPHA else 'β'}.{self.lhs_attr} "
            f"{self.op} "
            f"t{'α' if self.rhs_var == ALPHA else 'β'}.{self.rhs_attr}"
        )
        if self.semantics == "py":
            body += " [py]"
        return f"¬({body})" if self.negated else body


class ConstAtom(PredicateAtom):
    """``t.A op constant`` (SQL semantics)."""

    vectorizable = True

    __slots__ = ("var", "attr", "op", "constant", "negated")

    def __init__(
        self, var: str, attr: str, op: str, constant: Value,
        negated: bool = False,
    ) -> None:
        if op not in _OPS:
            raise PlanCompileError(f"unknown comparison operator {op!r}")
        self.var = var
        self.attr = attr
        self.op = op
        self.constant = constant
        self.negated = negated

    def eval(self, relation, i: int, j: int) -> bool:
        left = relation.value_at(_var_row(self.var, i, j), self.attr)
        result = _sql_compare(self.op, left, self.constant)
        return not result if self.negated else result

    def attributes(self) -> tuple[str, ...]:
        return (self.attr,)

    def __str__(self) -> str:
        body = (
            f"t{'α' if self.var == ALPHA else 'β'}.{self.attr} "
            f"{self.op} {self.constant!r}"
        )
        return f"¬({body})" if self.negated else body


class PatternAtom(PredicateAtom):
    """``t.A matches <pattern entry>`` (CFD/CDD/CMD conditions)."""

    vectorizable = True

    __slots__ = ("var", "attr", "entry")

    def __init__(self, var: str, attr: str, entry) -> None:
        self.var = var
        self.attr = attr
        self.entry = entry

    def eval(self, relation, i: int, j: int) -> bool:
        value = relation.value_at(_var_row(self.var, i, j), self.attr)
        return self.entry.matches(value)

    def attributes(self) -> tuple[str, ...]:
        return (self.attr,)

    def __str__(self) -> str:
        return (
            f"t{'α' if self.var == ALPHA else 'β'}.{self.attr} "
            f"matches {self.entry}"
        )


class MetricAtom(PredicateAtom):
    """``d_A(tα.A, tβ.A) ∈ interval`` — the heterogeneous-branch atom.

    ``semantics`` mirrors the two legacy evaluation idioms:

    * ``"interval"`` — :meth:`Interval.contains` (DD/MFD ranges); a NaN
      distance falls *inside* every interval (all comparisons false),
      matching the legacy max-combine behavior;
    * ``"within"`` — ``distance <= interval.high`` (SimilarityPredicate
      / ``Metric.within``); a NaN distance is *not* within, matching
      the legacy similarity tests.
    """

    symmetric = True
    vectorizable = True

    __slots__ = ("attribute", "interval", "semantics", "negated",
                 "metric", "registry")

    def __init__(
        self,
        attribute: str,
        interval,
        semantics: str = "interval",
        negated: bool = False,
        metric=None,
        registry=None,
    ) -> None:
        if semantics not in ("interval", "within"):
            raise PlanCompileError(f"unknown metric semantics {semantics!r}")
        self.attribute = attribute
        self.interval = interval
        self.semantics = semantics
        self.negated = negated
        self.metric = metric
        self.registry = registry

    def resolve_metric(self, relation):
        if self.metric is not None:
            return self.metric
        from ..metrics.registry import DEFAULT_REGISTRY

        registry = self.registry if self.registry is not None else (
            DEFAULT_REGISTRY
        )
        return registry.metric_for(relation.schema[self.attribute])

    def accepts_distance(self, d: float) -> bool:
        """The un-negated interval test on a precomputed distance."""
        if self.semantics == "within":
            return d <= self.interval.high
        return self.interval.contains(d)

    def eval(self, relation, i: int, j: int) -> bool:
        metric = self.resolve_metric(relation)
        d = metric.distance(
            relation.value_at(i, self.attribute),
            relation.value_at(j, self.attribute),
        )
        result = self.accepts_distance(d)
        return not result if self.negated else result

    def attributes(self) -> tuple[str, ...]:
        return (self.attribute,)

    def __str__(self) -> str:
        body = f"d({self.attribute}) ∈ {self.interval}"
        return f"¬({body})" if self.negated else body


class ThetaAtom(PredicateAtom):
    """A CD similarity function ``θ(Ai, Aj)`` on the pair (symmetric)."""

    symmetric = True

    __slots__ = ("fn", "registry", "negated")

    def __init__(self, fn, registry, negated: bool = False) -> None:
        self.fn = fn
        self.registry = registry
        self.negated = negated

    def eval(self, relation, i: int, j: int) -> bool:
        result = self.fn.similar(relation, i, j, self.registry)
        return not result if self.negated else result

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys((self.fn.attr_i, self.fn.attr_j)))

    def __str__(self) -> str:
        body = f"θ({self.fn.attr_i}, {self.fn.attr_j})"
        return f"¬({body})" if self.negated else body


class ResemblanceAtom(PredicateAtom):
    """``mu_EQ(X) > mu_EQ(Y)`` — the FFD violation condition."""

    symmetric = True

    __slots__ = ("ffd",)

    def __init__(self, ffd) -> None:
        self.ffd = ffd

    def eval(self, relation, i: int, j: int) -> bool:
        mu_x = self.ffd.mu_set(relation, i, j, self.ffd.lhs)
        mu_y = self.ffd.mu_set(relation, i, j, self.ffd.rhs)
        return mu_x > mu_y

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.ffd.lhs + self.ffd.rhs))

    def __str__(self) -> str:
        x = ", ".join(self.ffd.lhs)
        y = ", ".join(self.ffd.rhs)
        return f"mu_EQ({x}) > mu_EQ({y})"


class NotNullAtom(PredicateAtom):
    """Every listed attribute is non-``None`` on *both* tuples."""

    symmetric = True
    vectorizable = True

    __slots__ = ("attrs",)

    def __init__(self, attrs: Sequence[str]) -> None:
        self.attrs = tuple(attrs)

    def eval(self, relation, i: int, j: int) -> bool:
        for a in self.attrs:
            col = relation.column(a)
            if col[i] is None or col[j] is None:
                return False
        return True

    def attributes(self) -> tuple[str, ...]:
        return self.attrs

    def __str__(self) -> str:
        return f"notnull({', '.join(self.attrs)})"


class FnAtom(PredicateAtom):
    """Opaque predicate over an ordered pair (escape hatch)."""

    __slots__ = ("fn", "attrs", "symmetric", "text")

    def __init__(
        self,
        fn: Callable,
        attrs: Sequence[str],
        symmetric: bool = False,
        text: str = "<fn>",
    ) -> None:
        self.fn = fn
        self.attrs = tuple(attrs)
        self.symmetric = symmetric
        self.text = text

    def eval(self, relation, i: int, j: int) -> bool:
        return bool(self.fn(relation, i, j))

    def attributes(self) -> tuple[str, ...]:
        return self.attrs

    def __str__(self) -> str:
        return self.text


class Clause:
    """A conjunction of atoms; the clause *fires* when all atoms hold."""

    __slots__ = ("atoms",)

    def __init__(self, atoms: Sequence[PredicateAtom]) -> None:
        self.atoms = tuple(atoms)
        if not self.atoms:
            raise PlanCompileError("empty plan clause")

    def fires(self, relation, i: int, j: int) -> bool:
        return all(a.eval(relation, i, j) for a in self.atoms)

    def attributes(self) -> tuple[str, ...]:
        out: list[str] = []
        for a in self.atoms:
            out.extend(a.attributes())
        return tuple(dict.fromkeys(out))

    def __str__(self) -> str:
        return " ∧ ".join(str(a) for a in self.atoms)


class Plan:
    """A compiled evaluation plan in deny form.

    ``style`` controls reporting: ``"pair"`` plans (compiled from
    pairwise notations) report each unordered violating pair once with
    the notation's own ``pair_violation`` reason; ``"ordered"`` plans
    (DCs) report the first denied (α, β) orientation in row-major
    order, matching the legacy ordered scan's dedupe behavior.
    """

    __slots__ = ("label", "clauses", "arity", "style", "source", "note",
                 "never")

    def __init__(
        self,
        label: str,
        clauses: Sequence[Clause],
        arity: int = 2,
        style: str = "pair",
        source: Any = None,
        note: str = "",
        never: bool = False,
    ) -> None:
        if arity not in (1, 2):
            raise PlanCompileError(f"plan arity must be 1 or 2, got {arity}")
        if style not in ("pair", "ordered"):
            raise PlanCompileError(f"unknown plan style {style!r}")
        self.label = label
        self.clauses = tuple(clauses)
        if not self.clauses:
            raise PlanCompileError("plan needs at least one clause")
        self.arity = arity
        self.style = style
        self.source = source
        self.note = note
        #: True when static analysis proved no clause can ever fire
        #: (see :func:`repro.analysis.simplify.simplify_plan`); kernels
        #: then skip evaluation entirely.
        self.never = never

    def denies(self, relation: Any, i: int, j: int) -> bool:
        """Whether the ordered assignment (α=i, β=j) is a violation."""
        if self.never:
            return False
        return any(c.fires(relation, i, j) for c in self.clauses)

    @property
    def symmetric(self) -> bool:
        """True when one orientation per unordered pair suffices."""
        return all(a.symmetric for c in self.clauses for a in c.atoms)

    @property
    def vector_eligible(self) -> bool:
        """True when every atom has a batch-array evaluation (static).

        The vectorized backend still re-checks per relation (column
        representability, metric kind); this flag is the static half of
        that decision, used by ``repro plan`` and the backend selector.
        """
        return all(a.vectorizable for c in self.clauses for a in c.atoms)

    def shared_atoms(self) -> tuple[PredicateAtom, ...]:
        """Atoms present (by identity) in every clause — the guards."""
        first = self.clauses[0].atoms
        rest = [set(map(id, c.atoms)) for c in self.clauses[1:]]
        return tuple(
            a for a in first if all(id(a) in ids for ids in rest)
        )

    def attributes(self) -> tuple[str, ...]:
        out: list[str] = []
        for c in self.clauses:
            out.extend(c.attributes())
        return tuple(dict.fromkeys(out))

    def describe(self) -> str:
        """Multi-line rendering for ``repro plan`` and docs."""
        from .kernels import strategy_hint

        shape = "single-tuple" if self.arity == 1 else self.style
        kernel = "skipped (never fires)" if self.never else strategy_hint(self)
        mode = kernel_backend_mode()
        if self.never:
            backend = "none"
        elif mode == "scalar":
            backend = "scalar (forced)"
        elif self.vector_eligible:
            backend = "vectorized" if mode == "vector" else (
                "vectorized (auto)"
            )
        else:
            backend = "scalar (non-vectorizable atoms)"
        lines = [
            f"{self.label}",
            f"  plan ({shape}, {len(self.clauses)} clause"
            f"{'s' if len(self.clauses) != 1 else ''})"
            f" [kernel: {kernel}, backend: {backend}]",
        ]
        for k, clause in enumerate(self.clauses, 1):
            lines.append(f"    clause {k}: {clause}")
        if self.note:
            lines.append(f"  note: {self.note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return " ∨ ".join(f"({c})" for c in self.clauses)

    def __repr__(self) -> str:
        return (
            f"Plan({self.label!r}, {len(self.clauses)} clauses, "
            f"arity={self.arity}, style={self.style!r})"
        )
