"""Engine-neutral column slabs and execution contexts.

The kernel layer (:mod:`repro.plan.kernels`, :mod:`repro.plan.kernels_vec`)
does not touch a live :class:`~repro.relation.relation.Relation` handle:
it consumes an :class:`ExecutionContext` — a thin, read-only facade over
one immutable snapshot's column data — plus a compiled
:class:`~repro.plan.ir.Plan`.  The context exposes exactly the column
primitives the kernels need (raw columns, equal-value groups, encoded
code/float/validity arrays, sorted projections, combined keys) and
nothing else, which is what makes plan execution *engine-neutral*: the
same kernels can run against the in-process substrate, a worker process
fed over shared memory, or (future work, ROADMAP item 1) a pushed-down
SQL engine.

:class:`ColumnSlabs` is the transport form of a context: an immutable,
picklable bundle of per-column arrays — dictionary codes + distinct
values, float projections, validity masks, cached sorted projections —
that reconstitutes into an equivalent context on the other side of a
process boundary.  :meth:`ExecutionContext.share` serializes the bundle
once into a :mod:`multiprocessing.shared_memory` block; every worker of
:mod:`repro.plan.parallel` attaches and rebuilds without re-encoding,
starting with the parent's caches warm.

Layering note: this module re-exports :data:`HAS_NUMPY` and
:func:`encoded_enabled` from the substrate so the kernel modules can
stay free of any ``repro.relation`` import.
"""

from __future__ import annotations

import pickle
import uuid
from collections.abc import Sequence
from typing import Any

from ..relation.encoding import (  # noqa: F401  (re-exported for kernels)
    HAS_NUMPY,
    ColumnCodes,
    encoded_enabled,
)

__all__ = [
    "ColumnSlab",
    "ColumnSlabs",
    "ExecutionContext",
    "SharedSlabHandle",
    "context_for",
    "release_shared",
    "HAS_NUMPY",
    "encoded_enabled",
]

_Arr = Any  # numpy ndarray (kept opaque; mirrors kernels_vec)

#: Shared-memory blocks owned by this process, keyed by context token.
#: Entries are unlinked by :func:`release_shared` (the parallel layer
#: calls it from its ``shutdown`` hook and at interpreter exit).
_OWNED_BLOCKS: dict[str, Any] = {}


class ColumnSlab:
    """One column's immutable kernel arrays.

    ``values``/``codes`` are the dictionary encoding (distinct values in
    first-occurrence order; one code per row); ``floats``/``valid``/
    ``sorted_rows``/``sorted_vals`` carry whichever kernel caches the
    source encoding had already built (``None`` otherwise — the receiver
    rebuilds lazily).  A column whose cells are unhashable cannot be
    dictionary-encoded; it ships verbatim in ``raw`` instead.
    """

    __slots__ = (
        "name", "values", "codes", "floats", "valid",
        "sorted_rows", "sorted_vals", "raw",
    )

    def __init__(
        self,
        name: str,
        values: list[Any] | None,
        codes: Any,
        floats: _Arr | None,
        valid: _Arr | None,
        sorted_rows: _Arr | None,
        sorted_vals: _Arr | None,
        raw: tuple[Any, ...] | None,
    ) -> None:
        self.name = name
        self.values = values
        self.codes = codes
        self.floats = floats
        self.valid = valid
        self.sorted_rows = sorted_rows
        self.sorted_vals = sorted_vals
        self.raw = raw

    def column(self) -> tuple[Any, ...]:
        """The full decoded column."""
        if self.raw is not None:
            return self.raw
        assert self.values is not None
        values = self.values
        codes = self.codes
        if HAS_NUMPY and not isinstance(codes, list):
            codes = codes.tolist()
        return tuple(values[c] for c in codes)


class ColumnSlabs:
    """An immutable, picklable bundle of one snapshot's column slabs.

    The wire format of :class:`ExecutionContext`: everything needed to
    reconstitute an equivalent context in another process — schema,
    row count, per-column slabs — plus the snapshot ``token`` that
    receivers key their caches on.
    """

    __slots__ = ("token", "n", "schema", "columns")

    def __init__(
        self, token: str, n: int, schema: Any, columns: list[ColumnSlab]
    ) -> None:
        self.token = token
        self.n = n
        self.schema = schema
        self.columns = columns

    @classmethod
    def from_context(cls, ctx: "ExecutionContext") -> "ColumnSlabs":
        """Export a context's column data (already-built caches only).

        Codes and distinct values are always materialized (they are the
        backbone every kernel shares); the float/validity/sorted caches
        ship only if the source encoding had built them, so exporting
        never forces work the kernels might not need.
        """
        source = ctx._source
        enc = source.encoding()
        columns: list[ColumnSlab] = []
        for j, attr in enumerate(source.schema):
            raw_col = source._columns[j]
            try:
                cc = enc.column_codes(j)
            except TypeError:  # unhashable cells: ship verbatim
                columns.append(
                    ColumnSlab(
                        attr.name, None, None, None, None, None, None,
                        tuple(raw_col),
                    )
                )
                continue
            codes: Any = cc.array() if HAS_NUMPY else list(cc.codes)
            floats = cc._floats
            valid = cc._valid
            srt = cc._sorted
            columns.append(
                ColumnSlab(
                    attr.name,
                    list(cc.values),
                    codes,
                    floats,
                    valid,
                    srt[0] if srt is not None else None,
                    srt[1] if srt is not None else None,
                    None,
                )
            )
        return cls(ctx.token, ctx.n, source.schema, columns)

    def to_context(self) -> "ExecutionContext":
        """Reconstitute an equivalent execution context.

        Rebuilds a relation snapshot from the decoded columns and seeds
        its encoding with the shipped codebooks and kernel caches, so
        the receiving kernels never re-hash or re-sort what the sender
        already had.  The context keeps the sender's ``token`` —
        receiver-side caches stay keyed by snapshot identity.
        """
        from ..relation.relation import Relation

        cols = tuple(slab.column() for slab in self.columns)
        relation = Relation._from_trusted(self.schema, cols)
        enc = relation.encoding()
        for j, slab in enumerate(self.columns):
            if slab.values is None:
                continue
            srt = None
            if slab.sorted_rows is not None:
                srt = (slab.sorted_rows, slab.sorted_vals)
            enc._per_column[j] = ColumnCodes.from_parts(
                cols[j],
                slab.values,
                slab.codes,
                floats=slab.floats,
                valid=slab.valid,
                sorted_projection=srt,
            )
        ctx = ExecutionContext(relation, token=self.token)
        enc._ctx = ctx
        return ctx


class SharedSlabHandle:
    """A reference to a serialized :class:`ColumnSlabs` bundle in shared
    memory: block name, payload size, snapshot token.  Small and
    picklable — this is what actually crosses the process boundary."""

    __slots__ = ("name", "size", "token")

    def __init__(self, name: str, size: int, token: str) -> None:
        self.name = name
        self.size = size
        self.token = token

    def __repr__(self) -> str:
        return (
            f"SharedSlabHandle({self.name!r}, {self.size} bytes, "
            f"token={self.token[:8]})"
        )


def _attach_block(name: str) -> Any:
    """Attach to an existing shared-memory block.

    The parallel layer's workers are *forked*, so they inherit the
    parent's resource-tracker process: attaching re-registers the block
    in the tracker's (deduplicating) registry, a no-op, and the single
    registration is consumed by the owner's eventual ``unlink``.  No
    ``resource_tracker.unregister`` workaround is needed — and calling
    it here would erase the parent's registration from the shared
    tracker.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def load_shared(handle: SharedSlabHandle) -> ColumnSlabs:
    """Rebuild a :class:`ColumnSlabs` bundle from a shared-memory handle."""
    shm = _attach_block(handle.name)
    try:
        payload = bytes(shm.buf[: handle.size])
    finally:
        shm.close()
    out = pickle.loads(payload)
    assert isinstance(out, ColumnSlabs)
    return out


def release_shared(token: str | None = None) -> None:
    """Unlink shared slab blocks owned by this process.

    ``token=None`` releases everything — the parallel layer's shutdown
    path.  Safe to call repeatedly; missing blocks are ignored.
    """
    tokens = [token] if token is not None else list(_OWNED_BLOCKS)
    for t in tokens:
        shm = _OWNED_BLOCKS.pop(t, None)
        if shm is None:
            continue
        try:
            shm.close()
            shm.unlink()
        # staticcheck: disable=SC008 — idempotent shutdown-path cleanup
        # of shm blocks; nothing budget-governed runs inside the try.
        except Exception:
            pass


class ExecutionContext:
    """What the plan kernels see instead of a live relation handle.

    A read-only facade over one immutable snapshot: row count, schema,
    and the column primitives the candidate generators and vectorized
    masks consume.  Contexts are cheap (built once per snapshot, cached
    on the encoding — see :func:`context_for`) and carry a ``token``
    identifying the snapshot across process boundaries.
    """

    __slots__ = ("_source", "token", "n", "schema")

    def __init__(self, source: Any, *, token: str | None = None) -> None:
        self._source = source
        self.token = token if token is not None else uuid.uuid4().hex
        self.n: int = len(source)
        self.schema = source.schema

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(n={self.n}, "
            f"attrs={list(self.schema.names())}, token={self.token[:8]})"
        )

    # -- scalar-kernel primitives --------------------------------------

    def column(self, attr: str) -> Sequence[Any]:
        """The full raw column of ``attr``."""
        return self._source.column(attr)  # type: ignore[no-any-return]

    def group_rows(self, attrs: tuple[str, ...]) -> Any:
        """Member-row lists of the equal-value partition over ``attrs``.

        First-occurrence order, ascending members — the shared partition
        cache of the snapshot.  Raises :class:`TypeError` when a column
        holds unhashable cells (callers fall back to scanning).
        """
        return self._source.cached_group_by(attrs).values()

    # -- vector-kernel primitives --------------------------------------

    def gather(self, attr: str) -> tuple[Any, Any, Any]:
        """``(codes, floats, valid)`` kernel arrays of one column."""
        source = self._source
        j = source.schema.index_of(attr)
        return source.encoding().gather(j)  # type: ignore[no-any-return]

    def distinct_values(self, attr: str) -> list[Any]:
        """Distinct values of a column, dictionary-code order."""
        source = self._source
        j = source.schema.index_of(attr)
        return source.encoding().column_codes(j).values  # type: ignore[no-any-return]

    def sorted_projection(self, attr: str) -> tuple[Any, Any]:
        """Cached ``(rows, values)`` float-sorted projection of a column."""
        source = self._source
        j = source.schema.index_of(attr)
        return source.encoding().sorted_projection(j)  # type: ignore[no-any-return]

    def combined_codes(self, attrs: tuple[str, ...]) -> Any:
        """One integer per row encoding the value combination over ``attrs``."""
        source = self._source
        idxs = tuple(source.schema.index_of(a) for a in attrs)
        return source.encoding().combined_codes(idxs)

    # -- transport -----------------------------------------------------

    def source(self) -> Any:
        """The backing snapshot (entry-point layer only — the kernels
        never call this; their verify callbacks close over it)."""
        return self._source

    def share(self) -> SharedSlabHandle:
        """Serialize this context's slabs into shared memory, once.

        The pickled :class:`ColumnSlabs` bundle lands in a single
        :class:`multiprocessing.shared_memory` block owned by this
        process; repeated calls return the same handle.  Raises whatever
        :mod:`pickle` raises on unpicklable cell values — callers treat
        that as "not shareable" and stay in-process.
        """
        from multiprocessing import shared_memory

        existing = _OWNED_BLOCKS.get(self.token)
        if existing is not None:
            return SharedSlabHandle(
                existing.name, existing.size_used, self.token
            )
        payload = pickle.dumps(
            ColumnSlabs.from_context(self),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(payload))
        )
        shm.buf[: len(payload)] = payload
        shm.size_used = len(payload)  # type: ignore[attr-defined]
        _OWNED_BLOCKS[self.token] = shm
        return SharedSlabHandle(shm.name, len(payload), self.token)


def context_for(relation: Any) -> ExecutionContext:
    """The execution context of a relation snapshot (built once, cached).

    Cached on the relation's encoding: relations are immutable, derived
    relations start with a fresh encoding, so a context (and its share
    token) can never go stale.
    """
    enc = relation.encoding()
    ctx = enc._ctx
    if ctx is None:
        ctx = ExecutionContext(relation)
        enc._ctx = ctx
    return ctx  # type: ignore[no-any-return]
