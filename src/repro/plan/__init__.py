"""The shared predicate-plan IR and its pruned evaluation kernels.

This package is the executable form of the paper's subsumption thesis:
every pairwise/measured notation lowers (:func:`compile_dependency`)
into one deny-form plan over :class:`PredicateAtom` conjunctions, and
one kernel layer (:mod:`repro.plan.kernels`) evaluates all of them with
candidate-pair pruning — partition groups for equality atoms, sorted
sweeps for order atoms, value blocking for metric atoms — instead of
each notation running its own blind O(n²) loop.

The kernel layer has two backends: the scalar generators in
:mod:`repro.plan.kernels` and the vectorized columnar twins in
:mod:`repro.plan.kernels_vec` (batch numpy clause masks over the
encoded columns).  :func:`kernel_backend` / ``REPRO_KERNEL_BACKEND``
select between ``auto`` (vectorize eligible plans on large relations),
``vector`` (force whenever eligible) and ``scalar`` (never).

Layering: relation substrate → plan IR → kernels → engines
(detection / discovery / incremental / profiling).  See
``docs/architecture.md``.
"""

from .compile import compile_dependency, compile_guards
from .ir import (
    ALPHA,
    BETA,
    Clause,
    CmpAtom,
    ConstAtom,
    FnAtom,
    MetricAtom,
    NotNullAtom,
    PatternAtom,
    Plan,
    PlanCompileError,
    PredicateAtom,
    ResemblanceAtom,
    ThetaAtom,
    kernel_backend,
    kernel_backend_mode,
    plan_enabled,
    plan_mode,
    set_kernel_backend,
    set_mode,
)
from .entry import (
    build_verify,
    denial_violations,
    guard_pairs,
    guard_plan_for,
    pairwise_violations,
    plan_for,
)
from .kernels import (
    COUNTERS,
    KernelCounters,
    execute_pairs,
    execute_pairs_keyed,
    execute_rows,
    strategy_hint,
)
from .parallel import (
    resolve_workers,
    set_workers,
    warm_pool,
    workers,
    workers_mode,
)
from .slabs import ColumnSlabs, ExecutionContext, context_for

__all__ = [
    "ALPHA",
    "BETA",
    "Clause",
    "CmpAtom",
    "ConstAtom",
    "FnAtom",
    "MetricAtom",
    "NotNullAtom",
    "PatternAtom",
    "Plan",
    "PlanCompileError",
    "PredicateAtom",
    "ResemblanceAtom",
    "ThetaAtom",
    "kernel_backend",
    "kernel_backend_mode",
    "plan_enabled",
    "plan_mode",
    "set_kernel_backend",
    "set_mode",
    "compile_dependency",
    "compile_guards",
    "COUNTERS",
    "KernelCounters",
    "build_verify",
    "denial_violations",
    "execute_pairs",
    "execute_pairs_keyed",
    "execute_rows",
    "guard_pairs",
    "guard_plan_for",
    "pairwise_violations",
    "plan_for",
    "strategy_hint",
    "ColumnSlabs",
    "ExecutionContext",
    "context_for",
    "resolve_workers",
    "set_workers",
    "warm_pool",
    "workers",
    "workers_mode",
]
