"""Pruned evaluation kernels for compiled plans.

One executor replaces every per-class scan loop.  The kernels exploit
the atom structure of a plan to *generate candidate pairs* — a sound
over-approximation of the violating pairs — and re-check every
candidate with a ``verify`` callback supplied by the caller (the
notation's own definitional predicate).  Pruning therefore never
changes semantics: results are exactly the legacy results, obtained by
examining far fewer pairs.

Kernels are **engine-neutral**: they consume an
:class:`~repro.plan.slabs.ExecutionContext` (an immutable column-slab
view of one snapshot) plus a :class:`~repro.plan.ir.Plan` — never a
live substrate handle.  ``verify`` receives bare row indices
``(p, q)``; whatever it needs to re-check a pair is closed over by the
entry-point layer (:mod:`repro.plan.entry`), which is also where the
notation-facing API lives.

Strategies, in priority order:

* **group-partition** — shared equality atoms restrict candidates to
  the equal-value partition groups of the context (FDs, MFDs, MDs
  embedded from FDs, equality DCs);
* **sorted-sweep** — a shared order atom sorts the snapshot once; each
  clause's order consequent becomes a bisect range query over the
  already-seen prefix ("ABC of Order Dependencies"-style; ODs, OFDs,
  order DCs);
* **metric-blocking** — a shared metric atom buckets rows by value and
  accepts only bucket pairs whose representative distance lands in the
  atom's interval, with a sorted + bisect fast path for ``abs_diff``
  (NEDs, DDs, MDs, PACs);
* **pair-scan** — the legacy all-pairs fallback (CDs, FFDs, opaque
  atoms).

Each strategy additionally has a *vectorized* twin in
:mod:`repro.plan.kernels_vec` that evaluates whole clauses as batch
numpy operations over the encoded columns (strategy names prefixed
``vec-``).  ``execute_pairs``/``execute_rows`` route per plan and
context: the vectorized backend is chosen when the
``REPRO_KERNEL_BACKEND`` mode allows it, numpy and the encoding layer
are available, every atom is vectorizable, and the snapshot is large
enough to amortize array setup — otherwise the scalar kernels below
run unchanged.

Every candidate generator accepts a ``shard=(k, m)`` selector that
keeps only the candidates whose *owner index* (partition group, metric
bucket, sweep position, scan anchor, streamed block) is congruent to
``k`` mod ``m``.  Shards of the same execution partition the candidate
space exactly — the union over ``k`` is the unsharded candidate set,
pair for pair — which is what lets :mod:`repro.plan.parallel` fan one
execution out across worker processes and merge deterministically.

All kernels charge examined pairs to the ambient
:func:`repro.runtime.checkpoint` in batches, so ``max_pairs`` caps and
deadlines apply *inside* the evaluation — a :class:`BudgetExhausted`
escapes to the entry point, which reports honest partial results.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator
from typing import Any

from ..runtime import checkpoint
from .ir import ORDER_OPS, CmpAtom, MetricAtom, Plan, kernel_backend_mode
from .slabs import HAS_NUMPY, ExecutionContext, encoded_enabled

#: Pairs charged to the budget per checkpoint call.
_BATCH = 256

#: Below this row count the ``auto`` backend stays scalar: array setup
#: costs more than the handful of Python probes it would replace.
_VEC_MIN_ROWS = 256

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: ``(k, m)`` shard selector — keep owner indices ≡ k (mod m) — or
#: ``None`` for the whole candidate space.
Shard = "tuple[int, int] | None"


def _owned(shard: tuple[int, int] | None, index: int) -> bool:
    return shard is None or index % shard[1] == shard[0]


@dataclass
class KernelCounters:
    """Cheap global instrumentation (profiler + benchmarks).

    Backend-aware: vectorized executions record strategies prefixed
    ``vec-`` (``vec-group``, ``vec-sweep``, ...) plus the number of
    streamed index chunks, while scalar executions keep the bare
    strategy names — :meth:`backends` aggregates either way.

    Process-composable: counters survive process boundaries via
    :meth:`snapshot` deltas (:meth:`diff`) folded back with
    :meth:`merge` — the parallel executor snapshots per worker, ships
    the delta home, and merges it into the parent's counters, so
    parent totals always equal the sum of worker totals (pinned by
    ``tests/test_parallel.py``).  Pickling drops the lock and restores
    a fresh one on load.

    Thread-safety: the scalar fields are plain increments (atomic
    enough under the GIL for monitoring purposes), but the per-strategy
    *dicts* are mutated through :meth:`note` / :meth:`note_work`, which
    take a lock shared with :meth:`snapshot` and :meth:`reset` — a
    metrics scraper can snapshot concurrently with active kernels
    without tripping over a dict resized mid-iteration, and never
    observes a half-applied note.
    """

    executions: int = 0
    pairs_examined: int = 0
    pairs_total: int = 0
    #: Streamed index blocks evaluated by the vectorized backend (each
    #: one is also a budget checkpoint).
    chunks: int = 0
    by_strategy: dict[str, int] = field(default_factory=dict)
    #: Candidate pairs examined / verified hits, per strategy name.
    candidates_by_strategy: dict[str, int] = field(default_factory=dict)
    verified_by_strategy: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def note(self, strategy: str) -> None:
        with self._lock:
            self.by_strategy[strategy] = (
                self.by_strategy.get(strategy, 0) + 1
            )

    def note_work(
        self, strategy: str, *, candidates: int = 0, verified: int = 0
    ) -> None:
        """Record a finished execution's candidate/verified volume."""
        with self._lock:
            self.candidates_by_strategy[strategy] = (
                self.candidates_by_strategy.get(strategy, 0) + candidates
            )
            self.verified_by_strategy[strategy] = (
                self.verified_by_strategy.get(strategy, 0) + verified
            )

    def snapshot(self) -> "KernelCounters":
        """A detached, consistent copy for metrics scrapers.

        Safe to call while kernels are executing on other threads: the
        per-strategy dicts are copied under the mutation lock, so the
        copy never sees a resize-in-progress, and mutating the returned
        object (or the live counters afterwards) affects neither.
        """
        with self._lock:
            out = KernelCounters(
                executions=self.executions,
                pairs_examined=self.pairs_examined,
                pairs_total=self.pairs_total,
                chunks=self.chunks,
                by_strategy=dict(self.by_strategy),
                candidates_by_strategy=dict(self.candidates_by_strategy),
                verified_by_strategy=dict(self.verified_by_strategy),
            )
        return out

    def diff(self, earlier: "KernelCounters") -> "KernelCounters":
        """The work recorded since an ``earlier`` snapshot.

        Composable with :meth:`merge`: ``earlier.merge(self.diff(earlier))``
        reproduces ``self`` field for field.  Call on detached
        snapshots (both operands are read without locking).
        """

        def delta(a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
            return {
                k: a.get(k, 0) - b.get(k, 0)
                for k in a.keys() | b.keys()
                if a.get(k, 0) != b.get(k, 0)
            }

        return KernelCounters(
            executions=self.executions - earlier.executions,
            pairs_examined=self.pairs_examined - earlier.pairs_examined,
            pairs_total=self.pairs_total - earlier.pairs_total,
            chunks=self.chunks - earlier.chunks,
            by_strategy=delta(self.by_strategy, earlier.by_strategy),
            candidates_by_strategy=delta(
                self.candidates_by_strategy, earlier.candidates_by_strategy
            ),
            verified_by_strategy=delta(
                self.verified_by_strategy, earlier.verified_by_strategy
            ),
        )

    def merge(self, other: "KernelCounters") -> None:
        """Fold a detached counter delta (e.g. a worker's) into this one."""
        with self._lock:
            self.executions += other.executions
            self.pairs_examined += other.pairs_examined
            self.pairs_total += other.pairs_total
            self.chunks += other.chunks
            for src, dst in (
                (other.by_strategy, self.by_strategy),
                (other.candidates_by_strategy, self.candidates_by_strategy),
                (other.verified_by_strategy, self.verified_by_strategy),
            ):
                for k, v in src.items():
                    dst[k] = dst.get(k, 0) + v

    def backends(self) -> dict[str, int]:
        """Execution counts aggregated to ``scalar`` / ``vectorized``."""
        out: dict[str, int] = {}
        for strategy, count in self.by_strategy.items():
            key = "vectorized" if strategy.startswith("vec-") else "scalar"
            out[key] = out.get(key, 0) + count
        return out

    def reset(self) -> None:
        with self._lock:
            self.executions = 0
            self.pairs_examined = 0
            self.pairs_total = 0
            self.chunks = 0
            self.by_strategy = {}
            self.candidates_by_strategy = {}
            self.verified_by_strategy = {}

    def pruned_fraction(self) -> float:
        """Fraction of the blind O(n²) pair space the kernels skipped.

        Guarded for the zero-candidate case: with no recorded pair
        space (empty snapshots, nothing executed) the fraction is 0.0
        rather than a division error.
        """
        if self.pairs_total <= 0:
            return 0.0
        return 1.0 - min(1.0, max(0, self.pairs_examined) / self.pairs_total)

    def __getstate__(self) -> dict[str, Any]:
        snap = self.snapshot()
        return {
            "executions": snap.executions,
            "pairs_examined": snap.pairs_examined,
            "pairs_total": snap.pairs_total,
            "chunks": snap.chunks,
            "by_strategy": snap.by_strategy,
            "candidates_by_strategy": snap.candidates_by_strategy,
            "verified_by_strategy": snap.verified_by_strategy,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


COUNTERS = KernelCounters()


# -- strategy selection ------------------------------------------------------


def _shared_equality_attrs(plan: Plan) -> tuple[str, ...]:
    """Attributes pinned equal across the pair by every clause."""
    out = []
    for a in plan.shared_atoms():
        if (
            isinstance(a, CmpAtom)
            and not a.negated
            and a.cross_tuple
            and a.op == "="
            and a.lhs_attr == a.rhs_attr
        ):
            out.append(a.lhs_attr)
    return tuple(dict.fromkeys(out))


def _shared_metric_atom(plan: Plan) -> MetricAtom | None:
    for a in plan.shared_atoms():
        if isinstance(a, MetricAtom) and not a.negated:
            return a
    return None


def _is_order_cmp(atom: Any, *, allow_negated: bool) -> bool:
    return (
        isinstance(atom, CmpAtom)
        and atom.semantics == "sql"
        and atom.cross_tuple
        and atom.op in ORDER_OPS
        and (allow_negated or not atom.negated)
    )


def _sweep_struct(plan: Plan) -> Any:
    """Structural sweep eligibility: (guard, prior_is_alpha, consequents).

    The guard is a shared, non-negated, same-attribute order atom; every
    clause must additionally contain one order atom usable as a bisect
    range query (residual atoms are left to ``verify``).
    """
    if plan.arity != 2:
        return None
    shared = plan.shared_atoms()
    guard = next(
        (
            a
            for a in shared
            if _is_order_cmp(a, allow_negated=False)
            and a.lhs_attr == a.rhs_attr
        ),
        None,
    )
    if guard is None:
        return None
    shared_ids = {id(a) for a in shared}
    consequents = []
    for clause in plan.clauses:
        if len(plan.clauses) == 1:
            residual = [a for a in clause.atoms if a is not guard]
        else:
            residual = [a for a in clause.atoms if id(a) not in shared_ids]
        cons = next(
            (a for a in residual if _is_order_cmp(a, allow_negated=True)),
            None,
        )
        if cons is None:
            # A clause without an order consequent would fire for every
            # guard-true pair — no pruning; don't bother sweeping.
            return None
        consequents.append(cons)
    return guard, guard.op in ("<", "<="), consequents


def _column_kind(ctx: ExecutionContext, attr: str) -> str | None:
    """'num' / 'str' / 'empty' when a column is bisect-sortable, else None."""
    kind: str | None = None
    for v in ctx.column(attr):
        if v is None:
            continue
        if isinstance(v, bool) or isinstance(v, (int, float)):
            if isinstance(v, float) and math.isnan(v):
                continue
            k = "num"
        elif isinstance(v, str):
            k = "str"
        else:
            return None
        if kind is None:
            kind = k
        elif kind != k:
            return None
    return kind or "empty"


def _value_ok(v: Any, kind: str) -> bool:
    """Whether a cell participates in sorted structures of ``kind``."""
    if v is None:
        return False
    if kind == "num":
        if isinstance(v, bool):
            return True
        if isinstance(v, (int, float)):
            return not (isinstance(v, float) and math.isnan(v))
        return False
    if kind == "str":
        return isinstance(v, str)
    return False


@dataclass
class _SweepSpec:
    sort_attr: str
    sort_kind: str
    strict: bool
    prior_is_alpha: bool
    #: per clause: (store_attr, query_attr, effective_op, negated, kind)
    clauses: list[tuple[str, str, str, bool, str]]


def _sweep_spec(struct: Any, ctx: ExecutionContext) -> _SweepSpec | None:
    guard, prior_is_alpha, consequents = struct
    sort_kind = _column_kind(ctx, guard.lhs_attr)
    if sort_kind is None:
        return None
    clause_specs: list[tuple[str, str, str, bool, str]] = []
    for cons in consequents:
        if prior_is_alpha:
            # Guard α.A <= β.A: the already-seen rows play α — store
            # their α-side value, query with the current row's β-side.
            store_attr, query_attr = cons.lhs_attr, cons.rhs_attr
            eff_op = cons.op
        else:
            store_attr, query_attr = cons.rhs_attr, cons.lhs_attr
            eff_op = _FLIP[cons.op]
        store_kind = _column_kind(ctx, store_attr)
        query_kind = _column_kind(ctx, query_attr)
        if store_kind is None or query_kind is None:
            return None
        if "empty" not in (store_kind, query_kind) and store_kind != query_kind:
            # Cross-kind comparisons are SQL-false everywhere; scanning
            # is simpler than modelling that.
            return None
        kind = store_kind if store_kind != "empty" else query_kind
        clause_specs.append(
            (store_attr, query_attr, eff_op, cons.negated, kind)
        )
    return _SweepSpec(
        guard.lhs_attr,
        sort_kind,
        guard.op in ("<", ">"),
        prior_is_alpha,
        clause_specs,
    )


def strategy_hint(plan: Plan) -> str:
    """The kernel a plan would select (static; used by ``repro plan``)."""
    if plan.arity == 1:
        return "row-scan"
    if _shared_equality_attrs(plan):
        return "group-partition"
    if _sweep_struct(plan) is not None:
        return "sorted-sweep"
    if _shared_metric_atom(plan) is not None:
        return "metric-blocking"
    return "pair-scan"


# -- candidate generators ----------------------------------------------------


def _iter_scan_pairs(
    n: int,
    restrict: set[int] | None,
    shard: tuple[int, int] | None = None,
) -> Iterator[tuple[int, int]]:
    if restrict is None:
        for i in range(n):
            if not _owned(shard, i):
                continue
            for j in range(i + 1, n):
                yield i, j
        return
    for k, t in enumerate(sorted(restrict)):
        if not _owned(shard, k):
            continue
        for u in range(n):
            if u == t or (u in restrict and u < t):
                continue
            yield (t, u) if t < u else (u, t)


def _iter_group_pairs(
    ctx: ExecutionContext,
    attrs: tuple[str, ...],
    restrict: set[int] | None,
    shard: tuple[int, int] | None = None,
) -> Iterator[tuple[int, int]]:
    try:
        groups = ctx.group_rows(attrs)
    except TypeError:
        # Unhashable values can't be partitioned; scan instead.
        yield from _iter_scan_pairs(ctx.n, restrict, shard)
        return
    for g, indices in enumerate(groups):
        if len(indices) < 2 or not _owned(shard, g):
            continue
        if restrict is not None and restrict.isdisjoint(indices):
            continue
        for a in range(len(indices)):
            p = indices[a]
            for b in range(a + 1, len(indices)):
                q = indices[b]
                if restrict is not None and p not in restrict and q not in restrict:
                    continue
                yield (p, q) if p < q else (q, p)


def _iter_metric_pairs(
    ctx: ExecutionContext,
    atom: MetricAtom,
    restrict: set[int] | None,
    shard: tuple[int, int] | None = None,
) -> Iterator[tuple[int, int]]:
    n = ctx.n
    col = ctx.column(atom.attribute)
    # Bucket by (type, repr), not by the raw value: dict ``==`` collapse
    # (True == 1 == 1.0) is not metric-safe — collapsed values can sit
    # at different distances from a third value (str-based metrics see
    # "True" vs "1.0").  repr-equal same-type values are
    # indistinguishable to any deterministic metric, so each bucket has
    # one well-defined representative; all NaNs share a bucket.
    buckets: dict[Any, tuple[Any, list[int]]] = {}
    for r in range(n):
        v = col[r]
        key = (type(v), repr(v))
        entry = buckets.get(key)
        if entry is None:
            buckets[key] = (v, [r])
        else:
            entry[1].append(r)
    metric = atom.resolve_metric(ctx)
    reps = list(buckets.values())
    m = len(reps)

    def expand(rows_u: list[int], rows_v: list[int]) -> Iterator[tuple[int, int]]:
        for p in rows_u:
            for q in rows_v:
                if restrict is not None and p not in restrict and q not in restrict:
                    continue
                yield (p, q) if p < q else (q, p)

    def expand_self(rows_u: list[int]) -> Iterator[tuple[int, int]]:
        for a in range(len(rows_u)):
            p = rows_u[a]
            for b in range(a + 1, len(rows_u)):
                q = rows_u[b]
                if restrict is not None and p not in restrict and q not in restrict:
                    continue
                yield (p, q) if p < q else (q, p)

    numeric = metric.name == "abs_diff" and all(
        _value_ok(u, "num") for u, _ in reps
    )
    if numeric:
        # Value-sorted blocking: partners of u lie in the window
        # u + [low, high] (one side only — u <= v avoids double visits).
        reps.sort(key=lambda item: item[0])
        values = [u for u, _ in reps]
        iv = atom.interval
        low, high = iv.low, iv.high
        if atom.semantics == "within":
            low, high = 0.0, iv.high
        since_poll = 0
        for idx, (u, rows_u) in enumerate(reps):
            if not _owned(shard, idx):
                continue
            # Buckets whose window is empty yield nothing, so the
            # consumer never charges them; poll the budget directly so
            # deadlines and shard cancellation still bite.
            since_poll += 1
            if since_poll >= _BATCH:
                since_poll = 0
                checkpoint()
            if len(rows_u) > 1 and atom.accepts_distance(
                metric.distance(u, u)
            ):
                yield from expand_self(rows_u)
            lo_bound = u + low
            start = (
                bisect_right(values, lo_bound)
                if iv.low_open and atom.semantics != "within"
                else bisect_left(values, lo_bound)
            )
            if high == math.inf:
                end = m
            else:
                hi_bound = u + high
                end = (
                    bisect_left(values, hi_bound)
                    if iv.high_open
                    else bisect_right(values, hi_bound)
                )
            for k in range(max(start, idx + 1), end):
                yield from expand(rows_u, reps[k][1])
        return

    # Generic blocking: compare bucket representatives; only profitable
    # when there are far fewer distinct values than rows.
    if m * (m - 1) // 2 + m > n * (n - 1) // 2:
        yield from _iter_scan_pairs(n, restrict, shard)
        return
    since_poll = 0
    for a in range(m):
        if not _owned(shard, a):
            continue
        u, rows_u = reps[a]
        if len(rows_u) > 1 and atom.accepts_distance(metric.distance(u, u)):
            yield from expand_self(rows_u)
        for b in range(a + 1, m):
            # Rejected representative pairs are pure uncharged work
            # (distance computed, nothing yielded); poll per batch.
            since_poll += 1
            if since_poll >= _BATCH:
                since_poll = 0
                checkpoint()
            v, rows_v = reps[b]
            if atom.accepts_distance(metric.distance(u, v)):
                yield from expand(rows_u, rows_v)


def _iter_sweep_pairs(
    ctx: ExecutionContext,
    spec: _SweepSpec,
    shard: tuple[int, int] | None = None,
) -> Iterator[tuple[int, int]]:
    n = ctx.n
    sort_col = ctx.column(spec.sort_attr)
    rows = [r for r in range(n) if _value_ok(sort_col[r], spec.sort_kind)]
    rows.sort(key=lambda r: sort_col[r])
    store_cols = [ctx.column(s[0]) for s in spec.clauses]
    query_cols = [ctx.column(s[1]) for s in spec.clauses]
    # Per clause: sorted [(store_value, row)] plus the rows whose store
    # value is undefined (None/NaN) — SQL-false operands, so they fire
    # exactly the *negated* consequents.
    sorted_vals: list[list[tuple[Any, int]]] = [[] for _ in spec.clauses]
    bad_rows: list[list[int]] = [[] for _ in spec.clauses]
    prior_rows: list[int] = []

    # Sharding: a pair is owned by the sweep position of its *later*
    # row (the tie-block partner / the querying row), so shards of one
    # sweep partition the pair space while every shard still feeds all
    # rows through the sorted store structures.
    i = 0
    since_poll = 0
    while i < len(rows):
        v0 = sort_col[rows[i]]
        j = i
        while j < len(rows) and sort_col[rows[j]] == v0:
            j += 1
        block = rows[i:j]
        # A sweep over violation-free data yields nothing, so the
        # consumer never charges it; poll the budget per block batch so
        # deadlines and shard cancellation still interrupt the sweep.
        since_poll += len(block)
        if since_poll >= _BATCH:
            since_poll = 0
            checkpoint()
        if not spec.strict and len(block) > 1:
            # Non-strict guard: equal sort values satisfy the guard in
            # both orientations — brute-force the tie block.
            for b in range(1, len(block)):
                if not _owned(shard, i + b):
                    continue
                q = block[b]
                for a in range(b):
                    p = block[a]
                    yield (p, q) if p < q else (q, p)
        if prior_rows:
            for off, r in enumerate(block):
                if not _owned(shard, i + off):
                    continue
                fired: set[int] = set()
                for c, (_, _, eff_op, negated, kind) in enumerate(
                    spec.clauses
                ):
                    v = query_cols[c][r]
                    vals = sorted_vals[c]
                    if not _value_ok(v, kind):
                        if negated:
                            # Undefined comparison: ¬(x op v) is true
                            # for every stored x.
                            fired.update(prior_rows)
                        continue
                    lo = (v, -1)
                    hi = (v, n)
                    if not negated:
                        if eff_op == "<":
                            sl = vals[: bisect_left(vals, lo)]
                        elif eff_op == "<=":
                            sl = vals[: bisect_right(vals, hi)]
                        elif eff_op == ">":
                            sl = vals[bisect_right(vals, hi):]
                        else:
                            sl = vals[bisect_left(vals, lo):]
                    else:
                        if eff_op == "<":
                            sl = vals[bisect_left(vals, lo):]
                        elif eff_op == "<=":
                            sl = vals[bisect_right(vals, hi):]
                        elif eff_op == ">":
                            sl = vals[: bisect_right(vals, hi)]
                        else:
                            sl = vals[: bisect_left(vals, lo)]
                        fired.update(bad_rows[c])
                    fired.update(row for _, row in sl)
                    if len(fired) == len(prior_rows):
                        break
                for p in fired:
                    yield (p, r) if p < r else (r, p)
        for r in block:
            prior_rows.append(r)
            for c, (_, _, _, _, kind) in enumerate(spec.clauses):
                x = store_cols[c][r]
                if _value_ok(x, kind):
                    insort(sorted_vals[c], (x, r))
                else:
                    bad_rows[c].append(r)
        i = j


# -- executors ---------------------------------------------------------------

PairVerify = Callable[[int, int], "tuple[Any, Any] | None"]
RowVerify = Callable[[int], "tuple[Any, Any] | None"]


def _vector_binding(plan: Plan, ctx: ExecutionContext) -> Any | None:
    """The bound vectorized plan, or ``None`` for the scalar path.

    Routing order: the ``REPRO_KERNEL_BACKEND`` mode (``scalar`` never
    vectorizes; ``auto`` additionally requires ``_VEC_MIN_ROWS`` rows),
    the numpy/encoding substrate, the plan's static per-atom
    vectorizability, and finally :func:`kernels_vec.bind`'s dynamic
    per-context checks (column representability, metric identity).
    """
    mode = kernel_backend_mode()
    if mode == "scalar":
        return None
    if not HAS_NUMPY or not encoded_enabled():
        return None
    if not plan.vector_eligible:
        return None
    if mode == "auto" and ctx.n < _VEC_MIN_ROWS:
        return None
    from . import kernels_vec

    return kernels_vec.bind(plan, ctx)


def _candidates(
    plan: Plan,
    ctx: ExecutionContext,
    restrict: set[int] | None,
    shard: tuple[int, int] | None,
) -> tuple[str, Iterable[tuple[int, int]]]:
    eq_attrs = _shared_equality_attrs(plan)
    if eq_attrs:
        return "group", _iter_group_pairs(ctx, eq_attrs, restrict, shard)
    if restrict is None:
        struct = _sweep_struct(plan)
        if struct is not None:
            spec = _sweep_spec(struct, ctx)
            if spec is not None:
                return "sweep", _iter_sweep_pairs(ctx, spec, shard)
    atom = _shared_metric_atom(plan)
    if atom is not None:
        return "metric", _iter_metric_pairs(ctx, atom, restrict, shard)
    return "scan", _iter_scan_pairs(ctx.n, restrict, shard)


def execute_pairs_keyed(
    plan: Plan,
    ctx: ExecutionContext,
    verify: PairVerify,
    *,
    restrict: set[int] | None = None,
    first_only: bool = False,
    shard: tuple[int, int] | None = None,
) -> tuple[str, list[tuple[Any, Any]]]:
    """Run a pair plan; return ``(strategy, unsorted keyed hits)``.

    The building block of both the serial executor (:func:`execute_pairs`
    sorts the hits) and the sharded one (:mod:`repro.plan.parallel`
    concatenates every shard's hits and sorts once).  With a ``shard``
    the per-execution bookkeeping (execution count, total pair space,
    strategy note) is suppressed — the shard *owner* records it exactly
    once — while per-pair work (pairs examined, candidate/verified
    volume, budget checkpoints) is recorded normally and sums across
    shards to the unsharded totals.
    """
    n = ctx.n
    root = shard is None
    if root:
        COUNTERS.executions += 1
        COUNTERS.pairs_total += n * (n - 1) // 2
    if plan.never:
        # Static analysis proved no clause can fire — nothing to scan.
        if root:
            COUNTERS.note("never")
        return "never", []
    vp = _vector_binding(plan, ctx)
    hits: list[tuple[Any, Any]]
    if vp is not None:
        from . import kernels_vec

        strategy = f"vec-{vp.strategy}"
        if root:
            COUNTERS.note(strategy)
        examined = COUNTERS.pairs_examined
        hits = kernels_vec.run_pairs(
            vp, verify, restrict=restrict, first_only=first_only,
            shard=shard,
        )
        COUNTERS.note_work(
            strategy,
            candidates=COUNTERS.pairs_examined - examined,
            verified=len(hits),
        )
        return strategy, hits
    strategy, candidates = _candidates(plan, ctx, restrict, shard)
    if root:
        COUNTERS.note(strategy)
    hits = []
    pending = 0
    examined = 0
    for p, q in candidates:
        pending += 1
        if pending >= _BATCH:
            COUNTERS.pairs_examined += pending
            examined += pending
            checkpoint(pairs=pending)
            pending = 0
        hit = verify(p, q)
        if hit is not None:
            hits.append(hit)
            if first_only:
                break
    COUNTERS.pairs_examined += pending
    examined += pending
    checkpoint(pairs=pending)
    COUNTERS.note_work(strategy, candidates=examined, verified=len(hits))
    return strategy, hits


def execute_pairs(
    plan: Plan,
    ctx: ExecutionContext,
    verify: PairVerify,
    *,
    restrict: set[int] | None = None,
    first_only: bool = False,
) -> list[Any]:
    """Run a pair plan; return verified payloads in legacy scan order.

    ``verify(p, q)`` (p < q) re-checks a candidate with the notation's
    own predicate and returns ``(sort_key, payload)`` or ``None``.
    ``restrict`` keeps only candidates touching the given rows (the
    incremental re-probe).  ``first_only`` short-circuits on the first
    verified hit (``holds``-style queries).
    """
    _, hits = execute_pairs_keyed(
        plan, ctx, verify, restrict=restrict, first_only=first_only
    )
    hits.sort(key=lambda item: item[0])
    return [payload for _, payload in hits]


def execute_rows(
    plan: Plan,
    ctx: ExecutionContext,
    verify: RowVerify,
    *,
    restrict: set[int] | None = None,
    first_only: bool = False,
) -> list[Any]:
    """Run a single-tuple (arity-1) plan over rows."""
    COUNTERS.executions += 1
    if plan.never:
        COUNTERS.note("never")
        return []
    vp = _vector_binding(plan, ctx)
    hits: list[tuple[Any, Any]]
    if vp is not None:
        from . import kernels_vec

        COUNTERS.note("vec-rows")
        hits = kernels_vec.run_rows(
            vp, verify, restrict=restrict, first_only=first_only
        )
        COUNTERS.note_work("vec-rows", verified=len(hits))
        hits.sort(key=lambda item: item[0])
        return [payload for _, payload in hits]
    COUNTERS.note("rows")
    rows: Iterable[int] = (
        sorted(restrict) if restrict is not None else range(ctx.n)
    )
    hits = []
    pending = 0
    for r in rows:
        pending += 1
        if pending >= _BATCH:
            checkpoint()
            pending = 0
        hit = verify(r)
        if hit is not None:
            hits.append(hit)
            if first_only:
                break
    checkpoint()
    COUNTERS.note_work("rows", verified=len(hits))
    hits.sort(key=lambda item: item[0])
    return [payload for _, payload in hits]
