"""Mixed-notation rule files for the CLI (``repro check`` / ``watch``).

A rule file is a JSON document::

    {"rules": [
        {"kind": "FD",  "lhs": ["zip"], "rhs": ["city"]},
        {"kind": "AFD", "lhs": "zip", "rhs": "city", "max_error": 0.05},
        {"kind": "CFD", "lhs": ["region"], "rhs": ["code"],
         "pattern": {"region": "Jackson"}},
        {"kind": "MFD", "lhs": ["name"], "rhs": ["price"], "delta": 500},
        {"kind": "DD",  "lhs": {"street": [0, 5]}, "rhs": {"zip": 0}},
        {"kind": "MD",  "lhs": {"street": 5}, "rhs": ["zip"]},
        {"kind": "OD",  "lhs": ["nights"], "rhs": [["price", ">="]]},
        {"kind": "SD",  "lhs": ["nights"], "rhs": "subtotal",
         "gap": [100, 200]},
        {"kind": "DC",  "predicates": [
            {"attr1": "subtotal", "op": "<", "attr2": "subtotal"},
            {"attr1": "taxes",    "op": ">", "attr2": "taxes"}]}
    ]}

``kind`` names come from the survey's Table 2 vocabulary (see
:mod:`repro.survey.registry`); a known notation without a rule-file
constructor yet is reported as such, distinctly from a typo.  The full
per-kind field reference lives in ``docs/api.md``.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .core.base import Dependency
from .core.categorical.afd import AFD
from .core.categorical.cfd import CFD
from .core.categorical.fd import FD
from .core.heterogeneous.dd import DD
from .core.heterogeneous.md import MD
from .core.heterogeneous.mfd import MFD
from .core.numerical.dc import DC, Predicate
from .core.numerical.od import OD
from .core.numerical.sd import SD
from .runtime.errors import InputError
from .survey.registry import NOTATIONS


class RuleFileError(InputError):
    """Raised for malformed or unsupported rule files.

    Subclasses :class:`~repro.runtime.errors.InputError` (and thus
    ``ValueError``): rule files are user input, so generic
    ``except ReproError`` / ``except ValueError`` handlers both catch.
    """


def _require(rule: Mapping[str, Any], *fields: str) -> list[Any]:
    missing = [f for f in fields if f not in rule]
    if missing:
        raise RuleFileError(
            f"{rule.get('kind', '?')} rule is missing field(s) "
            f"{', '.join(missing)}: {rule!r}"
        )
    return [rule[f] for f in fields]


def _names(spec: Any) -> Any:
    """Pass through strings/lists; JSON has no tuples so nothing to do."""
    return spec


def _interval(spec: Any) -> Any:
    """JSON ``[lo, hi]`` lists become the (lo, hi) tuples parsers expect;
    ``null`` endpoints mean unbounded."""
    if isinstance(spec, list):
        return tuple(spec)
    return spec


def _ranges(spec: Any, kind: str) -> dict[str, Any]:
    if not isinstance(spec, Mapping) or not spec:
        raise RuleFileError(
            f"{kind} side must be a non-empty {{attribute: constraint}} "
            f"object, got {spec!r}"
        )
    return {attr: _interval(v) for attr, v in spec.items()}


def _marked(spec: Any) -> list:
    """OD sides: ``"attr"`` or ``["attr", "mark"]`` entries."""
    if isinstance(spec, str):
        return [spec]
    out = []
    for item in spec:
        out.append(tuple(item) if isinstance(item, list) else item)
    return out


def _dc_predicate(spec: Mapping[str, Any]) -> Predicate:
    """One DC atom.

    Short forms: ``{"attr1", "op", "attr2"}`` is the two-tuple atom
    ``tα.attr1 op tβ.attr2`` and ``{"attr", "op", "const"}`` the
    constant atom ``tα.attr op const``.  The explicit form spells out
    ``lhs_var``/``lhs_attr``/``rhs_var``/``rhs_attr``/``const``.
    """
    if not isinstance(spec, Mapping):
        raise RuleFileError(f"DC predicate must be an object, got {spec!r}")
    if "attr1" in spec:
        op, attr1 = _require(spec, "op", "attr1")
        return Predicate("a", attr1, op, "b", spec.get("attr2", attr1))
    if "attr" in spec:
        op, attr = _require(spec, "op", "attr")
        if "const" not in spec:
            raise RuleFileError(
                f"constant DC predicate needs 'const': {spec!r}"
            )
        return Predicate(
            spec.get("var", "a"), attr, op, None, None, spec["const"]
        )
    lhs_var = spec.get("lhs_var", "a")
    op, lhs_attr = _require(spec, "op", "lhs_attr")
    if "rhs_attr" in spec:
        return Predicate(
            lhs_var, lhs_attr, op, spec.get("rhs_var", "b"), spec["rhs_attr"]
        )
    return Predicate(lhs_var, lhs_attr, op, None, None, spec.get("const"))


def _build_fd(rule: Mapping[str, Any]) -> Dependency:
    lhs, rhs = _require(rule, "lhs", "rhs")
    return FD(_names(lhs), _names(rhs))


def _build_afd(rule: Mapping[str, Any]) -> Dependency:
    lhs, rhs = _require(rule, "lhs", "rhs")
    return AFD(_names(lhs), _names(rhs), rule.get("max_error", 0.0))


def _build_cfd(rule: Mapping[str, Any]) -> Dependency:
    lhs, rhs = _require(rule, "lhs", "rhs")
    pattern = rule.get("pattern") or {}
    pattern = {a: v for a, v in pattern.items() if v != "_"}
    return CFD(_names(lhs), _names(rhs), pattern)


def _build_mfd(rule: Mapping[str, Any]) -> Dependency:
    lhs, rhs, delta = _require(rule, "lhs", "rhs", "delta")
    return MFD(_names(lhs), _names(rhs), delta)


def _build_dd(rule: Mapping[str, Any]) -> Dependency:
    lhs, rhs = _require(rule, "lhs", "rhs")
    return DD(_ranges(lhs, "DD"), _ranges(rhs, "DD"))


def _build_md(rule: Mapping[str, Any]) -> Dependency:
    lhs, rhs = _require(rule, "lhs", "rhs")
    if not isinstance(lhs, Mapping) or not lhs:
        raise RuleFileError(
            f"MD lhs must be a non-empty {{attribute: threshold}} object, "
            f"got {lhs!r}"
        )
    return MD(dict(lhs), _names(rhs))


def _build_od(rule: Mapping[str, Any]) -> Dependency:
    lhs, rhs = _require(rule, "lhs", "rhs")
    return OD(_marked(lhs), _marked(rhs))


def _build_sd(rule: Mapping[str, Any]) -> Dependency:
    lhs, rhs = _require(rule, "lhs", "rhs")
    gap = _interval(rule.get("gap", (0.0, None)))
    return SD(_names(lhs), rhs, gap)


def _build_dc(rule: Mapping[str, Any]) -> Dependency:
    (predicates,) = _require(rule, "predicates")
    if not isinstance(predicates, list) or not predicates:
        raise RuleFileError(
            f"DC needs a non-empty 'predicates' list, got {predicates!r}"
        )
    return DC([_dc_predicate(p) for p in predicates])


BUILDERS: dict[str, Callable[[Mapping[str, Any]], Dependency]] = {
    "FD": _build_fd,
    "AFD": _build_afd,
    "CFD": _build_cfd,
    "MFD": _build_mfd,
    "DD": _build_dd,
    "MD": _build_md,
    "OD": _build_od,
    "SD": _build_sd,
    "DC": _build_dc,
}


def parse_rule(rule: Mapping[str, Any]) -> Dependency:
    """Build one dependency from its JSON object."""
    if not isinstance(rule, Mapping):
        raise RuleFileError(f"each rule must be a JSON object, got {rule!r}")
    kind = rule.get("kind")
    if kind is None:
        raise RuleFileError(f"rule has no 'kind': {rule!r}")
    builder = BUILDERS.get(kind)
    if builder is None:
        info = NOTATIONS.get(kind)
        if info is not None:
            raise RuleFileError(
                f"notation {kind} ({info.full_name}) has no rule-file "
                f"constructor yet; supported kinds: "
                f"{', '.join(sorted(BUILDERS))}"
            )
        raise RuleFileError(
            f"unknown notation {kind!r}; Table 2 notations are: "
            f"{', '.join(NOTATIONS)}"
        )
    try:
        return builder(rule)
    except RuleFileError:
        raise
    except Exception as exc:
        raise RuleFileError(f"bad {kind} rule {rule!r}: {exc}") from exc


@dataclass(frozen=True)
class RuleEntry:
    """One parsed rule plus its source metadata.

    The static analyzer (:mod:`repro.analysis`) reports diagnostics
    against the rule's *location*, so users can map findings back to
    the JSON document that declared them; ``raw`` keeps the original
    JSON object so ``repro lint --fix`` can re-emit surviving rules
    verbatim.
    """

    dependency: Dependency
    raw: Mapping[str, Any]
    index: int
    rule_id: str | None = None
    source: str | None = None

    @property
    def name(self) -> str:
        """The declared ``id``, falling back to the dependency label."""
        return self.rule_id if self.rule_id else self.dependency.label()

    @property
    def location(self) -> str:
        """Human-readable source location, e.g. ``rules.json#rules[3]``."""
        base = self.source if self.source else "<rules>"
        return f"{base}#rules[{self.index}]"


def _rule_list(payload: Any) -> list[Any]:
    if isinstance(payload, Mapping):
        rules = payload.get("rules")
        if rules is None:
            raise RuleFileError("rule file must have a top-level 'rules' list")
    else:
        rules = payload
    if not isinstance(rules, list) or not rules:
        raise RuleFileError(f"'rules' must be a non-empty list, got {rules!r}")
    return rules


def parse_rules_with_meta(
    payload: Any, source: str | None = None
) -> list[RuleEntry]:
    """Parse a rule-file document, keeping per-rule source metadata.

    Each rule object may carry an optional ``"id"`` string; ids must be
    unique across the document — a duplicate raises
    :class:`RuleFileError` naming both declaration sites.
    """
    entries: list[RuleEntry] = []
    seen_ids: dict[str, RuleEntry] = {}
    for index, raw in enumerate(_rule_list(payload)):
        dep = parse_rule(raw)
        rule_id = raw.get("id") if isinstance(raw, Mapping) else None
        if rule_id is not None and not isinstance(rule_id, str):
            raise RuleFileError(
                f"rule 'id' must be a string, got {rule_id!r}: {raw!r}"
            )
        entry = RuleEntry(
            dependency=dep,
            raw=raw,
            index=index,
            rule_id=rule_id,
            source=source,
        )
        if rule_id is not None:
            first = seen_ids.get(rule_id)
            if first is not None:
                raise RuleFileError(
                    f"duplicate rule id {rule_id!r}: first declared at "
                    f"{first.location}, declared again at {entry.location}"
                )
            seen_ids[rule_id] = entry
        entries.append(entry)
    return entries


def parse_rules(payload: Any) -> list[Dependency]:
    """Parse a rule-file document (``{"rules": [...]}`` or a bare list)."""
    return [e.dependency for e in parse_rules_with_meta(payload)]


def load_rules_with_meta(path: str | Path) -> list[RuleEntry]:
    """Load a JSON rule file, keeping per-rule source metadata."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise RuleFileError(f"{path}: invalid JSON: {exc}") from exc
    return parse_rules_with_meta(payload, source=str(path))


def load_rules(path: str | Path) -> list[Dependency]:
    """Load and parse a JSON rule file."""
    return [e.dependency for e in load_rules_with_meta(path)]
