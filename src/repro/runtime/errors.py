"""Structured error taxonomy for the whole library.

Three failure families, so callers can branch on *what went wrong*
instead of string-matching bare ``ValueError`` messages:

* :class:`InputError` — the caller handed us bad data: a malformed CSV
  cell, an ill-typed rule file, an unknown attribute.  Subclasses
  ``ValueError`` so existing ``except ValueError`` call sites keep
  working; carries optional ``row``/``column``/``source`` context.
* :class:`BudgetExhausted` — a resource :class:`~repro.runtime.budget.
  Budget` ran out (deadline, candidate cap, pair cap, memory ceiling).
  Raised *internally* by cooperative checkpoints; discovery and repair
  entry points catch it and return honest partial results, so user
  code only sees it from low-level primitives.
* :class:`EngineFault` — the substrate or a metric misbehaved
  (raised unexpectedly, returned a corrupted result).  Engines convert
  unexpected exceptions at the substrate/metric boundary into this so
  a fault is always typed, never a silent wrong answer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from .budget import Budget


class ReproError(Exception):
    """Base class for all typed library errors."""


class InputError(ReproError, ValueError):
    """Malformed user input (CSV cells, rule files, CLI arguments).

    ``row`` is the 1-based line number in the input as counted by the
    CSV reader (the header is line 1), so it stays correct across
    quoted multi-line fields.  The context is appended to the message —
    ``str(exc)`` alone locates the bad cell — and also kept as
    attributes for programmatic handling.
    """

    def __init__(
        self,
        message: str,
        *,
        row: int | None = None,
        column: str | None = None,
        source: str | None = None,
    ) -> None:
        context = []
        if source is not None:
            context.append(f"in {source}")
        if row is not None:
            context.append(f"line {row}")
        if column is not None:
            context.append(f"column {column!r}")
        if context:
            message = f"{message} ({', '.join(context)})"
        super().__init__(message)
        self.row = row
        self.column = column
        self.source = source


class BudgetExhausted(ReproError):
    """A resource budget ran out mid-computation.

    ``reason`` is one of ``"deadline"``, ``"candidates"``, ``"pairs"``,
    ``"memory"`` — the same string surfaced on
    ``DiscoveryStats.exhausted`` / ``RepairLog.exhausted``.
    """

    def __init__(self, reason: str, budget: Budget | None = None) -> None:
        super().__init__(f"budget exhausted: {reason}")
        self.reason = reason
        self.budget = budget


class EngineFault(ReproError):
    """An engine's substrate or metric failed or returned garbage."""

    def __init__(self, message: str, *, site: str | None = None) -> None:
        super().__init__(message)
        self.site = site
