"""Fault injection at the substrate/metric boundary.

Robustness work needs a way to *prove* that every engine either
completes, returns an honest partial result, or raises a typed
:class:`~repro.runtime.errors.EngineFault` — never hangs and never
returns silently-wrong output.  :class:`FaultInjector` makes the two
load-bearing boundaries misbehave on demand:

* ``"metric"`` — :meth:`repro.metrics.base.Metric.distance`: injectable
  latency, raised exceptions, and *corrupted* return values (negative
  distances, NaN) that a correct engine must detect and reject;
* ``"partition"`` / ``"groups"`` — the shared
  :class:`~repro.relation.partition_cache.PartitionCache` access paths
  every partition-based algorithm (TANE, CFDMiner, repair) sits on.

Faults are installed by monkey-patching the class methods for the
dynamic extent of a ``with FaultInjector(...):`` block and always
restored on exit, so the harness composes with any engine without
engines knowing about it.  Triggering is deterministic (call-count
based: fire after ``after`` calls, then every ``every``-th), which
keeps the fault suite reproducible.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any

SITES = ("metric", "partition", "groups")

#: Hard-crash sites in the server durability layer (see
#: :mod:`repro.server.durability`): the process dies with ``os._exit``
#: — no flushing, no ``atexit``, exactly what ``kill -9`` looks like
#: from the filesystem's point of view.
CRASH_SITES = ("wal-append", "snapshot-write", "replay")

_CRASH_ENV = "REPRO_CRASH_POINT"
_CRASH_EXIT_CODE = 137  # what a SIGKILLed process reports

#: site -> remaining hits before the crash fires (armed sites only).
_crash_armed: dict[str, int] = {}
_crash_env_loaded = False


def arm_crash_point(site: str, after: int = 1) -> None:
    """Arm ``site`` to hard-kill the process on its ``after``-th hit.

    The crash is ``os._exit(137)`` — buffered file data is lost, locks
    are not released, nothing is flushed.  Chaos tests arm a crash
    point (directly, or via the ``REPRO_CRASH_POINT=site[:after]``
    environment variable in a server subprocess), drive load until the
    process dies, and assert that recovery reproduces exactly the
    acknowledged prefix.
    """
    if site not in CRASH_SITES:
        raise ValueError(
            f"unknown crash site {site!r}; known sites: {CRASH_SITES}"
        )
    if after < 1:
        raise ValueError("'after' must be >= 1")
    _crash_armed[site] = after


def disarm_crash_points() -> None:
    """Disarm every crash point (tests clean up with this)."""
    _crash_armed.clear()


def _load_crash_env() -> None:
    """Arm crash points from ``REPRO_CRASH_POINT=site[:after][,...]``."""
    global _crash_env_loaded
    if _crash_env_loaded:
        return
    _crash_env_loaded = True
    raw = os.environ.get(_CRASH_ENV, "").strip()
    if not raw:
        return
    for part in raw.split(","):
        site, _, count = part.strip().partition(":")
        arm_crash_point(site, int(count) if count else 1)


def crash_armed(site: str) -> bool:
    """Cheap fast-path check: is ``site`` armed at all?

    Durability hot paths (WAL append) gate their crash-window code on
    this so the un-armed cost is one dict lookup.
    """
    _load_crash_env()
    return site in _crash_armed


def crash_point(site: str) -> None:
    """Advance ``site``'s countdown; hard-exit when it reaches zero.

    A no-op unless the site was armed via :func:`arm_crash_point` or
    the ``REPRO_CRASH_POINT`` environment variable.
    """
    _load_crash_env()
    remaining = _crash_armed.get(site)
    if remaining is None:
        return
    if remaining > 1:
        _crash_armed[site] = remaining - 1
        return
    os._exit(_CRASH_EXIT_CODE)

#: Sentinel: "no fault fired, run the real implementation".
_REAL = object()


class FaultInjected(RuntimeError):
    """The default exception raised by an ``exception`` fault."""


@dataclass
class FaultSpec:
    """One injectable fault at one site.

    ``kind``:

    * ``"latency"`` — sleep ``latency_s`` then run the real call;
    * ``"exception"`` — raise ``exception(message)``;
    * ``"corrupt"`` — return ``corrupt_value`` instead of the real
      result (only meaningful for ``"metric"``).

    Fires on calls ``after + 1``, ``after + 1 + every``, ... to the
    site (deterministic, per-injector call counting).
    """

    site: str
    kind: str
    every: int = 1
    after: int = 0
    latency_s: float = 0.0
    exception: type[Exception] = FaultInjected
    message: str = "injected fault"
    corrupt_value: Any = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: {SITES}"
            )
        if self.kind not in ("latency", "exception", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.every < 1:
            raise ValueError("'every' must be >= 1")


class FaultInjector:
    """Context manager installing :class:`FaultSpec` s for its extent."""

    def __init__(self, *specs: FaultSpec) -> None:
        self.specs = list(specs)
        self.calls: Counter[str] = Counter()
        self.fired: Counter[str] = Counter()
        self._saved: list[tuple[type[Any], str, Any]] = []

    # -- trigger logic -------------------------------------------------

    def _intercept(self, site: str) -> Any:
        """Advance the site's call count; fire any due fault.

        Returns :data:`_REAL` when the real implementation should run,
        or the corrupt value to substitute; raises for exception
        faults; sleeps (then returns :data:`_REAL`) for latency faults.
        """
        self.calls[site] += 1
        n = self.calls[site]
        for spec in self.specs:
            if spec.site != site or n <= spec.after:
                continue
            if (n - spec.after - 1) % spec.every != 0:
                continue
            self.fired[site] += 1
            if spec.kind == "latency":
                time.sleep(spec.latency_s)
                continue
            if spec.kind == "exception":
                raise spec.exception(spec.message)
            return spec.corrupt_value
        return _REAL

    # -- installation --------------------------------------------------

    def _patch(self, cls: type[Any], name: str, wrapper: Any) -> None:
        self._saved.append((cls, name, cls.__dict__[name]))
        setattr(cls, name, wrapper)

    def __enter__(self) -> "FaultInjector":
        from ..metrics.base import Metric
        from ..relation.partition_cache import PartitionCache

        injector = self
        real_distance = Metric.distance
        real_partition = PartitionCache.partition
        real_groups = PartitionCache.groups

        def distance(self: Any, a: Any, b: Any) -> Any:
            hit = injector._intercept("metric")
            if hit is not _REAL:
                return hit
            return real_distance(self, a, b)

        def partition(self: Any, attributes: Any) -> Any:
            hit = injector._intercept("partition")
            if hit is not _REAL:  # pragma: no cover - corrupt unsupported
                return hit
            return real_partition(self, attributes)

        def groups(self: Any, attributes: Any) -> Any:
            hit = injector._intercept("groups")
            if hit is not _REAL:  # pragma: no cover - corrupt unsupported
                return hit
            return real_groups(self, attributes)

        self._patch(Metric, "distance", distance)
        self._patch(PartitionCache, "partition", partition)
        self._patch(PartitionCache, "groups", groups)
        return self

    def __exit__(self, *exc_info: object) -> None:
        while self._saved:
            cls, name, original = self._saved.pop()
            setattr(cls, name, original)


def inject(
    site: str,
    kind: str,
    **kwargs: Any,
) -> FaultInjector:
    """Shorthand: ``with inject("metric", "exception"): ...``."""
    return FaultInjector(FaultSpec(site=site, kind=kind, **kwargs))
