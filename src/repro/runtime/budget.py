"""Resource budgets and cooperative cancellation.

The discovery side of the family tree is worst-case exponential
(lattice traversal, predicate-space enumeration — Fig. 3's hard end),
so every governed entry point accepts a :class:`Budget` and threads a
cooperative :func:`checkpoint` through its inner loops.  The contract:

* **No budget set** — :func:`checkpoint` is a single context-variable
  read returning immediately; the governed path is bit-identical to an
  ungoverned run (``bench_runtime_guard`` pins the <5% overhead bound).
* **Budget set** — checkpoints count work (candidates, tuple pairs)
  and watch the wall clock; when a cap is hit they raise
  :class:`~repro.runtime.errors.BudgetExhausted` *internally*.  Entry
  points catch it and return a partial result flagged with
  ``stats.complete = False`` / ``stats.exhausted = <reason>`` —
  exhaustion never propagates to the user as an exception from a
  discovery or repair call.

Budgets nest ambiently: ``with governed(budget):`` installs the budget
for the dynamic extent, and any governed entry point called underneath
with ``budget=None`` inherits it (the CLI and profiler govern whole
multi-pass runs this way).  An explicitly passed budget wins over the
ambient one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

from .errors import BudgetExhausted

_MEMORY_CHECK_STRIDE = 64

_current: ContextVar["Budget | None"] = ContextVar(
    "repro_current_budget", default=None
)


@dataclass
class Budget:
    """Resource caps for one governed run.

    All caps are optional; an all-``None`` budget counts work but never
    exhausts.  A budget accumulates counters across the run it governs;
    call :meth:`reset` to reuse one for a fresh run.
    """

    #: Wall-clock deadline in seconds from :meth:`start`.
    deadline_s: float | None = None
    #: Cap on candidate checks (lattice nodes, cover-search nodes, ...).
    max_candidates: int | None = None
    #: Cap on tuple-pair probes (evidence sets, pairwise distances, ...).
    max_pairs: int | None = None
    #: Peak-RSS ceiling in bytes (checked coarsely, every
    #: ``_MEMORY_CHECK_STRIDE`` checkpoints, via ``resource``).
    max_memory_bytes: int | None = None

    #: Work counters, advanced by :meth:`checkpoint`.
    candidates: int = field(default=0, init=False)
    pairs: int = field(default=0, init=False)
    #: ``""`` while within budget; the exhaustion reason afterwards.
    exhausted: str = field(default="", init=False)

    _deadline_at: float | None = field(default=None, init=False, repr=False)
    _ticks: int = field(default=0, init=False, repr=False)
    _parent: "Budget | None" = field(default=None, init=False, repr=False)

    def start(self) -> "Budget":
        """Arm the deadline (idempotent: the first call wins)."""
        if self.deadline_s is not None and self._deadline_at is None:
            self._deadline_at = time.monotonic() + self.deadline_s
        return self

    def reset(self) -> "Budget":
        """Clear counters and re-arm for a fresh run."""
        self.candidates = 0
        self.pairs = 0
        self.exhausted = ""
        self._deadline_at = None
        self._ticks = 0
        return self

    def child(
        self,
        *,
        deadline_s: float | None = None,
        max_candidates: int | None = None,
        max_pairs: int | None = None,
        max_memory_bytes: int | None = None,
    ) -> "Budget":
        """Derive a stage-scoped budget from this one.

        The request/job pattern: one request-scoped budget is split
        across job stages by handing each stage a *child* whose caps
        never exceed the parent's remaining headroom:

        * ``deadline_s`` is clamped to the parent's :meth:`remaining_s`
          (a parent without a deadline passes the stage's through);
        * ``max_candidates`` / ``max_pairs`` are clamped to the
          parent's cap minus the work already counted against it;
        * ``max_memory_bytes`` is the min of both (RSS is a process
          property, not a per-stage one).

        Passing ``None`` for a cap inherits the parent's *remaining*
        headroom for that dimension outright, so ``budget.child()``
        with no arguments is "whatever is left".

        Work counted by the child's checkpoints propagates up the
        parent chain — the parent's counters keep accumulating across
        stages and are **never reset** by derivation — but exhaustion
        is raised from (and recorded on) the child: a stage running
        out does not poison the parent, whose next child simply
        derives from smaller headroom.
        """
        self.start()

        def clamp(requested: int | None, cap: int | None, spent: int) -> int | None:
            headroom = None if cap is None else max(0, cap - spent)
            if requested is None:
                return headroom
            return requested if headroom is None else min(requested, headroom)

        remaining = self.remaining_s()
        if deadline_s is None:
            child_deadline = remaining
        elif remaining is None:
            child_deadline = deadline_s
        else:
            child_deadline = min(deadline_s, remaining)
        child = Budget(
            deadline_s=child_deadline,
            max_candidates=clamp(
                max_candidates, self.max_candidates, self.candidates
            ),
            max_pairs=clamp(max_pairs, self.max_pairs, self.pairs),
            max_memory_bytes=(
                max_memory_bytes
                if self.max_memory_bytes is None
                else min(
                    max_memory_bytes or self.max_memory_bytes,
                    self.max_memory_bytes,
                )
            ),
        )
        child._parent = self
        return child

    def remaining_s(self) -> float | None:
        """Seconds until the deadline, or ``None`` with no deadline."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.monotonic())

    def expired(self) -> bool:
        """Whether any cap is already blown (without raising)."""
        if self.exhausted:
            return True
        if (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        ):
            return True
        if (
            self.max_candidates is not None
            and self.candidates >= self.max_candidates
        ):
            return True
        return self.max_pairs is not None and self.pairs >= self.max_pairs

    def _exhaust(self, reason: str) -> None:
        self.exhausted = reason
        raise BudgetExhausted(reason, budget=self)

    def checkpoint(self, candidates: int = 0, pairs: int = 0) -> None:
        """Record work; raise :class:`BudgetExhausted` past any cap.

        Once exhausted, every later checkpoint raises again — so a
        multi-pass caller (the profiler) fails fast through its
        remaining passes instead of grinding on a dead deadline.
        """
        self.candidates += candidates
        self.pairs += pairs
        if candidates or pairs:
            # Derived budgets bill their work up the parent chain, so a
            # request-scoped budget sees the total across job stages.
            parent = self._parent
            while parent is not None:
                parent.candidates += candidates
                parent.pairs += pairs
                parent = parent._parent
        if self.exhausted:
            raise BudgetExhausted(self.exhausted, budget=self)
        if (
            self.max_candidates is not None
            and self.candidates > self.max_candidates
        ):
            self._exhaust("candidates")
        if self.max_pairs is not None and self.pairs > self.max_pairs:
            self._exhaust("pairs")
        if self._deadline_at is None and self.deadline_s is not None:
            self.start()
        if (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        ):
            self._exhaust("deadline")
        if self.max_memory_bytes is not None:
            self._ticks += 1
            if self._ticks % _MEMORY_CHECK_STRIDE == 0:
                if _peak_rss_bytes() > self.max_memory_bytes:
                    self._exhaust("memory")


def _peak_rss_bytes() -> int:
    """Peak RSS of this process in bytes (0 where unsupported)."""
    try:
        import resource
        import sys

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return rss if sys.platform == "darwin" else rss * 1024
    except Exception:  # pragma: no cover - non-POSIX platforms
        return 0


def current_budget() -> Budget | None:
    """The ambient budget installed by :func:`governed`, if any."""
    return _current.get()


def resolve_budget(budget: Budget | None) -> Budget | None:
    """An explicitly passed budget, else the ambient one, else ``None``."""
    return budget if budget is not None else _current.get()


@contextmanager
def governed(budget: Budget | None) -> Iterator[Budget | None]:
    """Install ``budget`` as the ambient budget for this dynamic extent.

    ``governed(None)`` is a transparent no-op (the surrounding ambient
    budget, if any, stays in force), so entry points can uniformly wrap
    their bodies without disturbing an outer governor.
    """
    if budget is None:
        yield _current.get()
        return
    budget.start()
    token = _current.set(budget)
    try:
        yield budget
    finally:
        _current.reset(token)


def checkpoint(candidates: int = 0, pairs: int = 0) -> None:
    """Cooperative cancellation point for engine inner loops.

    A no-op (one context-variable read) when no budget is active.
    """
    b = _current.get()
    if b is not None:
        b.checkpoint(candidates=candidates, pairs=pairs)


# -- graceful degradation helpers --------------------------------------

def sample_relation(relation, max_rows: int = 64):
    """An evenly strided row sample (deterministic, order-preserving)."""
    n = len(relation)
    if n <= max_rows:
        return relation
    stride = n / max_rows
    indices = sorted({min(int(k * stride), n - 1) for k in range(max_rows)})
    return relation.take(indices)


def verify_on_sample(
    relation,
    candidates: Sequence,
    *,
    max_candidates: int = 50,
    max_rows: int = 64,
) -> list:
    """Sampled verification of enumerated-but-unchecked candidates.

    The FASTDC/Hydra-style degradation: when the exact search ran out
    of budget, verify the pending candidates on a bounded row sample
    instead of dropping them.  Survivors are *sampled-verified only* —
    callers must report them under ``stats.sampled_verified`` and keep
    ``stats.complete = False`` so the answer stays honest.

    Deliberately budget-blind (it must run *after* exhaustion) but
    hard-capped on both rows and candidates, so the post-deadline
    overrun stays bounded.
    """
    if not candidates:
        return []
    sample = sample_relation(relation, max_rows=max_rows)
    out = []
    for dep in list(candidates)[:max_candidates]:
        try:
            if dep.holds(sample):
                out.append(dep)
        except Exception:
            continue
    return out
