"""Resource budgets and cooperative cancellation.

The discovery side of the family tree is worst-case exponential
(lattice traversal, predicate-space enumeration — Fig. 3's hard end),
so every governed entry point accepts a :class:`Budget` and threads a
cooperative :func:`checkpoint` through its inner loops.  The contract:

* **No budget set** — :func:`checkpoint` is a single context-variable
  read returning immediately; the governed path is bit-identical to an
  ungoverned run (``bench_runtime_guard`` pins the <5% overhead bound).
* **Budget set** — checkpoints count work (candidates, tuple pairs)
  and watch the wall clock; when a cap is hit they raise
  :class:`~repro.runtime.errors.BudgetExhausted` *internally*.  Entry
  points catch it and return a partial result flagged with
  ``stats.complete = False`` / ``stats.exhausted = <reason>`` —
  exhaustion never propagates to the user as an exception from a
  discovery or repair call.

Budgets nest ambiently: ``with governed(budget):`` installs the budget
for the dynamic extent, and any governed entry point called underneath
with ``budget=None`` inherits it (the CLI and profiler govern whole
multi-pass runs this way).  An explicitly passed budget wins over the
ambient one.
"""

from __future__ import annotations

import struct
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from .errors import BudgetExhausted

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from multiprocessing.shared_memory import SharedMemory

    from ..core.base import Dependency
    from ..relation.relation import Relation

_MEMORY_CHECK_STRIDE = 64

#: Exhaustion reasons a :class:`ShardToken` can carry across processes.
TOKEN_REASONS = ("", "deadline", "candidates", "pairs", "memory", "cancelled")


class ShardToken:
    """Shared cancellation + work accounting for a sharded execution.

    One small ``multiprocessing.shared_memory`` block shared by a parent
    budget and its worker shards:

    * a **cancel flag** plus reason code — set once by whoever exhausts
      first (the parent's poll loop or any worker), observed by every
      other shard at its next cooperative :func:`checkpoint`;
    * **global work caps** (``max_candidates`` / ``max_pairs``) frozen
      at creation from the parent's remaining headroom;
    * one **accounting slot per worker** (candidates, pairs), written
      only by its owner — lock-free — and summed by :meth:`totals` /
      :meth:`over_cap` so the *global* caps bite even though each
      worker only sees its own share of the work.

    Layout: an 18-byte header ``<BBHqq`` (cancel, reason, workers,
    max_candidates, max_pairs; ``-1`` encodes "no cap") followed by one
    ``<qq`` slot per worker.  Single-byte flag writes are atomic; slot
    writes are owner-exclusive; readers tolerate torn 8-byte reads on
    exotic platforms (the caps re-check at the next checkpoint).
    """

    _HEADER = struct.Struct("<BBHqq")
    _SLOT = struct.Struct("<qq")

    def __init__(self, shm: SharedMemory, workers: int, *, owner: bool) -> None:
        self._shm = shm
        self.workers = workers
        self._owner = owner

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        workers: int,
        *,
        max_candidates: int | None = None,
        max_pairs: int | None = None,
    ) -> "ShardToken":
        from multiprocessing import shared_memory

        size = cls._HEADER.size + workers * cls._SLOT.size
        shm = shared_memory.SharedMemory(create=True, size=size)
        cls._HEADER.pack_into(
            shm.buf, 0, 0, 0, workers,
            -1 if max_candidates is None else int(max_candidates),
            -1 if max_pairs is None else int(max_pairs),
        )
        for slot in range(workers):
            cls._SLOT.pack_into(
                shm.buf, cls._HEADER.size + slot * cls._SLOT.size, 0, 0
            )
        return cls(shm, workers, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShardToken":
        from multiprocessing import shared_memory

        # Workers are forked and share the parent's resource-tracker
        # process, whose registry deduplicates: re-registering on attach
        # is a no-op and the owner's ``unlink`` consumes the single
        # registration, so no unregister workaround is needed here.
        shm = shared_memory.SharedMemory(name=name)
        _, _, workers, _, _ = cls._HEADER.unpack_from(shm.buf, 0)
        return cls(shm, workers, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        try:
            self._shm.close()
        # staticcheck: disable=SC008 — idempotent cleanup of an shm
        # mapping; nothing budget-governed runs inside the try.
        except Exception:  # pragma: no cover - double close
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            # staticcheck: disable=SC008 — idempotent cleanup of an shm
            # segment; nothing budget-governed runs inside the try.
            except Exception:  # pragma: no cover - already unlinked
                pass

    # -- cancellation --------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Raise the cancel flag (first reason wins; idempotent)."""
        if self._shm.buf[0]:
            return
        try:
            code = TOKEN_REASONS.index(reason)
        except ValueError:
            code = TOKEN_REASONS.index("cancelled")
        self._shm.buf[1] = code
        self._shm.buf[0] = 1

    def cancelled(self) -> str:
        """The cancellation reason, or ``""`` while still running."""
        if not self._shm.buf[0]:
            return ""
        return TOKEN_REASONS[self._shm.buf[1]]

    # -- accounting ----------------------------------------------------

    def publish(self, slot: int, candidates: int, pairs: int) -> None:
        """Publish one worker's running totals (owner-exclusive write)."""
        self._SLOT.pack_into(
            self._shm.buf,
            self._HEADER.size + slot * self._SLOT.size,
            candidates,
            pairs,
        )

    def totals(self) -> tuple[int, int]:
        """Summed (candidates, pairs) across every worker slot."""
        candidates = pairs = 0
        for slot in range(self.workers):
            c, p = self._SLOT.unpack_from(
                self._shm.buf, self._HEADER.size + slot * self._SLOT.size
            )
            candidates += c
            pairs += p
        return candidates, pairs

    def over_cap(self) -> str:
        """Which global cap the summed totals exceed, or ``""``."""
        _, _, _, max_candidates, max_pairs = self._HEADER.unpack_from(
            self._shm.buf, 0
        )
        if max_candidates < 0 and max_pairs < 0:
            return ""
        candidates, pairs = self.totals()
        if 0 <= max_candidates < candidates:
            return "candidates"
        if 0 <= max_pairs < pairs:
            return "pairs"
        return ""

_current: ContextVar["Budget | None"] = ContextVar(
    "repro_current_budget", default=None
)


@dataclass
class Budget:
    """Resource caps for one governed run.

    All caps are optional; an all-``None`` budget counts work but never
    exhausts.  A budget accumulates counters across the run it governs;
    call :meth:`reset` to reuse one for a fresh run.
    """

    #: Wall-clock deadline in seconds from :meth:`start`.
    deadline_s: float | None = None
    #: Cap on candidate checks (lattice nodes, cover-search nodes, ...).
    max_candidates: int | None = None
    #: Cap on tuple-pair probes (evidence sets, pairwise distances, ...).
    max_pairs: int | None = None
    #: Peak-RSS ceiling in bytes (checked coarsely, every
    #: ``_MEMORY_CHECK_STRIDE`` checkpoints, via ``resource``).
    max_memory_bytes: int | None = None

    #: Work counters, advanced by :meth:`checkpoint`.
    candidates: int = field(default=0, init=False)
    pairs: int = field(default=0, init=False)
    #: ``""`` while within budget; the exhaustion reason afterwards.
    exhausted: str = field(default="", init=False)

    _deadline_at: float | None = field(default=None, init=False, repr=False)
    _ticks: int = field(default=0, init=False, repr=False)
    _parent: "Budget | None" = field(default=None, init=False, repr=False)
    #: Worker-side shard token (``bind_token``): checkpoints publish
    #: this budget's counters into its slot and observe cancellation.
    _token: "ShardToken | None" = field(default=None, init=False, repr=False)
    _slot: int = field(default=0, init=False, repr=False)
    #: Parent-side tokens (``attach_token``): exhaustion of *this*
    #: budget cancels them, so running shards observe it at their next
    #: checkpoint instead of grinding to completion.
    _attached: "list[ShardToken]" = field(
        default_factory=list, init=False, repr=False
    )

    def start(self) -> "Budget":
        """Arm the deadline (idempotent: the first call wins)."""
        if self.deadline_s is not None and self._deadline_at is None:
            self._deadline_at = time.monotonic() + self.deadline_s
        return self

    def reset(self) -> "Budget":
        """Clear counters and re-arm for a fresh run."""
        self.candidates = 0
        self.pairs = 0
        self.exhausted = ""
        self._deadline_at = None
        self._ticks = 0
        return self

    def child(
        self,
        *,
        deadline_s: float | None = None,
        max_candidates: int | None = None,
        max_pairs: int | None = None,
        max_memory_bytes: int | None = None,
    ) -> "Budget":
        """Derive a stage-scoped budget from this one.

        The request/job pattern: one request-scoped budget is split
        across job stages by handing each stage a *child* whose caps
        never exceed the parent's remaining headroom:

        * ``deadline_s`` is clamped to the parent's :meth:`remaining_s`
          (a parent without a deadline passes the stage's through);
        * ``max_candidates`` / ``max_pairs`` are clamped to the
          parent's cap minus the work already counted against it;
        * ``max_memory_bytes`` is the min of both (RSS is a process
          property, not a per-stage one).

        Passing ``None`` for a cap inherits the parent's *remaining*
        headroom for that dimension outright, so ``budget.child()``
        with no arguments is "whatever is left".

        Work counted by the child's checkpoints propagates up the
        parent chain — the parent's counters keep accumulating across
        stages and are **never reset** by derivation — but exhaustion
        is raised from (and recorded on) the child: a stage running
        out does not poison the parent, whose next child simply
        derives from smaller headroom.
        """
        self.start()

        def clamp(requested: int | None, cap: int | None, spent: int) -> int | None:
            headroom = None if cap is None else max(0, cap - spent)
            if requested is None:
                return headroom
            return requested if headroom is None else min(requested, headroom)

        remaining = self.remaining_s()
        if deadline_s is None:
            child_deadline = remaining
        elif remaining is None:
            child_deadline = deadline_s
        else:
            child_deadline = min(deadline_s, remaining)
        child = Budget(
            deadline_s=child_deadline,
            max_candidates=clamp(
                max_candidates, self.max_candidates, self.candidates
            ),
            max_pairs=clamp(max_pairs, self.max_pairs, self.pairs),
            max_memory_bytes=(
                max_memory_bytes
                if self.max_memory_bytes is None
                else min(
                    max_memory_bytes or self.max_memory_bytes,
                    self.max_memory_bytes,
                )
            ),
        )
        child._parent = self
        return child

    def remaining_s(self) -> float | None:
        """Seconds until the deadline, or ``None`` with no deadline."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.monotonic())

    def expired(self) -> bool:
        """Whether any cap is already blown (without raising)."""
        if self.exhausted:
            return True
        if (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        ):
            return True
        if (
            self.max_candidates is not None
            and self.candidates >= self.max_candidates
        ):
            return True
        return self.max_pairs is not None and self.pairs >= self.max_pairs

    def bind_token(self, token: "ShardToken", slot: int) -> "Budget":
        """Bind this budget to a shard token as worker ``slot``.

        Every later :meth:`checkpoint` publishes the counters into the
        slot and converts a raised cancel flag (or a blown *global* cap
        across all slots) into local :class:`BudgetExhausted`.
        """
        self._token = token
        self._slot = slot
        return self

    def attach_token(self, token: "ShardToken") -> "Budget":
        """Parent side: cancel ``token`` if this budget exhausts."""
        self._attached.append(token)
        return self

    def detach_token(self, token: "ShardToken") -> None:
        try:
            self._attached.remove(token)
        except ValueError:
            pass

    def absorb(self, candidates: int = 0, pairs: int = 0) -> None:
        """Record already-performed work without any cap checks.

        The shard-merge path: worker totals come home after the fact
        and must land on the parent's counters (and its parents') even
        when they overshoot a cap — the overshoot is then reported by
        the caller via :meth:`_exhaust`, not silently re-raised here.
        """
        self.candidates += candidates
        self.pairs += pairs
        parent = self._parent
        while parent is not None:
            parent.candidates += candidates
            parent.pairs += pairs
            parent = parent._parent

    def _exhaust(self, reason: str) -> None:
        self.exhausted = reason
        # Propagate into any running shards before raising locally:
        # a worker that exhausts cancels its siblings, and a parent
        # that exhausts (poll loop, another thread) cancels the fleet.
        tokens = list(self._attached)
        if self._token is not None:
            tokens.append(self._token)
        for token in tokens:
            try:
                token.cancel(reason)
            # staticcheck: disable=SC008 — best-effort fan-out of the
            # cancel flag; the BudgetExhausted below always raises.
            except Exception:  # pragma: no cover - token already gone
                pass
        raise BudgetExhausted(reason, budget=self)

    def checkpoint(self, candidates: int = 0, pairs: int = 0) -> None:
        """Record work; raise :class:`BudgetExhausted` past any cap.

        Once exhausted, every later checkpoint raises again — so a
        multi-pass caller (the profiler) fails fast through its
        remaining passes instead of grinding on a dead deadline.
        """
        self.candidates += candidates
        self.pairs += pairs
        if candidates or pairs:
            # Derived budgets bill their work up the parent chain, so a
            # request-scoped budget sees the total across job stages.
            parent = self._parent
            while parent is not None:
                parent.candidates += candidates
                parent.pairs += pairs
                parent = parent._parent
        if self.exhausted:
            raise BudgetExhausted(self.exhausted, budget=self)
        if (
            self.max_candidates is not None
            and self.candidates > self.max_candidates
        ):
            self._exhaust("candidates")
        if self.max_pairs is not None and self.pairs > self.max_pairs:
            self._exhaust("pairs")
        if self._deadline_at is None and self.deadline_s is not None:
            self.start()
        if (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        ):
            self._exhaust("deadline")
        if self.max_memory_bytes is not None:
            self._ticks += 1
            if self._ticks % _MEMORY_CHECK_STRIDE == 0:
                if _peak_rss_bytes() > self.max_memory_bytes:
                    self._exhaust("memory")
        if self._token is not None:
            self._token.publish(self._slot, self.candidates, self.pairs)
            reason = self._token.cancelled() or self._token.over_cap()
            if reason:
                self._exhaust(reason)


def _peak_rss_bytes() -> int:
    """Peak RSS of this process in bytes (0 where unsupported)."""
    try:
        import resource
        import sys

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return rss if sys.platform == "darwin" else rss * 1024
    except (ImportError, OSError, AttributeError):
        # pragma: no cover - non-POSIX platforms
        return 0


def current_budget() -> Budget | None:
    """The ambient budget installed by :func:`governed`, if any."""
    return _current.get()


def resolve_budget(budget: Budget | None) -> Budget | None:
    """An explicitly passed budget, else the ambient one, else ``None``."""
    return budget if budget is not None else _current.get()


@contextmanager
def governed(budget: Budget | None) -> Iterator[Budget | None]:
    """Install ``budget`` as the ambient budget for this dynamic extent.

    ``governed(None)`` is a transparent no-op (the surrounding ambient
    budget, if any, stays in force), so entry points can uniformly wrap
    their bodies without disturbing an outer governor.
    """
    if budget is None:
        yield _current.get()
        return
    budget.start()
    token = _current.set(budget)
    try:
        yield budget
    finally:
        _current.reset(token)


def checkpoint(candidates: int = 0, pairs: int = 0) -> None:
    """Cooperative cancellation point for engine inner loops.

    A no-op (one context-variable read) when no budget is active.
    """
    b = _current.get()
    if b is not None:
        b.checkpoint(candidates=candidates, pairs=pairs)


# -- graceful degradation helpers --------------------------------------

def sample_relation(relation: Relation, max_rows: int = 64) -> Relation:
    """An evenly strided row sample (deterministic, order-preserving)."""
    n = len(relation)
    if n <= max_rows:
        return relation
    stride = n / max_rows
    indices = sorted({min(int(k * stride), n - 1) for k in range(max_rows)})
    return relation.take(indices)


def verify_on_sample(
    relation: Relation,
    candidates: Sequence[Dependency],
    *,
    max_candidates: int = 50,
    max_rows: int = 64,
) -> list[Dependency]:
    """Sampled verification of enumerated-but-unchecked candidates.

    The FASTDC/Hydra-style degradation: when the exact search ran out
    of budget, verify the pending candidates on a bounded row sample
    instead of dropping them.  Survivors are *sampled-verified only* —
    callers must report them under ``stats.sampled_verified`` and keep
    ``stats.complete = False`` so the answer stays honest.

    Deliberately budget-blind (it must run *after* exhaustion) but
    hard-capped on both rows and candidates, so the post-deadline
    overrun stays bounded.  Budget-blind means *actively* so: the
    ambient budget is exactly the one that just ran out, and any
    ``dep.holds`` routed through the plan kernels would re-raise
    :class:`~repro.runtime.errors.BudgetExhausted` at its first
    checkpoint — silently rejecting every survivor.  Each probe runs
    under a fresh unlimited budget instead.
    """
    if not candidates:
        return []
    sample = sample_relation(relation, max_rows=max_rows)
    out: list[Dependency] = []
    for dep in list(candidates)[:max_candidates]:
        try:
            with governed(Budget()):
                if dep.holds(sample):
                    out.append(dep)
        except BudgetExhausted:
            raise  # impossible under the fresh budget
        except Exception:
            # A candidate whose own evaluation faults on the sample is
            # simply not a survivor; verification stays best-effort
            # (BudgetExhausted is peeled off above, never swallowed).
            continue
    return out
