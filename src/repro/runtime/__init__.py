"""Execution governance: budgets, cancellation, typed errors, faults.

The runtime layer is what lets the worst-case-exponential searches in
:mod:`repro.discovery` (and the repair/incremental engines) run under
bounded latency with honest degradation:

* :mod:`repro.runtime.errors` — the :class:`ReproError` taxonomy
  (:class:`InputError` / :class:`BudgetExhausted` /
  :class:`EngineFault`);
* :mod:`repro.runtime.budget` — :class:`Budget`,
  :func:`checkpoint`, and the ambient :func:`governed` scope;
* :mod:`repro.runtime.faults` — the fault-injection harness for the
  substrate/metric boundary (imported lazily; test/bench tooling).
"""

from typing import Any

from .budget import (
    Budget,
    ShardToken,
    checkpoint,
    current_budget,
    governed,
    resolve_budget,
    sample_relation,
    verify_on_sample,
)
from .errors import BudgetExhausted, EngineFault, InputError, ReproError

__all__ = [
    "Budget",
    "ShardToken",
    "checkpoint",
    "current_budget",
    "governed",
    "resolve_budget",
    "sample_relation",
    "verify_on_sample",
    "BudgetExhausted",
    "EngineFault",
    "InputError",
    "ReproError",
    "FaultInjector",
    "FaultSpec",
    "FaultInjected",
    "inject",
]

_FAULT_NAMES = {"FaultInjector", "FaultSpec", "FaultInjected", "inject"}


def __getattr__(name: str) -> Any:
    # Lazy: faults patches substrate classes, so importing it eagerly
    # would create an import cycle with repro.relation / repro.metrics.
    if name in _FAULT_NAMES:
        from . import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
