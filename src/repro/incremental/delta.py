"""Tuple-level mutation batches and their cache-preserving application.

A :class:`Delta` describes one batch of mutations against a relation:
cell updates, tuple deletions, and tuple insertions, applied in that
order.  Surviving tuples keep their relative order, so the old-to-new
index mapping (:meth:`Delta.remap`) is monotone — which is what lets
the incremental checkers translate cached violation indices instead of
recomputing them.

:func:`apply_delta` is the engine behind ``Relation.apply_delta``.  It
builds the mutated relation column-wise (copy-on-touch: column tuples
untouched by the batch are shared with the parent) and then, instead of
discarding the substrate PR 1 built, carries it forward:

* every group table in the parent's :class:`~repro.relation.
  partition_cache.PartitionCache` is *patched* — only groups containing
  changed tuples are rewritten, the rest share their member lists;
* cached stripped partitions are rebuilt from the patched group tables
  (never from scratch);
* for insert-only batches the dictionary encoding is *extended* in
  place — existing codes are reused and new values append to the
  codebooks in first-occurrence order.

Updates or deletes force a fresh (lazy) encoding: patching codes would
break the first-occurrence code order that the encoded/naive parity
contract depends on.  Group-table patching has no such constraint (dict
equality ignores key order), so it applies to every batch shape.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from ..relation.relation import Relation, Row

Value = Any

#: One update: (pre-batch row index, ((attribute, new value), ...)).
Update = tuple[int, tuple[tuple[str, Value], ...]]


class DeltaError(ValueError):
    """Raised for malformed mutation batches."""


@dataclass(frozen=True)
class Delta:
    """One batch of mutations: updates, then deletes, then inserts.

    ``deletes`` and update row indices address the *pre-batch* relation;
    an update to a row the same batch deletes is applied and then
    discarded.  Constructor inputs are normalized: deletes are sorted
    and deduplicated, updates accept either a ``{row: {attr: value}}``
    mapping or ``(row, {attr: value})`` pairs (later assignments to the
    same cell win).
    """

    inserts: tuple[Row, ...] = ()
    deletes: tuple[int, ...] = ()
    updates: tuple[Update, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "inserts", tuple(tuple(r) for r in self.inserts)
        )
        for i in self.deletes:
            if not isinstance(i, int) or isinstance(i, bool):
                raise DeltaError(f"delete index {i!r} is not an integer")
        object.__setattr__(self, "deletes", tuple(sorted(set(self.deletes))))
        merged: dict[int, dict[str, Value]] = {}
        raw = self.updates
        items = raw.items() if isinstance(raw, Mapping) else raw
        for row, assignment in items:
            if not isinstance(row, int) or isinstance(row, bool):
                raise DeltaError(f"update row {row!r} is not an integer")
            cells = (
                assignment.items()
                if isinstance(assignment, Mapping)
                else assignment
            )
            target = merged.setdefault(row, {})
            for attr, value in cells:
                target[str(attr)] = value
        object.__setattr__(
            self,
            "updates",
            tuple(
                (row, tuple(assignment.items()))
                for row, assignment in sorted(merged.items())
            ),
        )

    # -- introspection -------------------------------------------------

    def is_empty(self) -> bool:
        return not (self.inserts or self.deletes or self.updates)

    def is_insert_only(self) -> bool:
        return bool(self.inserts) and not self.deletes and not self.updates

    def touched_attributes(self) -> frozenset[str]:
        """Attribute names assigned by any cell update in the batch."""
        return frozenset(
            a for __, assignment in self.updates for a, __v in assignment
        )

    def new_size(self, n: int) -> int:
        return n - len(self.deletes) + len(self.inserts)

    def remap(self, n: int) -> list[int | None]:
        """Old index -> new index (``None`` for deleted rows).

        Monotone on survivors, so any index-order property (sortedness,
        ties broken by index) survives translation.
        """
        deleted = set(self.deletes)
        out: list[int | None] = []
        shift = 0
        for i in range(n):
            if i in deleted:
                out.append(None)
                shift += 1
            else:
                out.append(i - shift)
        return out

    def validate(self, relation: Relation) -> None:
        """Raise :class:`DeltaError` unless the batch fits ``relation``."""
        n = len(relation)
        schema = relation.schema
        width = len(schema)
        for row in self.inserts:
            if len(row) != width:
                raise DeltaError(
                    f"insert of width {len(row)} does not fit schema of "
                    f"width {width}: {row!r}"
                )
        for i in self.deletes:
            if not 0 <= i < n:
                raise DeltaError(f"delete index {i} out of range [0, {n})")
        for row, assignment in self.updates:
            if not 0 <= row < n:
                raise DeltaError(f"update row {row} out of range [0, {n})")
            for attr, __ in assignment:
                if attr not in schema:
                    raise DeltaError(
                        f"update assigns unknown attribute {attr!r}"
                    )

    def __str__(self) -> str:
        parts = []
        if self.updates:
            parts.append(f"~{len(self.updates)}")
        if self.deletes:
            parts.append(f"-{len(self.deletes)}")
        if self.inserts:
            parts.append(f"+{len(self.inserts)}")
        return f"Delta({' '.join(parts) or 'empty'})"

    # -- mutation-log serialization ------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The canonical mutation-log wire form of this batch.

        Inserts come back positional (schema-order lists), so
        ``Delta.from_json(delta.to_json())`` round-trips without a
        schema and reproduces an equal batch — the fidelity contract
        the server's write-ahead log replays through (see
        ``tests/test_incremental.py::TestDeltaJsonRoundTrip``).
        ``None`` cells survive as JSON ``null``; non-finite floats rely
        on the encoder's ``NaN``/``Infinity`` extension, which the WAL
        enables on both ends.
        """
        out: dict[str, Any] = {}
        if self.inserts:
            out["insert"] = [list(row) for row in self.inserts]
        if self.deletes:
            out["delete"] = list(self.deletes)
        if self.updates:
            out["update"] = [
                {"row": row, "set": dict(assignment)}
                for row, assignment in self.updates
            ]
        return out

    # -- mutation-log parsing ------------------------------------------

    @classmethod
    def from_json(
        cls, payload: Mapping[str, Any], schema: "object" = None
    ) -> "Delta":
        """Parse one mutation-log entry.

        The wire format (one JSON object per batch)::

            {"insert": [{"A": 1, "B": "x"}, [2, "y"]],
             "delete": [3, 5],
             "update": [{"row": 0, "set": {"B": "z"}}]}

        Inserted rows may be positional lists or ``{name: value}``
        objects (missing names become ``None``; the latter requires
        ``schema``).
        """
        unknown = set(payload) - {"insert", "delete", "update"}
        if unknown:
            raise DeltaError(
                f"unknown mutation-log keys {sorted(unknown)}; expected "
                "'insert', 'delete', 'update'"
            )
        inserts: list[Row] = []
        for row in payload.get("insert", ()):
            if isinstance(row, Mapping):
                if schema is None:
                    raise DeltaError(
                        "object-form inserts need the relation schema"
                    )
                names = schema.names()
                stray = set(row) - set(names)
                if stray:
                    raise DeltaError(
                        f"insert mentions unknown attributes {sorted(stray)}"
                    )
                inserts.append(tuple(row.get(n) for n in names))
            else:
                inserts.append(tuple(row))
        updates: list[tuple[int, Mapping[str, Value]]] = []
        for entry in payload.get("update", ()):
            if not isinstance(entry, Mapping) or "row" not in entry:
                raise DeltaError(
                    f"update entry {entry!r} must be "
                    '{"row": i, "set": {...}}'
                )
            assignment = entry.get("set")
            if not isinstance(assignment, Mapping) or not assignment:
                raise DeltaError(
                    f"update entry for row {entry['row']!r} needs a "
                    'non-empty "set" object'
                )
            updates.append((entry["row"], assignment))
        return cls(
            inserts=tuple(inserts),
            deletes=tuple(payload.get("delete", ())),
            updates=tuple(updates),
        )


def parse_mutation_log(
    lines: Iterable[str], schema: "object" = None
) -> Iterator[Delta]:
    """Parse a JSONL mutation log (blank lines and ``#`` comments skipped)."""
    import json

    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DeltaError(f"line {lineno}: invalid JSON: {exc}") from exc
        if not isinstance(payload, Mapping):
            raise DeltaError(f"line {lineno}: batch must be a JSON object")
        yield Delta.from_json(payload, schema)


# -- application -------------------------------------------------------


def apply_delta(relation: Relation, delta: Delta | Mapping[str, Any]) -> Relation:
    """Apply a mutation batch, carrying caches and codebooks forward."""
    if not isinstance(delta, Delta):
        delta = Delta.from_json(delta, relation.schema)
    delta.validate(relation)
    if delta.is_empty():
        return relation

    schema = relation.schema
    index_of = schema.index_of
    updates_by_col: dict[int, list[tuple[int, Value]]] = {}
    for row, assignment in delta.updates:
        for attr, value in assignment:
            updates_by_col.setdefault(index_of(attr), []).append((row, value))
    deleted = set(delta.deletes)
    n = len(relation)
    keep = [i for i in range(n) if i not in deleted] if deleted else None
    tails = (
        [tuple(row[j] for row in delta.inserts) for j in range(len(schema))]
        if delta.inserts
        else None
    )
    new_columns: list[tuple[Value, ...]] = []
    for j, col in enumerate(relation._columns):
        cell_updates = updates_by_col.get(j)
        if cell_updates is None and keep is None:
            # Untouched column: share the parent's tuple outright.
            new_columns.append(col + tails[j] if tails else col)
            continue
        buf = list(col)
        if cell_updates:
            for row, value in cell_updates:
                buf[row] = value
        if keep is not None:
            buf = [buf[i] for i in keep]
        if tails:
            buf.extend(tails[j])
        new_columns.append(tuple(buf))
    child = Relation._from_trusted(schema, tuple(new_columns))

    enc = relation._enc
    if (
        enc is not None
        and delta.is_insert_only()
        and any(cc is not None for cc in enc._per_column)
    ):
        child._enc = enc.extended(child._columns, len(child))

    cache = relation._cache
    if cache is not None and (cache._groups or cache._partitions):
        _patch_cache(relation, child, delta, deleted)
    return child


def _patch_cache(
    parent: Relation,
    child: Relation,
    delta: Delta,
    deleted: set[int],
) -> None:
    """Seed the child's partition cache by patching the parent's.

    Every cached group table is patched in O(touched groups) plus an
    O(n) index remap when the batch deletes; cached stripped partitions
    are rebuilt from the patched tables (a partition cached without a
    matching group table gets one materialized on the parent first, so
    it too becomes patchable).  Untouched member lists are shared — the
    cache contract is read-only, so sharing is safe.
    """
    from ..relation.partition import StrippedPartition
    from ..relation.partition_cache import PartitionCache, cache_for

    cache = parent._cache
    n_old = len(parent)
    remap = delta.remap(n_old) if deleted else None
    n_survivors = n_old - len(deleted)
    child_cache = PartitionCache(child)
    for key, table in cache._groups.items():
        child_cache._groups[key] = _patch_group_table(
            parent, child, key, table, delta, deleted, remap, n_survivors
        )
    if cache._partitions:
        by_sorted = {tuple(sorted(k)): k for k in child_cache._groups}
        for pkey in cache._partitions:
            gkey = by_sorted.get(pkey)
            if gkey is None:
                table = cache_for(parent).groups(pkey)
                patched = _patch_group_table(
                    parent, child, pkey, table, delta, deleted, remap,
                    n_survivors,
                )
                child_cache._groups[pkey] = patched
                by_sorted[pkey] = pkey
            else:
                patched = child_cache._groups[gkey]
            child_cache._partitions[pkey] = StrippedPartition(
                len(child), [m for m in patched.values() if len(m) >= 2]
            )
    child._cache = child_cache


def _patch_group_table(
    parent: Relation,
    child: Relation,
    key: tuple[str, ...],
    table: dict[Row, list[int]],
    delta: Delta,
    deleted: set[int],
    remap: list[int | None] | None,
    n_survivors: int,
) -> dict[Row, list[int]]:
    """Patch one cached ``group_by(key)`` table for the batch.

    Only groups containing a deleted, moved, or inserted row are
    rewritten; when the batch has no deletes, every other member list is
    shared with the parent's table (copy-on-append if an insert lands in
    it later).  Key *order* is not preserved for moved/new groups —
    callers compare group tables by dict equality, which ignores order.
    """
    attrs = list(key)
    key_set = set(key)
    removal_by_key: dict[Row, set[int]] = {}
    placements: list[tuple[int, Row]] = []
    for row, assignment in delta.updates:
        if row in deleted or not any(a in key_set for a, __ in assignment):
            continue
        old_key = parent.values_at(row, attrs)
        new_row = remap[row] if remap is not None else row
        new_key = child.values_at(new_row, attrs)
        if new_key != old_key:
            removal_by_key.setdefault(old_key, set()).add(row)
            placements.append((new_row, new_key))
    for row in deleted:
        old_key = parent.values_at(row, attrs)
        removal_by_key.setdefault(old_key, set()).add(row)

    new_table: dict[Row, list[int]] = {}
    shared: set[Row] = set()
    for gkey, members in table.items():
        gone = removal_by_key.get(gkey)
        if gone is None:
            if remap is None:
                new_table[gkey] = members
                shared.add(gkey)
            else:
                new_table[gkey] = [remap[t] for t in members]
        else:
            kept = [
                remap[t] if remap is not None else t
                for t in members
                if t not in gone
            ]
            if kept:
                new_table[gkey] = kept
    for k in range(len(delta.inserts)):
        new_row = n_survivors + k
        placements.append((new_row, child.values_at(new_row, attrs)))
    for new_row, gkey in sorted(placements, key=lambda p: p[0]):
        members = new_table.get(gkey)
        if members is None:
            new_table[gkey] = [new_row]
            continue
        if gkey in shared:
            members = list(members)
            new_table[gkey] = members
            shared.discard(gkey)
        insort(members, new_row)
    return new_table
