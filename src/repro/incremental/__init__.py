"""Incremental validation: delta-maintained dependency checking.

The subsystem behind ``Relation.apply_delta`` and ``repro watch``:

* :mod:`~repro.incremental.delta` — the mutation-batch model and its
  cache-preserving application;
* :mod:`~repro.incremental.checkers` — per-family incremental checking
  strategies with a full-recompute fallback;
* :mod:`~repro.incremental.detector` — the changefeed-emitting wrapper
  around :mod:`repro.quality.detection`.
"""

from .checkers import (
    CHECKER_REGISTRY,
    FullRecomputeChecker,
    IncrementalChecker,
    checker_for,
)
from .delta import Delta, DeltaError, apply_delta, parse_mutation_log
from .detector import BatchChange, IncrementalDetector

__all__ = [
    "BatchChange",
    "CHECKER_REGISTRY",
    "Delta",
    "DeltaError",
    "FullRecomputeChecker",
    "IncrementalChecker",
    "IncrementalDetector",
    "apply_delta",
    "checker_for",
    "parse_mutation_log",
]
