"""Per-family incremental checkers: violation state under mutation.

Each checker owns one rule's violation dictionary (keyed by the sorted
tuple-index tuple — the same identity :class:`~repro.core.violation.
ViolationSet` dedupes on) and advances it by one :class:`~repro.
incremental.delta.Delta` at a time.  The contract, pinned by the
hypothesis parity suite, is that after any batch sequence the key set,
``holds()`` verdict, and (for measured rules) the measure all equal a
cold recompute on the final relation.

Three evaluation strategies cover the family tree:

* :class:`GroupKeyedChecker` (FD, AFD, CFD, MFD) — maintains the
  equal-``X`` groups and re-examines only groups a changed tuple left
  or entered, via the per-group hooks on the rule classes;
* :class:`PairProbeChecker` (DD, CDD, MD, CMD, NED, OD, CD, FFD, OFD,
  and any other vanilla pairwise notation) plus :class:`DCChecker` —
  drops violations involving changed tuples and re-probes each changed
  tuple against all others, O(changed · n) instead of O(n²);
* :class:`SDChecker` — keeps the ``X``-sorted order as a list, patches
  it by seam (removals splice, insertions bisect) and re-validates only
  the adjacencies that changed.

Everything else — MVD-family, eCFD, CSD, conjunctions, unknown rules —
transparently falls back to :class:`FullRecomputeChecker`, which is
slow but always right.  :func:`checker_for` is the dispatch table.
"""

from __future__ import annotations

import abc
from bisect import bisect_left, insort
from collections.abc import Sequence

from ..core.base import MeasuredDependency, PairwiseDependency
from ..core.categorical.afd import AFD
from ..core.categorical.cfd import CFD
from ..core.categorical.fd import FD
from ..core.heterogeneous.mfd import MFD
from ..core.numerical.dc import ALPHA, BETA, DC
from ..core.numerical.sd import SD
from ..core.violation import Violation, ViolationSet
from ..relation.relation import Relation
from .delta import Delta

#: Violation identity used throughout: the (sorted) tuple-index tuple.
ViolKey = tuple


def _remap_key(key: ViolKey, remap: list[int | None] | None) -> ViolKey | None:
    """Translate a violation key across a batch; ``None`` if any tuple died."""
    if remap is None:
        return key
    out = []
    for t in key:
        nt = remap[t]
        if nt is None:
            return None
        out.append(nt)
    return tuple(out)


def _touched_rows(delta: Delta, attrs: set[str]) -> set[int]:
    """Pre-batch rows whose update assigns an attribute the rule reads."""
    return {
        row
        for row, assignment in delta.updates
        if any(a in attrs for a, __ in assignment)
    }


class IncrementalChecker(abc.ABC):
    """Maintains one rule's violations across mutation batches."""

    def __init__(self, rule, relation: Relation) -> None:
        self.rule = rule
        self.label = rule.label()
        self._viols: dict[ViolKey, Violation] = {}
        self._cold_start(relation)

    @abc.abstractmethod
    def _cold_start(self, relation: Relation) -> None:
        """Populate ``_viols`` (and any index state) from scratch."""

    @abc.abstractmethod
    def _apply(
        self,
        old: Relation,
        delta: Delta,
        new: Relation,
        remap: list[int | None] | None,
    ) -> None:
        """Advance the internal state by one batch."""

    def apply(
        self,
        old: Relation,
        delta: Delta,
        new: Relation,
        remap: list[int | None] | None,
    ) -> tuple[list[Violation], list[Violation]]:
        """One batch step; returns ``(added, resolved)`` violations.

        ``added`` uses post-batch indices; ``resolved`` reports the old
        violations with their pre-batch indices (the tuples may no
        longer exist).  A violation whose tuples merely shifted under a
        delete is neither added nor resolved.
        """
        before = dict(self._viols)
        self._apply(old, delta, new, remap)
        after = self._viols
        surviving: set[ViolKey] = set()
        resolved: list[Violation] = []
        for key, v in before.items():
            mapped = _remap_key(key, remap)
            if mapped is not None and mapped in after:
                surviving.add(mapped)
            else:
                resolved.append(v)
        added = [v for key, v in after.items() if key not in surviving]
        return added, resolved

    def violations(self) -> ViolationSet:
        return ViolationSet(self._viols.values())

    def violation_count(self) -> int:
        """Current violation count without materializing the set."""
        return len(self._viols)

    def holds(self, relation: Relation) -> bool:
        """Rule satisfaction on the current relation (measured rules
        and fallback checkers override)."""
        return not self._viols


class FullRecomputeChecker(IncrementalChecker):
    """Transparent fallback: recompute the rule on every batch."""

    def _cold_start(self, relation: Relation) -> None:
        self._viols = {v.tuples: v for v in self.rule.violations(relation)}

    def _apply(self, old, delta, new, remap) -> None:
        self._cold_start(new)

    def holds(self, relation: Relation) -> bool:
        return self.rule.holds(relation)


# -- group-keyed family (FD, AFD, CFD, MFD) ----------------------------


class GroupKeyedChecker(IncrementalChecker):
    """Equal-``X``-group maintenance: re-examine only touched groups.

    Subclasses provide :meth:`_row_key` (``None`` = row out of scope,
    e.g. a tuple not matching a CFD pattern), :meth:`_examine` (the
    per-group violation kernel), and optionally :meth:`_row_examine`
    (single-tuple violations, for CFD RHS constants) and
    :meth:`_group_changed` (bookkeeping hook, for the AFD measure).
    """

    def _cold_start(self, relation: Relation) -> None:
        self._groups: dict[tuple, list[int]] = {}
        self._key_of: dict[int, tuple] = {}
        self._group_viols: dict[tuple, list[ViolKey]] = {}
        self._row_viols: dict[int, list[ViolKey]] = {}
        for i in range(len(relation)):
            key = self._row_key(relation, i)
            if key is None:
                continue
            self._groups.setdefault(key, []).append(i)
            self._key_of[i] = key
        for i in self._key_of:
            self._add_row_viols(relation, i)
        for key in list(self._groups):
            self._refresh_group(relation, key)

    @abc.abstractmethod
    def _row_key(self, relation: Relation, i: int) -> tuple | None:
        """Group key of row ``i``, or ``None`` if out of scope."""

    @abc.abstractmethod
    def _examine(
        self, relation: Relation, key: tuple, members: Sequence[int]
    ) -> list[Violation]:
        """Violations among one group (called only when ``len >= 2``)."""

    def _row_examine(self, relation: Relation, i: int) -> list[Violation]:
        return []

    def _group_changed(
        self, relation: Relation, key: tuple, members: Sequence[int]
    ) -> None:
        pass

    def _add_row_viols(self, relation: Relation, i: int) -> None:
        keys: list[ViolKey] = []
        for v in self._row_examine(relation, i):
            if v.tuples not in self._viols:  # ViolationSet keeps first
                self._viols[v.tuples] = v
                keys.append(v.tuples)
        if keys:
            self._row_viols[i] = keys

    def _refresh_group(self, relation: Relation, key: tuple) -> None:
        for vk in self._group_viols.pop(key, ()):
            self._viols.pop(vk, None)
        members = self._groups.get(key, ())
        if len(members) >= 2:
            vs = self._examine(relation, key, members)
            if vs:
                keys = []
                for v in vs:
                    self._viols[v.tuples] = v
                    keys.append(v.tuples)
                self._group_viols[key] = keys
        self._group_changed(relation, key, members)

    def _remap_state(self, remap: list[int | None]) -> None:
        # Deleted rows were already evicted, so every index survives.
        self._groups = {
            k: [remap[t] for t in members]
            for k, members in self._groups.items()
        }
        self._key_of = {remap[t]: k for t, k in self._key_of.items()}
        self._group_viols = {
            gk: [_remap_key(vk, remap) for vk in vks]
            for gk, vks in self._group_viols.items()
        }
        self._row_viols = {
            remap[i]: [_remap_key(vk, remap) for vk in vks]
            for i, vks in self._row_viols.items()
        }
        fresh: dict[ViolKey, Violation] = {}
        for vk, v in self._viols.items():
            nk = _remap_key(vk, remap)
            fresh[nk] = Violation(v.dependency, nk, v.reason)
        self._viols = fresh

    def _apply(self, old, delta, new, remap) -> None:
        attrs = set(self.rule.attributes())
        touched = _touched_rows(delta, attrs)
        deleted = set(delta.deletes)
        dirty: set[tuple] = set()
        for row in touched | deleted:
            key = self._key_of.pop(row, None)
            if key is not None:
                members = self._groups[key]
                members.remove(row)
                if not members:
                    del self._groups[key]
                dirty.add(key)
            for vk in self._row_viols.pop(row, ()):
                self._viols.pop(vk, None)
        # Clear dirty groups' stored violations while keys are still in
        # the old index space (they may reference deleted rows).
        for key in dirty:
            for vk in self._group_viols.pop(key, ()):
                self._viols.pop(vk, None)
        if remap is not None:
            self._remap_state(remap)
        changed_new = [
            remap[row] if remap is not None else row
            for row in touched
            if row not in deleted
        ]
        changed_new.extend(range(len(new) - len(delta.inserts), len(new)))
        for nrow in sorted(changed_new):
            key = self._row_key(new, nrow)
            if key is None:
                continue
            insort(self._groups.setdefault(key, []), nrow)
            self._key_of[nrow] = key
            dirty.add(key)
            self._add_row_viols(new, nrow)
        for key in dirty:
            self._refresh_group(new, key)


class FDChecker(GroupKeyedChecker):
    """FD via partition deltas: only touched ``X``-groups re-examined."""

    def __init__(self, rule: FD, relation: Relation) -> None:
        self._fd = rule
        super().__init__(rule, relation)

    def _row_key(self, relation, i):
        return relation.values_at(i, self._fd.lhs)

    def _examine(self, relation, key, members):
        return self._fd.group_violations(relation, key, list(members))


class AFDChecker(FDChecker):
    """AFD: FD evidence plus an incrementally maintained g3 error.

    Per group we track the size of the largest single-``Y`` subgroup
    (the g3 "keep"); the measure is ``(n - Σ keeps) / n``, updated only
    for dirty groups.
    """

    def __init__(self, rule: AFD, relation: Relation) -> None:
        self._kept: dict[tuple, int] = {}
        self._kept_total = 0
        self._n = len(relation)
        self._fd = rule.embedded
        GroupKeyedChecker.__init__(self, rule, relation)

    def _group_changed(self, relation, key, members):
        old = self._kept.pop(key, 0)
        new = (
            self._fd.group_kept_count(relation, list(members))
            if members
            else 0
        )
        if new:
            self._kept[key] = new
        self._kept_total += new - old

    def _apply(self, old, delta, new, remap) -> None:
        super()._apply(old, delta, new, remap)
        self._n = len(new)

    def measure(self) -> float:
        """The g3 error of the current relation, maintained in O(change)."""
        if self._n == 0:
            return 0.0
        return (self._n - self._kept_total) / self._n

    def holds(self, relation: Relation) -> bool:
        return self.measure() <= self.rule.threshold


class CFDChecker(GroupKeyedChecker):
    """CFD: pattern-matching rows grouped by LHS, plus RHS-constant rows."""

    def _row_key(self, relation, i):
        if not self.rule.matches_lhs(relation, i):
            return None
        return relation.values_at(i, self.rule.lhs)

    def _examine(self, relation, key, members):
        return self.rule.group_violations(relation, key, list(members), self.label)

    def _row_examine(self, relation, i):
        return self.rule.single_violations(relation, i, self.label)


class MFDChecker(GroupKeyedChecker):
    """MFD: metric re-probe within touched equal-``X`` groups."""

    def _row_key(self, relation, i):
        return relation.values_at(i, self.rule.lhs)

    def _examine(self, relation, key, members):
        out: list[Violation] = []
        rule = self.rule
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                i, j = members[a], members[b]
                reason = rule.pair_violation(relation, i, j)
                if reason is not None:
                    out.append(Violation(self.label, (i, j), reason))
        return out


# -- pair-probe family (DD, MD, OD, NED, ... and DC) -------------------


class PairProbeChecker(IncrementalChecker):
    """Neighborhood re-probe: each changed tuple vs. all other tuples.

    Sound for any :class:`PairwiseDependency` whose violation set is the
    generic pair scan (a pair's verdict depends only on the two tuples'
    values): pairs of unchanged tuples cannot change verdict, so only
    changed-tuple pairs are re-probed — O(changed · n) per batch.
    """

    def _cold_start(self, relation: Relation) -> None:
        self._viols = {v.tuples: v for v in self.rule.violations(relation)}

    def _probe(self, relation: Relation, i: int, j: int) -> str | None:
        return self.rule.pair_violation(relation, i, j)

    def _store_probe(self, relation: Relation, i: int, j: int) -> None:
        reason = self._probe(relation, i, j)
        if reason is not None:
            v = Violation(self.label, (i, j), reason)
            self._viols[v.tuples] = v

    def _drop_involving(self, rows: set[int]) -> None:
        if not rows:
            return
        for vk in [
            vk for vk in self._viols if any(t in rows for t in vk)
        ]:
            del self._viols[vk]

    def _changed_new_rows(self, delta, new, touched, deleted, remap) -> list[int]:
        changed = [
            remap[row] if remap is not None else row
            for row in touched
            if row not in deleted
        ]
        changed.extend(range(len(new) - len(delta.inserts), len(new)))
        return sorted(set(changed))

    def _apply(self, old, delta, new, remap) -> None:
        attrs = set(self.rule.attributes())
        touched = _touched_rows(delta, attrs)
        deleted = set(delta.deletes)
        self._drop_involving(touched | deleted)
        if remap is not None:
            # Surviving pairs keep their verdict but indices shift; the
            # re-probe regenerates index-bearing reasons (ODs) too.
            old_keys = list(self._viols)
            self._viols = {}
            for vk in old_keys:
                nk = _remap_key(vk, remap)
                self._store_probe(new, nk[0], nk[1])
        changed = self._changed_new_rows(delta, new, touched, deleted, remap)
        changed_set = set(changed)
        if not changed_set:
            return
        from ..plan import plan_enabled

        if plan_enabled():
            # The plan kernels prune the changed × all probe space the
            # same way they prune the cold scan, restricted to pairs
            # touching a changed row.
            for v in self._plan_probe(new, changed_set):
                self._viols[v.tuples] = v
            return
        n = len(new)
        for t in changed:
            for u in range(n):
                if u == t or (u in changed_set and u < t):
                    continue  # each changed-changed pair probed once
                i, j = (t, u) if t < u else (u, t)
                self._store_probe(new, i, j)

    def _plan_probe(self, relation: Relation, restrict: set[int]):
        from ..plan import pairwise_violations

        return pairwise_violations(self.rule, relation, restrict=restrict)


class DCChecker(PairProbeChecker):
    """DC: re-validate predicate assignments involving changed tuples.

    Two-variable DCs probe both (α, β) orientations per pair — α = the
    lower index first, matching the cold scan's dedupe order.  Single-
    tuple DCs just re-check the changed tuples.
    """

    def _probe(self, relation, i, j):
        rule = self.rule
        if rule._assignment_denied(relation, {ALPHA: i, BETA: j}):
            return f"(tα=t{i}, tβ=t{j}) satisfies all atoms"
        if rule._assignment_denied(relation, {ALPHA: j, BETA: i}):
            return f"(tα=t{j}, tβ=t{i}) satisfies all atoms"
        return None

    def _plan_probe(self, relation, restrict):
        from ..plan import denial_violations

        return denial_violations(self.rule, relation, restrict=restrict)

    def _apply(self, old, delta, new, remap) -> None:
        if not self.rule.is_single_tuple:
            super()._apply(old, delta, new, remap)
            return
        attrs = set(self.rule.attributes())
        touched = _touched_rows(delta, attrs)
        deleted = set(delta.deletes)
        self._drop_involving(touched | deleted)
        if remap is not None:
            fresh: dict[ViolKey, Violation] = {}
            for vk, v in self._viols.items():
                nk = _remap_key(vk, remap)
                fresh[nk] = Violation(v.dependency, nk, v.reason)
            self._viols = fresh
        var = self.rule._variables[0]
        for i in self._changed_new_rows(delta, new, touched, deleted, remap):
            if self.rule._assignment_denied(new, {var: i}):
                self._viols[(i,)] = Violation(
                    self.label, (i,), "tuple satisfies all atoms"
                )


# -- order family (SD) -------------------------------------------------


class SDChecker(IncrementalChecker):
    """SD: maintain the ``X``-sorted order, re-validate changed seams.

    The order is a list of ``(x_key, index)`` entries — exactly the
    stable sort the cold path uses (ties break by index).  Removals
    splice and mark the seam survivors dirty; insertions bisect in and
    mark their new neighbors dirty; only adjacencies involving a dirty
    row are re-checked.
    """

    def _cold_start(self, relation: Relation) -> None:
        rule = self.rule
        self._entries: list[tuple[tuple, int]] = []
        self._y: dict[int, float] = {}
        for i in rule.sorted_indices(relation):
            self._entries.append((relation.values_at(i, rule.lhs), i))
            self._y[i] = float(relation.value_at(i, rule.rhs))
        for pos in range(1, len(self._entries)):
            self._check_adjacent(
                self._entries[pos - 1][1], self._entries[pos][1]
            )

    def _usable(self, relation: Relation, i: int) -> bool:
        rule = self.rule
        return all(
            relation.value_at(i, a) is not None for a in rule.lhs
        ) and relation.value_at(i, rule.rhs) is not None

    def _check_adjacent(self, a: int, b: int) -> None:
        """Validate the gap of the order-adjacent pair ``a`` before ``b``."""
        delta_y = self._y[b] - self._y[a]
        if not self.rule.gap.contains(delta_y):
            v = Violation(
                self.label,
                (a, b),
                f"consecutive {self.rule.rhs} gap {delta_y:g} ∉ {self.rule.gap}",
            )
            self._viols[v.tuples] = v

    def _apply(self, old, delta, new, remap) -> None:
        rule = self.rule
        attrs = set(rule.attributes())
        touched = _touched_rows(delta, attrs)
        deleted = set(delta.deletes)
        removed = {r for r in touched | deleted if r in self._y}
        dirty: set[int] = set()
        if removed:
            for vk in [
                vk for vk in self._viols if any(t in removed for t in vk)
            ]:
                del self._viols[vk]
            entries: list[tuple[tuple, int]] = []
            seam_open = False
            for key, i in self._entries:
                if i in removed:
                    seam_open = True
                    continue
                if seam_open and entries:
                    dirty.add(entries[-1][1])
                    dirty.add(i)
                seam_open = False
                entries.append((key, i))
            self._entries = entries
            for i in removed:
                del self._y[i]
        if remap is not None:
            self._entries = [(k, remap[i]) for k, i in self._entries]
            self._y = {remap[i]: y for i, y in self._y.items()}
            dirty = {remap[i] for i in dirty}
            fresh: dict[ViolKey, Violation] = {}
            for vk, v in self._viols.items():
                nk = _remap_key(vk, remap)
                fresh[nk] = Violation(v.dependency, nk, v.reason)
            self._viols = fresh
        changed = [
            remap[row] if remap is not None else row
            for row in touched
            if row not in deleted
        ]
        changed.extend(range(len(new) - len(delta.inserts), len(new)))
        for i in sorted(set(changed)):
            if not self._usable(new, i):
                continue
            entry = (new.values_at(i, rule.lhs), i)
            pos = bisect_left(self._entries, entry)
            if pos > 0:
                dirty.add(self._entries[pos - 1][1])
            if pos < len(self._entries):
                dirty.add(self._entries[pos][1])
            self._entries.insert(pos, entry)
            self._y[i] = float(new.value_at(i, rule.rhs))
            dirty.add(i)
        dirty = {i for i in dirty if i in self._y}
        if not dirty:
            return
        for vk in [vk for vk in self._viols if any(t in dirty for t in vk)]:
            del self._viols[vk]
        for i in dirty:
            pos = bisect_left(self._entries, (new.values_at(i, rule.lhs), i))
            if pos > 0:
                self._check_adjacent(self._entries[pos - 1][1], i)
            if pos + 1 < len(self._entries):
                self._check_adjacent(i, self._entries[pos + 1][1])


# -- dispatch ----------------------------------------------------------

#: Exact-kind registry of specialized checkers (Table 2 vocabulary).
CHECKER_REGISTRY: dict[str, tuple[type, type]] = {
    "FD": (FDChecker, FD),
    "AFD": (AFDChecker, AFD),
    "CFD": (CFDChecker, CFD),
    "MFD": (MFDChecker, MFD),
    "DC": (DCChecker, DC),
    "SD": (SDChecker, SD),
}


def checker_for(rule, relation: Relation) -> IncrementalChecker:
    """Pick the incremental strategy for ``rule`` (fallback: recompute).

    Dispatch is by exact ``kind`` (so subclassed notations like eCFD do
    not inherit a checker whose assumptions they may break), then by the
    generic pair-probe for vanilla pairwise notations, then the full-
    recompute fallback — which is always available, so *every* rule the
    :class:`~repro.quality.detection.Detector` accepts is watchable.
    """
    entry = CHECKER_REGISTRY.get(getattr(rule, "kind", None))
    if entry is not None:
        cls, expected = entry
        if isinstance(rule, expected) and type(rule).kind == expected.kind:
            return cls(rule, relation)
    if (
        isinstance(rule, PairwiseDependency)
        and not isinstance(rule, MeasuredDependency)
        and type(rule).violations is PairwiseDependency.violations
        and type(rule).iter_violations is PairwiseDependency.iter_violations
    ):
        return PairProbeChecker(rule, relation)
    return FullRecomputeChecker(rule, relation)
