"""The incremental detector: a violation changefeed over mutating data.

:class:`IncrementalDetector` wraps the same rule set the batch
:class:`~repro.quality.detection.Detector` takes, but consumes a
*stream* of :class:`~repro.incremental.delta.Delta` batches.  Each
:meth:`~IncrementalDetector.apply` advances every rule's incremental
checker (see :mod:`repro.incremental.checkers`) and emits a
:class:`BatchChange` — the violations *added* and *resolved* by that
batch — instead of re-deriving the full violation set.

The detector's cumulative state is always equal to a cold
``Detector(rules).detect(current_relation)`` (the hypothesis parity
suite pins this), so downstream consumers can treat :meth:`report` as a
drop-in for batch detection while paying only for what changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from ..core.violation import ViolationSet
from ..quality.detection import DetectionReport
from ..relation.relation import Relation
from .checkers import IncrementalChecker, checker_for
from .delta import Delta


@dataclass
class BatchChange:
    """The changefeed entry for one applied batch."""

    seq: int
    delta: Delta
    added: ViolationSet
    resolved: ViolationSet
    total: int

    def summary(self) -> str:
        return (
            f"batch {self.seq}: +{len(self.added)} -{len(self.resolved)} "
            f"| total {self.total}"
        )

    def render(self, limit: int = 10) -> str:
        """Multi-line changefeed rendering (the ``repro watch`` output)."""
        lines = [self.summary()]
        shown = 0
        for v in self.added:
            if shown >= limit:
                break
            lines.append(f"  + {v}")
            shown += 1
        for v in self.resolved:
            if shown >= limit:
                break
            lines.append(f"  - {v}")
            shown += 1
        hidden = len(self.added) + len(self.resolved) - shown
        if hidden > 0:
            lines.append(f"  ... and {hidden} more changes")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


class IncrementalDetector:
    """Delta-maintained dependency checking over a mutating relation."""

    def __init__(self, rules: Iterable, relation: Relation) -> None:
        self.rules = list(rules)
        self._relation = relation
        self._checkers: list[IncrementalChecker] = [
            checker_for(rule, relation) for rule in self.rules
        ]
        self.history: list[BatchChange] = []

    @property
    def relation(self) -> Relation:
        """The current (post-batch) relation."""
        return self._relation

    def checker_strategy(self) -> dict[str, str]:
        """Rule label -> incremental strategy class name (introspection)."""
        return {
            c.rule.label(): type(c).__name__ for c in self._checkers
        }

    def apply(self, delta: Delta | Mapping[str, Any]) -> BatchChange:
        """Apply one mutation batch; return what changed."""
        if not isinstance(delta, Delta):
            delta = Delta.from_json(delta, self._relation.schema)
        old = self._relation
        new = old.apply_delta(delta)
        remap = delta.remap(len(old)) if delta.deletes else None
        added = ViolationSet()
        resolved = ViolationSet()
        for checker in self._checkers:
            a, r = checker.apply(old, delta, new, remap)
            added.extend(a)
            resolved.extend(r)
        self._relation = new
        change = BatchChange(
            seq=len(self.history) + 1,
            delta=delta,
            added=added,
            resolved=resolved,
            total=sum(c.violation_count() for c in self._checkers),
        )
        self.history.append(change)
        return change

    def replay(
        self, deltas: Iterable[Delta | Mapping[str, Any]]
    ) -> Iterator[BatchChange]:
        """Lazily apply a stream of batches, yielding each change."""
        for delta in deltas:
            yield self.apply(delta)

    # -- cumulative state ----------------------------------------------

    def violations(self) -> ViolationSet:
        """All current violations (equals a cold recompute's set)."""
        total = ViolationSet()
        for checker in self._checkers:
            total.extend(checker.violations())
        return total

    def holds(self) -> bool:
        """Do all rules hold on the current relation?"""
        return all(c.holds(self._relation) for c in self._checkers)

    def report(self) -> DetectionReport:
        """A :class:`DetectionReport` shaped like ``Detector.detect``."""
        per_rule: dict[str, ViolationSet] = {}
        total = ViolationSet()
        for checker in self._checkers:
            vs = checker.violations()
            per_rule[checker.rule.label()] = vs
            total.extend(vs)
        return DetectionReport(violations=total, per_rule=per_rule)
