"""The incremental detector: a violation changefeed over mutating data.

:class:`IncrementalDetector` wraps the same rule set the batch
:class:`~repro.quality.detection.Detector` takes, but consumes a
*stream* of :class:`~repro.incremental.delta.Delta` batches.  Each
:meth:`~IncrementalDetector.apply` advances every rule's incremental
checker (see :mod:`repro.incremental.checkers`) and emits a
:class:`BatchChange` — the violations *added* and *resolved* by that
batch — instead of re-deriving the full violation set.

The detector's cumulative state is always equal to a cold
``Detector(rules).detect(current_relation)`` (the hypothesis parity
suite pins this), so downstream consumers can treat :meth:`report` as a
drop-in for batch detection while paying only for what changed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from ..core.violation import ViolationSet
from ..quality.detection import DetectionReport
from ..relation.relation import Relation
from ..runtime.budget import Budget, checkpoint, governed
from ..runtime.errors import BudgetExhausted
from .checkers import IncrementalChecker, checker_for
from .delta import Delta


@dataclass
class BatchChange:
    """The changefeed entry for one applied batch."""

    seq: int
    delta: Delta
    added: ViolationSet
    resolved: ViolationSet
    total: int
    #: Rules whose checker raised on this batch (``"label: error"``).
    #: Each was cold-rebuilt against the post-batch relation (or
    #: deactivated when the rebuild itself failed) — never silently
    #: dropped.  Their per-batch added/resolved feed is unavailable,
    #: but the cumulative violation state stays exact.
    quarantined: list[str] = field(default_factory=list)
    #: False when a budget deadline cut the batch short; the remaining
    #: checkers were cold-rebuilt so cumulative state is still exact.
    complete: bool = True
    exhausted: str = ""

    def summary(self) -> str:
        out = (
            f"batch {self.seq}: +{len(self.added)} -{len(self.resolved)} "
            f"| total {self.total}"
        )
        if self.quarantined:
            out += f" | quarantined {len(self.quarantined)}"
        if not self.complete:
            out += f" [partial: budget exhausted ({self.exhausted})]"
        return out

    def render(self, limit: int = 10) -> str:
        """Multi-line changefeed rendering (the ``repro watch`` output)."""
        lines = [self.summary()]
        shown = 0
        for v in self.added:
            if shown >= limit:
                break
            lines.append(f"  + {v}")
            shown += 1
        for v in self.resolved:
            if shown >= limit:
                break
            lines.append(f"  - {v}")
            shown += 1
        hidden = len(self.added) + len(self.resolved) - shown
        if hidden > 0:
            lines.append(f"  ... and {hidden} more changes")
        for q in self.quarantined:
            lines.append(f"  ! quarantined {q}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


class IncrementalDetector:
    """Delta-maintained dependency checking over a mutating relation.

    Concurrency contract: one detector is a **single-writer** object —
    each :meth:`apply` mutates checker state, the current relation, and
    the history as one logical transaction.  A per-detector lock
    *enforces* that contract: concurrent :meth:`apply` calls (e.g. two
    server requests racing on the same tenant changefeed) serialize in
    arrival order instead of interleaving half-advanced checker state.
    Distinct detectors share nothing and run fully in parallel — the
    multi-tenant server runs one detector per tenant on a thread pool.
    Reads (:meth:`violations`, :meth:`report`, :meth:`holds`) take the
    same lock so they always observe a batch boundary, never a
    mid-apply snapshot.
    """

    def __init__(
        self,
        rules: Iterable,
        relation: Relation,
        *,
        analyze: bool = False,
    ) -> None:
        """Wrap ``rules`` over ``relation``.

        With ``analyze=True`` the static analyzer screens the rule set
        first: statically unsatisfiable rules raise
        :class:`~repro.runtime.errors.InputError` up front, and rules
        that are trivial or implied by the rest of the set are not
        given checkers — they are recorded in :attr:`skipped_rules`
        instead.  The default is off because skipping an implied rule
        suppresses its own violation listing whenever the implying
        rule is itself violated (the cumulative-state-equals-cold-
        detector parity contract only holds rule-for-rule without it).
        """
        self.rules = list(rules)
        self._relation = relation
        #: Rule label -> reason, for rules the analyzer screened out.
        self.skipped_rules: dict[str, str] = {}
        active = self.rules
        if analyze:
            from ..analysis import screen_rules

            skip = screen_rules(self.rules)
            self.skipped_rules = {
                self.rules[i].label(): why for i, why in skip.items()
            }
            active = [
                r for i, r in enumerate(self.rules) if i not in skip
            ]
        self._checkers: list[IncrementalChecker] = [
            checker_for(rule, relation) for rule in active
        ]
        self.history: list[BatchChange] = []
        #: (seq, rule label, error) for every quarantined checker fault.
        self.quarantine: list[tuple[int, str, str]] = []
        #: Rule labels deactivated because their cold rebuild failed too.
        self.dead_rules: list[str] = []
        #: Rule label -> rule, for rules an operator (or the server's
        #: circuit breaker) suspended; they get no checker until resumed.
        self._suspended: dict[str, Any] = {}
        #: Serializes apply() (and state reads) — see the class docs.
        self._lock = threading.Lock()

    @property
    def relation(self) -> Relation:
        """The current (post-batch) relation."""
        return self._relation

    def checker_strategy(self) -> dict[str, str]:
        """Rule label -> incremental strategy class name (introspection)."""
        return {
            c.rule.label(): type(c).__name__ for c in self._checkers
        }

    # -- suspension (circuit breaking) ---------------------------------

    @property
    def suspended_rules(self) -> list[str]:
        """Labels of rules currently suspended (no checker, no report)."""
        with self._lock:
            return sorted(self._suspended)

    def suspend_rule(self, label: str) -> bool:
        """Take ``label`` out of evaluation until :meth:`resume_rule`.

        The rule's checker is dropped (its state would go stale anyway)
        and the rule disappears from :meth:`violations`/:meth:`report`
        while suspended — callers such as the server's circuit breaker
        must surface the suspension honestly rather than present the
        narrowed report as complete.  Returns ``False`` for an unknown
        or already-suspended label.
        """
        with self._lock:
            keep: list[IncrementalChecker] = []
            found = None
            for checker in self._checkers:
                if found is None and checker.rule.label() == label:
                    found = checker.rule
                else:
                    keep.append(checker)
            if found is None:
                return False
            self._suspended[label] = found
            self._checkers = keep
            return True

    def resume_rule(self, label: str) -> bool:
        """Reactivate a suspended rule with a cold-built checker.

        The checker is rebuilt against the *current* relation, so the
        cumulative state is exact from the first post-resume batch.  A
        rebuild failure deactivates the rule (recorded in
        :attr:`dead_rules` and :attr:`quarantine`) instead of raising.
        Returns ``False`` for a label that is not suspended.
        """
        with self._lock:
            rule = self._suspended.pop(label, None)
            if rule is None:
                return False
            try:
                # Fresh unlimited budget: the rebuild must complete even
                # when the ambient (caller) budget is already exhausted
                # — a deadline is not a reason to deactivate a rule.
                with governed(Budget()):
                    self._checkers.append(
                        checker_for(rule, self._relation)
                    )
            except BudgetExhausted:
                raise  # impossible under the fresh budget; never a death
            except Exception as exc:  # noqa: BLE001 - mirror _rebuild
                message = f"resume rebuild failed: {exc}"
                self.quarantine.append((len(self.history), label, message))
                self.dead_rules.append(label)
            return True

    def _rebuild(
        self,
        checker: IncrementalChecker,
        relation: Relation,
        quarantined: list[str],
    ) -> IncrementalChecker | None:
        """Cold-rebuild a checker against ``relation``.

        Returns the fresh checker, or ``None`` (and records the rule as
        dead) when even the rebuild raises.
        """
        label = checker.rule.label()
        try:
            # Fresh unlimited budget: rebuilds happen precisely when the
            # ambient budget just ran out mid-batch, and a cold build
            # through the plan kernels would otherwise die on the first
            # checkpoint — deactivating healthy rules on every deadline.
            with governed(Budget()):
                return checker_for(checker.rule, relation)
        except BudgetExhausted:
            raise  # impossible under the fresh budget; never a death
        except Exception as exc:  # noqa: BLE001 - must never crash apply
            quarantined.append(f"{label}: rebuild failed: {exc}")
            self.dead_rules.append(label)
            return None

    def apply(self, delta: Delta | Mapping[str, Any]) -> BatchChange:
        """Apply one mutation batch; return what changed.

        A checker that raises is *quarantined*: the fault is recorded
        on the returned :class:`BatchChange` (and in
        :attr:`quarantine`), the checker is cold-rebuilt against the
        post-batch relation so cumulative state stays exact, and — when
        the rebuild itself fails — the rule is deactivated and listed
        in :attr:`dead_rules`.  Faulty rules are never silently
        dropped from the report.

        Thread-safe: concurrent calls serialize on the detector's
        single-writer lock (see the class docs).
        """
        with self._lock:
            return self._apply_locked(delta)

    def _apply_locked(self, delta: Delta | Mapping[str, Any]) -> BatchChange:
        if not isinstance(delta, Delta):
            delta = Delta.from_json(delta, self._relation.schema)
        seq = len(self.history) + 1
        old = self._relation
        new = old.apply_delta(delta)
        remap = delta.remap(len(old)) if delta.deletes else None
        added = ViolationSet()
        resolved = ViolationSet()
        quarantined: list[str] = []
        exhausted = ""
        surviving: list[IncrementalChecker | None] = []
        pending = list(self._checkers)
        while pending:
            checker = pending.pop(0)
            label = checker.rule.label()
            try:
                checkpoint()
                a, r = checker.apply(old, delta, new, remap)
            except BudgetExhausted as exc:
                # Deadline mid-batch: this checker's internal state may
                # be half-advanced, so cold-rebuild it and every
                # not-yet-advanced checker against the post-batch
                # relation.  Cumulative state stays exact; only the
                # per-batch added/resolved feed for these rules is
                # lost, and the change is flagged partial.
                exhausted = exc.reason
                for c in (checker, *pending):
                    surviving.append(self._rebuild(c, new, quarantined))
                break
            except Exception as exc:  # noqa: BLE001 - quarantine faults
                message = f"{type(exc).__name__}: {exc}"
                quarantined.append(f"{label}: {message}")
                self.quarantine.append((seq, label, message))
                surviving.append(
                    self._rebuild(checker, new, quarantined)
                )
                continue
            surviving.append(checker)
            added.extend(a)
            resolved.extend(r)
        self._checkers = [c for c in surviving if c is not None]
        self._relation = new
        change = BatchChange(
            seq=seq,
            delta=delta,
            added=added,
            resolved=resolved,
            total=sum(c.violation_count() for c in self._checkers),
            quarantined=quarantined,
            complete=not exhausted,
            exhausted=exhausted,
        )
        self.history.append(change)
        return change

    def replay(
        self, deltas: Iterable[Delta | Mapping[str, Any]]
    ) -> Iterator[BatchChange]:
        """Lazily apply a stream of batches, yielding each change."""
        for delta in deltas:
            yield self.apply(delta)

    # -- cumulative state ----------------------------------------------

    def violations(self) -> ViolationSet:
        """All current violations (equals a cold recompute's set)."""
        with self._lock:
            total = ViolationSet()
            for checker in self._checkers:
                total.extend(checker.violations())
            return total

    def holds(self) -> bool:
        """Do all rules hold on the current relation?"""
        with self._lock:
            return all(c.holds(self._relation) for c in self._checkers)

    def report(self) -> DetectionReport:
        """A :class:`DetectionReport` shaped like ``Detector.detect``."""
        with self._lock:
            per_rule: dict[str, ViolationSet] = {}
            total = ViolationSet()
            for checker in self._checkers:
                vs = checker.violations()
                per_rule[checker.rule.label()] = vs
                total.extend(vs)
            return DetectionReport(violations=total, per_rule=per_rule)
