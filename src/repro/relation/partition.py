"""Stripped partitions (position list indexes) — TANE's core structure.

A partition ``π_X`` of a relation groups tuple indices by equal
``X``-values.  The *stripped* partition drops singleton groups, which is
the representation TANE [53, 54] uses:

* an FD ``X -> A`` holds iff ``π_X`` refines ``π_{X ∪ {A}}``, which via
  error counts reduces to ``|π_X| + stripped sizes`` arithmetic;
* the AFD ``g3`` error is computed from the stripped partition in one
  pass (``g3 = (||π|| - groups' max subcluster sum) / n``);
* partition *product* composes ``π_X · π_Y = π_{XY}`` in O(n).

The same structure also serves CFD discovery (pattern partitions) and
the equivalence-class repair engine.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .relation import Relation
from .schema import Attribute


class _Scratch:
    """A reusable stamped lookup table (tuple index -> small int).

    The classic per-call ``[-1] * n`` probe table of TANE's partition
    product is replaced by one shared table that grows monotonically;
    a stamp per slot says whether the entry belongs to the current
    operation, so no O(n) reset is ever paid.  Single-threaded by
    design, like the rest of the substrate.
    """

    __slots__ = ("value", "stamp", "counter")

    def __init__(self) -> None:
        self.value: list[int] = []
        self.stamp: list[int] = []
        self.counter = 0

    def acquire(self, n: int) -> tuple[list[int], list[int], int]:
        """Grow to ``n`` slots and hand out a fresh stamp."""
        grow = n - len(self.value)
        if grow > 0:
            self.value.extend([0] * grow)
            self.stamp.extend([0] * grow)
        self.counter += 1
        return self.value, self.stamp, self.counter

    def tick(self) -> int:
        """A fresh stamp over the already-acquired slots."""
        self.counter += 1
        return self.counter


#: Probe table keyed by tuple index (size: number of tuples).
_PROBE = _Scratch()
#: Bucket table keyed by class id (size: number of classes).
_BUCKETS = _Scratch()


class StrippedPartition:
    """A stripped partition: equivalence classes of size >= 2.

    ``n`` is the total number of tuples in the underlying relation;
    singleton classes are implicit (any index not in a listed class).
    """

    __slots__ = ("n", "classes")

    def __init__(self, n: int, classes: Iterable[Sequence[int]]) -> None:
        self.n = n
        self.classes: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(c)) for c in classes if len(c) >= 2
        )

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_relation(
        cls, relation: Relation, attributes: Sequence[Attribute | str]
    ) -> "StrippedPartition":
        """π_X for attribute list X, directly from the relation.

        Uses the dictionary-encoded grouping kernel when enabled — the
        group keys are never materialized, only the index classes.
        ``_grouped_indices`` guarantees ascending members and the
        ``min_size=2`` filter on both paths, so the normalizing
        constructor work is skipped.
        """
        grouped = relation._grouped_indices(attributes, min_size=2)
        out = cls.__new__(cls)
        out.n = len(relation)
        out.classes = (
            grouped
            if type(grouped) is tuple
            else tuple(tuple(c) for c in grouped)
        )
        return out

    @classmethod
    def single(cls, relation: Relation, attribute: Attribute | str) -> "StrippedPartition":
        """π_A for a single attribute (the level-1 partitions of TANE)."""
        return cls.from_relation(relation, [attribute])

    # -- core quantities ----------------------------------------------------

    @property
    def num_classes(self) -> int:
        """Number of non-singleton equivalence classes."""
        return len(self.classes)

    @property
    def stripped_size(self) -> int:
        """``||π||`` — number of tuples inside non-singleton classes."""
        return sum(len(c) for c in self.classes)

    @property
    def rank(self) -> int:
        """Total number of equivalence classes, counting singletons.

        ``|π_X|`` equals the number of distinct X-values.
        """
        return self.n - self.stripped_size + self.num_classes

    def error(self) -> int:
        """TANE's e(π) numerator: ``||π|| - |classes|``.

        Interpreted as the minimum number of tuples to delete so that the
        attribute set becomes a key within the stripped classes.
        """
        return self.stripped_size - self.num_classes

    # -- composition ---------------------------------------------------------

    def product(self, other: "StrippedPartition") -> "StrippedPartition":
        """``π_X · π_Y = π_{X ∪ Y}`` in linear time.

        Standard TANE probe-table algorithm: intersect every class of
        ``self`` with the classes of ``other`` via a tuple->class lookup.
        """
        if self.n != other.n:
            raise ValueError("partitions over different relations")
        cid_of, cid_stamp, stamp = _PROBE.acquire(self.n)
        for cid, cls_ in enumerate(other.classes):
            for t in cls_:
                cid_of[t] = cid
                cid_stamp[t] = stamp
        slot_of, slot_stamp, __ = _BUCKETS.acquire(len(other.classes))
        new_classes: list[list[int]] = []
        for cls_ in self.classes:
            tick = _BUCKETS.tick()
            buckets: list[list[int]] = []
            for t in cls_:
                if cid_stamp[t] != stamp:
                    continue  # singleton in `other`
                cid = cid_of[t]
                if slot_stamp[cid] != tick:
                    slot_stamp[cid] = tick
                    slot_of[cid] = len(buckets)
                    buckets.append([t])
                else:
                    buckets[slot_of[cid]].append(t)
            for bucket in buckets:
                if len(bucket) >= 2:
                    new_classes.append(bucket)
        return StrippedPartition(self.n, new_classes)

    def refines(self, other: "StrippedPartition") -> bool:
        """True iff every class of ``self`` is inside one class of ``other``.

        The FD ``X -> Y`` holds iff ``π_X`` refines ``π_Y`` — equivalently
        iff ``rank(π_{XY}) == rank(π_X)``, which is how TANE tests validity.
        """
        if self.n != other.n:
            raise ValueError("partitions over different relations")
        cid_of, cid_stamp, stamp = _PROBE.acquire(self.n)
        for cid, cls_ in enumerate(other.classes):
            for t in cls_:
                cid_of[t] = cid
                cid_stamp[t] = stamp
        for cls_ in self.classes:
            # All members must map to the same class of `other`; a tuple
            # missing from `other`'s stripped classes is a singleton there
            # and can't absorb a class of size >= 2.
            if cid_stamp[cls_[0]] != stamp:
                return False
            first = cid_of[cls_[0]]
            for t in cls_[1:]:
                if cid_stamp[t] != stamp or cid_of[t] != first:
                    return False
        return True

    def g3_error(self, joint: "StrippedPartition") -> float:
        """``g3(X -> Y)`` from π_X (self) and π_{XY} (joint).

        For each non-singleton X-class, the kept tuples are the largest
        XY-subclass inside it; everything else must be removed.  Tuples in
        singleton X-classes never violate.  Returns a fraction in [0, 1].
        """
        if self.n == 0:
            return 0.0
        # Map each tuple to the size of its XY-class (singletons -> 1).
        size_of, size_stamp, stamp = _PROBE.acquire(self.n)
        for cls_ in joint.classes:
            size = len(cls_)
            for t in cls_:
                size_of[t] = size
                size_stamp[t] = stamp
        removed = 0
        for cls_ in self.classes:
            # Largest XY-subclass within this X-class: since XY refines X,
            # each XY-class is entirely inside one X-class, so the max of
            # per-tuple class sizes is the max subclass size.
            best = 1
            for t in cls_:
                if size_stamp[t] == stamp and size_of[t] > best:
                    best = size_of[t]
            removed += len(cls_) - best
        return removed / self.n

    def violating_classes(self, joint: "StrippedPartition") -> list[tuple[int, ...]]:
        """X-classes that split into >1 XY-class (the FD violations)."""
        class_of: dict[int, int] = {}
        for cid, cls_ in enumerate(joint.classes):
            for t in cls_:
                class_of[t] = cid
        bad: list[tuple[int, ...]] = []
        for cls_ in self.classes:
            # Tuples absent from joint's stripped classes are singletons
            # in π_XY; two of them (or one plus any other class) split the
            # X-class.
            ids = {class_of.get(t, ("s", t)) for t in cls_}
            if len(ids) > 1:
                bad.append(cls_)
        return bad

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrippedPartition):
            return NotImplemented
        return self.n == other.n and sorted(self.classes) == sorted(other.classes)

    def __hash__(self) -> int:
        # Structural, order-insensitive (classes are disjoint, so the
        # frozenset view agrees with the sorted-list comparison of
        # ``__eq__``).  Defining ``__eq__`` alone had silently removed
        # the inherited hash, making partitions unusable in sets and as
        # cache values deduplicated by identity sets.
        return hash((self.n, frozenset(self.classes)))

    def __repr__(self) -> str:
        return (
            f"StrippedPartition(n={self.n}, classes={self.num_classes}, "
            f"||pi||={self.stripped_size})"
        )
