"""Reading and writing relations (CSV and inline literals).

Kept deliberately small: the library's data lives either in the paper's
literal tables (:mod:`repro.datasets.paper`) or in generated workloads,
but downstream users need CSV round-tripping to run the tooling on their
own data.

Malformed input raises :class:`~repro.runtime.errors.InputError` (a
``ValueError`` subclass) carrying the offending 1-based line number and
column name, so a bad cell in row 40k of a wide file is locatable
without bisecting the input.  Non-finite numbers (``nan``, ``inf``)
are rejected by default — silently admitting them would poison every
distance-based metric and partition downstream — with an explicit
``allow_nonfinite=True`` opt-out that maps them to nulls.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from collections.abc import Sequence

from ..runtime.errors import InputError
from .relation import Relation, Value
from .schema import Attribute, AttributeType, Schema


def _coerce(
    text: str,
    dtype: AttributeType,
    *,
    allow_nonfinite: bool = False,
    row: int | None = None,
    column: str | None = None,
    source: str | None = None,
) -> Value:
    if text == "":
        return None
    if dtype is AttributeType.NUMERICAL:
        try:
            f = float(text)
        except ValueError as exc:
            raise InputError(
                f"non-numeric value {text!r} in numerical column",
                row=row,
                column=column,
                source=source,
            ) from exc
        if not math.isfinite(f):
            if allow_nonfinite:
                return None
            raise InputError(
                f"non-finite value {text!r} in numerical column "
                "(pass allow_nonfinite=True to map it to null)",
                row=row,
                column=column,
                source=source,
            )
        return int(f) if f.is_integer() else f
    return text


def read_csv(
    path: str | Path,
    schema: Schema | Sequence[Attribute | str] | None = None,
    *,
    delimiter: str = ",",
    allow_nonfinite: bool = False,
) -> Relation:
    """Load a relation from a CSV file with a header row.

    If ``schema`` is omitted, every column is treated as categorical; the
    header order must match the schema order when one is given.  NaN and
    infinite values in numerical columns are rejected with an
    :class:`~repro.runtime.errors.InputError` unless
    ``allow_nonfinite=True``, which maps them to nulls.
    """
    with open(path, newline="", encoding="utf-8") as f:
        return _read(f, schema, delimiter, allow_nonfinite, source=str(path))


def read_csv_text(
    text: str,
    schema: Schema | Sequence[Attribute | str] | None = None,
    *,
    delimiter: str = ",",
    allow_nonfinite: bool = False,
) -> Relation:
    """Load a relation from CSV text (header row required)."""
    return _read(io.StringIO(text), schema, delimiter, allow_nonfinite)


def _read(
    f, schema, delimiter, allow_nonfinite: bool = False, source: str | None = None
) -> Relation:
    reader = csv.reader(f, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise InputError(
            "CSV input has no header row", source=source
        ) from None
    header = [h.strip() for h in header]
    if schema is None:
        schema = Schema(header)
    elif not isinstance(schema, Schema):
        schema = Schema(schema)
    if list(schema.names()) != header:
        raise InputError(
            f"CSV header {header} does not match schema "
            f"{list(schema.names())}",
            row=1,
            source=source,
        )
    dtypes = [a.dtype for a in schema]
    names = list(schema.names())
    rows = []
    for raw in reader:
        if not raw:
            continue
        line = reader.line_num  # 1-based; header is line 1
        if len(raw) != len(schema):
            raise InputError(
                f"CSV row of width {len(raw)} does not match schema "
                f"of width {len(schema)}: {raw!r}",
                row=line,
                source=source,
            )
        rows.append(
            tuple(
                _coerce(
                    cell.strip(),
                    dt,
                    allow_nonfinite=allow_nonfinite,
                    row=line,
                    column=name,
                    source=source,
                )
                for cell, dt, name in zip(raw, dtypes, names, strict=True)
            )
        )
    return Relation.from_rows(schema, rows)


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to CSV with a header row; ``None`` becomes empty."""
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(relation.schema.names())
        for row in relation.rows():
            writer.writerow(["" if v is None else v for v in row])


def to_csv_text(relation: Relation) -> str:
    """Render a relation as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(relation.schema.names())
    for row in relation.rows():
        writer.writerow(["" if v is None else v for v in row])
    return buf.getvalue()
