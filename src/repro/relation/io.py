"""Reading and writing relations (CSV and inline literals).

Kept deliberately small: the library's data lives either in the paper's
literal tables (:mod:`repro.datasets.paper`) or in generated workloads,
but downstream users need CSV round-tripping to run the tooling on their
own data.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

from .relation import Relation, Value
from .schema import Attribute, AttributeType, Schema


def _coerce(text: str, dtype: AttributeType) -> Value:
    if text == "":
        return None
    if dtype is AttributeType.NUMERICAL:
        try:
            f = float(text)
        except ValueError as exc:
            raise ValueError(
                f"non-numeric value {text!r} in numerical column"
            ) from exc
        return int(f) if f.is_integer() else f
    return text


def read_csv(
    path: str | Path,
    schema: Schema | Sequence[Attribute | str] | None = None,
    *,
    delimiter: str = ",",
) -> Relation:
    """Load a relation from a CSV file with a header row.

    If ``schema`` is omitted, every column is treated as categorical; the
    header order must match the schema order when one is given.
    """
    with open(path, newline="", encoding="utf-8") as f:
        return _read(f, schema, delimiter)


def read_csv_text(
    text: str,
    schema: Schema | Sequence[Attribute | str] | None = None,
    *,
    delimiter: str = ",",
) -> Relation:
    """Load a relation from CSV text (header row required)."""
    return _read(io.StringIO(text), schema, delimiter)


def _read(f, schema, delimiter) -> Relation:
    reader = csv.reader(f, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV input has no header row") from None
    header = [h.strip() for h in header]
    if schema is None:
        schema = Schema(header)
    elif not isinstance(schema, Schema):
        schema = Schema(schema)
    if list(schema.names()) != header:
        raise ValueError(
            f"CSV header {header} does not match schema {list(schema.names())}"
        )
    dtypes = [a.dtype for a in schema]
    rows = []
    for raw in reader:
        if not raw:
            continue
        if len(raw) != len(schema):
            raise ValueError(
                f"CSV row of width {len(raw)} does not match schema "
                f"of width {len(schema)}: {raw!r}"
            )
        rows.append(
            tuple(_coerce(cell.strip(), dt) for cell, dt in zip(raw, dtypes))
        )
    return Relation.from_rows(schema, rows)


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to CSV with a header row; ``None`` becomes empty."""
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(relation.schema.names())
        for row in relation.rows():
            writer.writerow(["" if v is None else v for v in row])


def to_csv_text(relation: Relation) -> str:
    """Render a relation as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(relation.schema.names())
    for row in relation.rows():
        writer.writerow(["" if v is None else v for v in row])
    return buf.getvalue()
