"""Dictionary encoding: the columnar integer fast path of the substrate.

Every discovery algorithm in the family tree ultimately reduces to a
handful of primitives over the :class:`~repro.relation.relation.Relation`
column-store — grouping equal ``X``-values, counting distinct values,
intersecting partitions, diffing tuple pairs.  The naive implementations
run those primitives over Python *value tuples*, paying interpreter
overhead (attribute resolution, tuple allocation, generic ``__eq__``)
per cell.

This module adds a lazily built, cached **per-column codebook** that
maps each column to a compact integer vector:

* equal values (under Python ``dict`` equality semantics, exactly the
  semantics the naive ``group_by`` already uses) share one code;
* codes are dense ``0..card-1`` integers assigned in first-occurrence
  order, so single-column code order *is* first-occurrence order;
* attribute sets get a **combined-key encoding** — a radix (mixed-base)
  combination of the per-column codes, re-densified on overflow — so a
  multi-attribute group key is one machine integer instead of a tuple.

With numpy present (a declared dependency), grouping becomes
``np.unique`` + a stable argsort over the combined codes; without it, a
pure-Python fallback groups the integer codes through a dict, which is
still cheaper than hashing value tuples.  The encoded path is the
default; set ``REPRO_NAIVE_SUBSTRATE=1`` (or call :func:`set_mode`)
to force the naive value-tuple path everywhere.

Parity contract (enforced by ``tests/test_encoding_parity.py``): for
every primitive the encoded and naive paths return *equal* results —
group keys are decoded from the first-occurrence row, so even the key
tuples match the naive dict's insertion behaviour.

Thread-safety: encodings are built lazily and cached on the (immutable)
relation; concurrent builds are idempotent, so races waste work but
cannot corrupt results.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from collections.abc import Iterator, Sequence
from typing import Any

try:  # numpy is a declared dependency, but keep the substrate importable
    import numpy as _np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None  # type: ignore[assignment]
    HAS_NUMPY = False

Value = Any

#: Largest magnitude an intermediate radix code may reach before the
#: combined vector is re-densified (int64 headroom).
_MAX_RADIX = 1 << 62

#: Integers beyond 2**53 lose precision as floats; columns containing
#: them are not safe for the float-matrix comparison fast paths.
_FLOAT_SAFE_INT = 1 << 53

_ENV_FLAG = "REPRO_NAIVE_SUBSTRATE"

#: Programmatic override: ``True`` forces encoded, ``False`` forces
#: naive, ``None`` defers to the environment flag.
_mode_override: bool | None = None


def set_mode(mode: str | None) -> None:
    """Force the substrate path: ``"encoded"``, ``"naive"``, or ``None``.

    ``None`` restores the default: encoded unless the
    ``REPRO_NAIVE_SUBSTRATE`` environment variable is set.
    """
    global _mode_override
    if mode is None:
        _mode_override = None
    elif mode == "encoded":
        _mode_override = True
    elif mode == "naive":
        _mode_override = False
    else:
        raise ValueError(f"unknown substrate mode {mode!r}")


@contextmanager
def substrate_mode(mode: str | None) -> Iterator[None]:
    """Temporarily force the substrate path (for tests and benchmarks)."""
    global _mode_override
    previous = _mode_override
    set_mode(mode)
    try:
        yield
    finally:
        _mode_override = previous


def encoded_enabled() -> bool:
    """Whether the dictionary-encoded fast path is active."""
    if _mode_override is not None:
        return _mode_override
    return os.environ.get(_ENV_FLAG, "") in ("", "0")


#: Version stamp of the serialized-relation state format below.
STATE_VERSION = 1


def relation_to_state(relation: Any) -> dict[str, Any]:
    """Serialize a relation as a JSON-safe, dictionary-encoded state.

    The snapshot format of the server durability layer: schema (names +
    declared types) plus one ``{"values", "codes"}`` pair per column —
    the distinct cell values in first-occurrence order and each row's
    index into them, i.e. exactly the dictionary encoding the substrate
    builds, so repeated values serialize once.  A column holding
    unhashable cells (which the encoded substrate cannot index either)
    falls back to a raw ``{"raw": [...]}`` value list.

    Cells must be JSON-representable (the server only ever holds values
    that arrived as JSON); non-finite floats round-trip through the
    encoder's ``NaN``/``Infinity`` extension.
    """
    schema = [
        {"name": a.name, "type": a.dtype.value} for a in relation.schema
    ]
    columns: list[dict[str, Any]] = []
    for j in range(len(relation.schema)):
        column = relation._columns[j]
        codebook: dict[Value, int] = {}
        codes: list[int] = []
        values: list[Value] = []
        try:
            for v in column:
                code = codebook.setdefault(v, len(values))
                if code == len(values):
                    values.append(v)
                codes.append(code)
        except TypeError:  # unhashable cell: store the column verbatim
            columns.append({"raw": list(column)})
            continue
        columns.append({"values": values, "codes": codes})
    return {
        "version": STATE_VERSION,
        "n": len(relation),
        "schema": schema,
        "columns": columns,
    }


def relation_from_state(state: dict[str, Any]) -> Any:
    """Rebuild a relation from :func:`relation_to_state` output.

    Raises :class:`ValueError` on version or shape mismatches — the
    recovery path treats that as a corrupt snapshot, not a crash.
    """
    from .relation import Relation
    from .schema import Attribute, AttributeType, Schema

    version = state.get("version")
    if version != STATE_VERSION:
        raise ValueError(
            f"unsupported relation state version {version!r} "
            f"(expected {STATE_VERSION})"
        )
    schema = Schema(
        Attribute(spec["name"], AttributeType(spec["type"]))
        for spec in state["schema"]
    )
    n = state["n"]
    columns: list[list[Value]] = []
    for j, encoded in enumerate(state["columns"]):
        if "raw" in encoded:
            column = list(encoded["raw"])
        else:
            values = encoded["values"]
            column = [values[c] for c in encoded["codes"]]
        if len(column) != n:
            raise ValueError(
                f"column {j} has {len(column)} cells for {n} rows"
            )
        columns.append(column)
    return Relation.from_columns(schema, columns)


class ColumnCodes:
    """Dictionary encoding of one column.

    ``codes[i]`` is the dense integer code of row ``i``'s value;
    ``values[c]`` is the first-seen representative of code ``c``.
    """

    __slots__ = (
        "codes", "values", "codebook", "groups", "n_distinct",
        "self_unequal", "numeric_safe", "none_code", "_array", "_floats",
        "_valid", "_sorted",
    )

    def __init__(self, column: Sequence[Value]) -> None:
        codebook: dict[Value, int] = {}
        codes: list[int] = []
        #: member rows per code, collected during the same pass — the
        #: single-attribute group table comes for free.
        groups: list[list[int]] = []
        none_code = -1
        for i, v in enumerate(column):
            code = codebook.setdefault(v, len(codebook))
            codes.append(code)
            if code == len(groups):
                groups.append([i])
            else:
                groups[code].append(i)
            if v is None:
                none_code = code
        self.codes = codes
        self.groups = groups
        #: value -> code, retained so append-only deltas can extend the
        #: encoding in place instead of rebuilding it.
        self.codebook = codebook
        self.values: list[Value] = list(codebook)
        self.n_distinct = len(self.values)
        self.none_code = none_code
        self.self_unequal = False
        self.numeric_safe = True
        for v in self.values:
            try:
                if v != v:
                    self.self_unequal = True
            # staticcheck: disable=SC008 — a user value whose __eq__
            # raises is treated as self-unequal (the safe direction);
            # no budget-governed code runs in the comparison.
            except Exception:
                self.self_unequal = True
            if v is None:
                continue
            if not isinstance(v, (bool, int, float)):
                self.numeric_safe = False
            elif isinstance(v, int) and not isinstance(v, bool) and (
                abs(v) > _FLOAT_SAFE_INT
            ):
                self.numeric_safe = False
        self._array = None
        self._floats = None
        self._valid = None
        self._sorted = None

    @classmethod
    def from_parts(
        cls,
        column: Sequence[Value],
        values: Sequence[Value],
        codes: Sequence[int],
        *,
        floats: Any = None,
        valid: Any = None,
        sorted_projection: Any = None,
    ) -> "ColumnCodes":
        """Rebuild a codebook from an exported ``(values, codes)`` pair.

        The deserialization path of the column-slab transport (see
        :mod:`repro.plan.slabs`): a worker process receives the distinct
        values (first-occurrence order) plus each row's code and
        reconstitutes the full codebook *without re-hashing the column*
        — one O(n) integer pass instead of the O(n) value-hashing pass
        of ``__init__``.  Optional pre-built kernel caches (float
        projection, validity mask, sorted projection) are adopted as-is
        so the worker starts warm.
        """
        out = cls.__new__(cls)
        values = list(values)
        is_array = HAS_NUMPY and isinstance(codes, _np.ndarray)
        codes_list: list[int] = (
            codes.tolist() if is_array else [int(c) for c in codes]
        )
        groups: list[list[int]] = [[] for _ in values]
        for i, c in enumerate(codes_list):
            groups[c].append(i)
        out.codes = codes_list
        out.groups = groups
        out.codebook = {v: c for c, v in enumerate(values)}
        out.values = values
        out.n_distinct = len(values)
        out.none_code = next(
            (c for c, v in enumerate(values) if v is None), -1
        )
        out.self_unequal = False
        out.numeric_safe = True
        for v in values:
            try:
                if v != v:
                    out.self_unequal = True
            # staticcheck: disable=SC008 — a user value whose __eq__
            # raises is treated as self-unequal (the safe direction);
            # no budget-governed code runs in the comparison.
            except Exception:
                out.self_unequal = True
            if v is None:
                continue
            if not isinstance(v, (bool, int, float)):
                out.numeric_safe = False
            elif isinstance(v, int) and not isinstance(v, bool) and (
                abs(v) > _FLOAT_SAFE_INT
            ):
                out.numeric_safe = False
        out._array = codes if is_array else None
        out._floats = floats
        out._valid = valid
        out._sorted = sorted_projection
        return out

    def extended(self, column: Sequence[Value], start: int) -> "ColumnCodes":
        """A codebook for ``column`` reusing this one for rows < ``start``.

        ``column`` must agree with the encoded column on every row below
        ``start`` (the append-only delta contract).  Existing codes are
        memcpy-shared, new values extend the codebook in first-occurrence
        order — preserving the parity-critical invariant that code order
        equals first-occurrence order — and the per-code member lists are
        copy-on-append, so untouched groups stay shared with the parent.
        """
        out = ColumnCodes.__new__(ColumnCodes)
        codebook = dict(self.codebook)
        codes = list(self.codes)
        groups = list(self.groups)
        grown: set[int] = set()
        none_code = self.none_code
        self_unequal = self.self_unequal
        numeric_safe = self.numeric_safe
        for i in range(start, len(column)):
            v = column[i]
            code = codebook.setdefault(v, len(codebook))
            codes.append(code)
            if code == len(groups):
                groups.append([i])
                grown.add(code)
                if v is None:
                    none_code = code
                try:
                    if v != v:
                        self_unequal = True
                # staticcheck: disable=SC008 — a user value whose
                # __eq__ raises is treated as self-unequal (the safe
                # direction); no budget-governed code runs here.
                except Exception:
                    self_unequal = True
                if v is not None:
                    if not isinstance(v, (bool, int, float)):
                        numeric_safe = False
                    elif isinstance(v, int) and not isinstance(v, bool) and (
                        abs(v) > _FLOAT_SAFE_INT
                    ):
                        numeric_safe = False
            elif code in grown:
                groups[code].append(i)
            else:
                groups[code] = groups[code] + [i]
                grown.add(code)
        out.codes = codes
        out.groups = groups
        out.codebook = codebook
        out.values = list(codebook)
        out.n_distinct = len(codebook)
        out.none_code = none_code
        out.self_unequal = self_unequal
        out.numeric_safe = numeric_safe
        out._array = None
        if self._array is not None and HAS_NUMPY:
            out._array = _np.concatenate(
                [self._array, _np.asarray(codes[start:], dtype=_np.int64)]
            )
        # The kernel-side caches of PR 6 (float projection, validity
        # mask, sorted projection) must not leak stale: either patch
        # them for the appended tail or drop them.  Patching is only
        # sound while the column stays numeric-safe — a tail value that
        # flips `numeric_safe` invalidates the float view wholesale.
        out._floats = None
        out._valid = None
        out._sorted = None
        if HAS_NUMPY and numeric_safe:
            tail = column[start:]
            if self._floats is not None:
                tail_floats = _np.asarray(
                    [float("nan") if v is None else float(v) for v in tail],
                    dtype=_np.float64,
                )
                out._floats = _np.concatenate([self._floats, tail_floats])
            if self._valid is not None:
                out._valid = _np.concatenate(
                    [
                        self._valid,
                        _np.asarray(
                            [v is not None for v in tail], dtype=bool
                        ),
                    ]
                )
            if self._sorted is not None:
                # Merge the defined tail cells into the cached sorted
                # projection: O(k log n) instead of an O(n log n)
                # rebuild per batch.  Stability: appended rows all have
                # indices above every existing row, so inserting ties
                # with side="right" — and the tail's own ties in stable
                # ascending-row order — reproduces exactly the stable
                # argsort a cold build would produce.
                tail_floats = _np.asarray(
                    [float("nan") if v is None else float(v) for v in tail],
                    dtype=_np.float64,
                )
                defined = _np.flatnonzero(~_np.isnan(tail_floats))
                old_rows, old_vals = self._sorted
                if defined.size == 0:
                    out._sorted = (old_rows, old_vals)
                else:
                    new_rows = (defined + start).astype(_np.int64)
                    new_vals = tail_floats[defined]
                    order = _np.argsort(new_vals, kind="stable")
                    new_rows = new_rows[order]
                    new_vals = new_vals[order]
                    pos = _np.searchsorted(old_vals, new_vals, side="right")
                    out._sorted = (
                        _np.insert(old_rows, pos, new_rows),
                        _np.insert(old_vals, pos, new_vals),
                    )
        return out

    def array(self):
        """The codes as an ``int64`` numpy vector (numpy builds only)."""
        if self._array is None:
            self._array = _np.asarray(self.codes, dtype=_np.int64)
        return self._array

    def valid_array(self):
        """Boolean vector: ``True`` where the value is not ``None``."""
        if self._valid is None:
            if self.none_code < 0:
                self._valid = _np.ones(len(self.codes), dtype=bool)
            else:
                self._valid = self.array() != self.none_code
        return self._valid

    def float_array(self, column: Sequence[Value]):
        """The raw values as floats, ``NaN`` for ``None``.

        Only meaningful when :attr:`numeric_safe`; ``NaN`` comparisons
        are ``False``, matching the naive ``None``-never-compares rule.
        """
        if self._floats is None:
            self._floats = _np.asarray(
                [float("nan") if v is None else float(v) for v in column],
                dtype=_np.float64,
            )
        return self._floats

    def sorted_projection(self, column: Sequence[Value]):
        """``(rows, values)``: defined cells ascending by float value.

        ``rows`` is an ``int64`` vector of the row indices whose float
        projection is defined (non-``None``, non-NaN), stably sorted by
        value — the shared substrate of ``searchsorted``-style interval
        and order kernels.  Cached; only meaningful when
        :attr:`numeric_safe`.
        """
        if self._sorted is None:
            floats = self.float_array(column)
            rows = _np.flatnonzero(~_np.isnan(floats))
            order = _np.argsort(floats[rows], kind="stable")
            rows = rows[order].astype(_np.int64, copy=False)
            self._sorted = (rows, floats[rows])
        return self._sorted


class RelationEncoding:
    """Lazily built dictionary encoding of a whole relation.

    Owned by a :class:`~repro.relation.relation.Relation` (which is
    immutable, so no invalidation is ever needed — derived relations
    simply start with a fresh, empty encoding).
    """

    __slots__ = (
        "_columns", "_n", "_per_column", "_combined", "_distinct",
        "_groups", "_keyed", "_stripped", "_ctx",
    )

    def __init__(self, columns: Sequence[Sequence[Value]], n: int) -> None:
        self._columns = columns
        self._n = n
        self._per_column: list[ColumnCodes | None] = [None] * len(columns)
        #: column-index tuple -> combined int codes (ndarray or list).
        self._combined: dict[tuple[int, ...], Any] = {}
        self._distinct: dict[tuple[int, ...], int] = {}
        #: memoized group tables / normalized stripped classes — the
        #: relation is immutable, so these never need invalidation.
        self._groups: dict[tuple[int, ...], list] = {}
        self._keyed: dict[tuple[int, ...], list] = {}
        self._stripped: dict[tuple, tuple] = {}
        #: Cached :class:`repro.plan.slabs.ExecutionContext` wrapping the
        #: owning relation (the encoding is the natural per-snapshot
        #: cache spot: relations are immutable, derived relations get a
        #: fresh encoding and therefore a fresh context + share token).
        self._ctx: Any = None

    def extended(
        self, columns: Sequence[Sequence[Value]], n: int
    ) -> "RelationEncoding":
        """An encoding for an append-only extension of this relation.

        ``columns`` must equal this encoding's columns on the first
        ``self._n`` rows.  Already-built per-column codebooks carry over
        via :meth:`ColumnCodes.extended`; unbuilt columns stay lazy, and
        the combined/group memos start empty (they are cheap to rebuild
        and their keys would all be stale anyway).
        """
        out = RelationEncoding(columns, n)
        for j, cc in enumerate(self._per_column):
            if cc is not None:
                out._per_column[j] = cc.extended(columns[j], self._n)
        return out

    # -- codebooks -----------------------------------------------------

    def column_codes(self, j: int) -> ColumnCodes:
        cc = self._per_column[j]
        if cc is None:
            cc = ColumnCodes(self._columns[j])
            self._per_column[j] = cc
        return cc

    def codes_array(self, j: int):
        return self.column_codes(j).array()

    def valid_array(self, j: int):
        return self.column_codes(j).valid_array()

    def float_array(self, j: int):
        return self.column_codes(j).float_array(self._columns[j])

    def sorted_projection(self, j: int):
        """Cached ``(rows, values)`` sorted float projection of column ``j``."""
        return self.column_codes(j).sorted_projection(self._columns[j])

    def gather(self, j: int):
        """Batch fetch of one column's kernel arrays (numpy builds only).

        Returns ``(codes, floats, valid)``: ``int64`` dictionary codes,
        the float projection (``None`` unless the column is
        numeric-safe), and the non-``None`` validity mask — everything
        the vectorized kernels need for a column, built once and cached
        on the encoding.
        """
        cc = self.column_codes(j)
        floats = (
            cc.float_array(self._columns[j]) if cc.numeric_safe else None
        )
        return cc.array(), floats, cc.valid_array()

    # -- combined keys -------------------------------------------------

    def combined_codes(self, idxs: tuple[int, ...]):
        """One integer per row encoding the value combination ``t[X]``.

        Codes are injective for the attribute set (equal combined code
        iff pairwise-equal values) but *not* dense nor order-preserving
        for multi-attribute sets; use the grouping helpers below.
        """
        cached = self._combined.get(idxs)
        if cached is not None:
            return cached
        first = self.column_codes(idxs[0])
        if len(idxs) == 1:
            combined = first.array() if HAS_NUMPY else first.codes
            self._combined[idxs] = combined
            return combined
        if HAS_NUMPY:
            acc = first.array().copy()
            card = max(first.n_distinct, 1)
            for j in idxs[1:]:
                cc = self.column_codes(j)
                radix = max(cc.n_distinct, 1)
                if card * radix > _MAX_RADIX:
                    __, acc = _np.unique(acc, return_inverse=True)
                    acc = acc.astype(_np.int64, copy=False)
                    card = int(acc.max()) + 1 if acc.size else 1
                    if card * radix > _MAX_RADIX:  # pragma: no cover
                        raise OverflowError("combined key space too large")
                acc = acc * radix + cc.array()
                card *= radix
        else:
            acc = list(first.codes)
            for j in idxs[1:]:
                cc = self.column_codes(j)
                radix = max(cc.n_distinct, 1)
                codes = cc.codes
                for i in range(self._n):  # Python ints cannot overflow
                    acc[i] = acc[i] * radix + codes[i]
        self._combined[idxs] = acc
        return acc

    # -- grouping primitives -------------------------------------------

    def group_table(
        self, idxs: tuple[int, ...]
    ) -> list[tuple[int, list[int]]]:
        """``(first_row, member_rows)`` per group, first-occurrence order.

        Member rows are ascending, matching the append order of the
        naive dict-based ``group_by``.  Memoized per attribute set —
        callers must treat the table and its lists as read-only.
        """
        cached = self._groups.get(idxs)
        if cached is not None:
            return cached
        if len(idxs) == 1:
            # The codebook pass already collected the member lists,
            # in code (= first-occurrence) order.
            table = [(m[0], m) for m in self.column_codes(idxs[0]).groups]
            self._groups[idxs] = table
            return table
        codes = self.combined_codes(idxs)
        if self._n == 0:
            table: list[tuple[int, list[int]]] = []
        elif HAS_NUMPY and isinstance(codes, _np.ndarray):
            # One stable argsort over the combined codes; equal codes
            # stay in row order, so each slice is already ascending and
            # its head is the group's first-occurrence row.
            order = _np.argsort(codes, kind="stable")
            ordered = codes[order]
            bounds = (_np.flatnonzero(ordered[1:] != ordered[:-1]) + 1).tolist()
            starts = [0, *bounds]
            ends = [*bounds, self._n]
            rows = order.tolist()
            table = [(rows[s], rows[s:e]) for s, e in zip(starts, ends, strict=True)]
            table.sort(key=lambda group: group[0])
        else:
            groups: dict[int, list[int]] = {}
            for i, c in enumerate(codes):
                groups.setdefault(c, []).append(i)
            table = [(members[0], members) for members in groups.values()]
        self._groups[idxs] = table
        return table

    def keyed_table(
        self, idxs: tuple[int, ...]
    ) -> list[tuple[tuple, list[int]]]:
        """``(key_tuple, member_rows)`` per group, first-occurrence order.

        Keys are decoded from the raw column values at each group's
        first row — exactly the tuples the naive ``group_by`` inserts —
        and the decode is memoized alongside the group table.  Callers
        must copy the member lists before mutating.
        """
        cached = self._keyed.get(idxs)
        if cached is not None:
            return cached
        cols = [self._columns[j] for j in idxs]
        keyed = [
            (tuple(col[first] for col in cols), members)
            for first, members in self.group_table(idxs)
        ]
        self._keyed[idxs] = keyed
        return keyed

    def stripped_classes(
        self, idxs: tuple[int, ...], min_size: int = 2
    ) -> tuple[tuple[int, ...], ...]:
        """Groups of size >= ``min_size``, keys skipped entirely.

        This is the partition-construction kernel: no key decoding, no
        singleton materialization.  Classes come back normalized —
        ascending member tuples, first-occurrence order — and memoized,
        so repeated partition builds are dictionary hits.
        """
        key = (idxs, min_size)
        cached = self._stripped.get(key)
        if cached is not None:
            return cached
        classes = tuple(
            tuple(members)
            for __, members in self.group_table(idxs)
            if len(members) >= min_size
        )
        self._stripped[key] = classes
        return classes

    def distinct_count(self, idxs: tuple[int, ...]) -> int:
        """Number of distinct value combinations over the attribute set."""
        cached = self._distinct.get(idxs)
        if cached is not None:
            return cached
        if len(idxs) == 1:
            count = self.column_codes(idxs[0]).n_distinct
        else:
            codes = self.combined_codes(idxs)
            if HAS_NUMPY and isinstance(codes, _np.ndarray):
                count = int(_np.unique(codes).size)
            else:
                count = len(set(codes))
        self._distinct[idxs] = count
        return count

    def distinct_first_rows(self, idxs: tuple[int, ...]) -> list[int]:
        """First-occurrence row of each distinct combination, ascending.

        Ascending first-occurrence rows reproduce the naive duplicate
        elimination order of ``Relation.project``.
        """
        codes = self.combined_codes(idxs)
        if HAS_NUMPY and isinstance(codes, _np.ndarray):
            __, first = _np.unique(codes, return_index=True)
            first.sort()
            return first.tolist()
        seen: set[int] = set()
        out: list[int] = []
        for i, c in enumerate(codes):
            if c not in seen:
                seen.add(c)
                out.append(i)
        return out

    # -- pairwise primitives -------------------------------------------

    def difference_masks(self, idxs: tuple[int, ...]) -> set[int] | None:
        """Distinct per-pair disagreement bitmasks over all tuple pairs.

        Bit ``b`` of a mask is set iff the pair disagrees on the
        ``b``-th attribute of ``idxs`` (FastFD's difference sets, as
        integers).  Returns ``None`` when the vectorized kernel cannot
        guarantee parity with raw ``!=`` comparisons — no numpy, more
        than 62 attributes, or a column holding NaN-like values that
        are unequal to themselves (raw ``!=`` sees a difference where
        equal dictionary codes would not).
        """
        k = len(idxs)
        if not HAS_NUMPY or not 1 <= k <= 62 or self._n < 2:
            return None
        cols = []
        for j in idxs:
            cc = self.column_codes(j)
            if cc.self_unequal:
                return None
            cols.append(cc.array())
        matrix = _np.stack(cols, axis=1)
        weights = _np.left_shift(
            _np.int64(1), _np.arange(k, dtype=_np.int64)
        )
        seen: set[int] = set()
        for i in range(self._n - 1):
            neq = matrix[i + 1:] != matrix[i]
            seen.update(
                _np.unique(neq.astype(_np.int64) @ weights).tolist()
            )
        seen.discard(0)
        return seen
