"""A relation-level cache of stripped partitions and group tables.

Before this module existed, every discovery algorithm re-derived its
groupings from scratch: TANE built its own partition dict per call, CFD
discovery re-grouped per LHS candidate, the detection/repair engines
re-grouped per rule, and the CLI profiler — which runs TANE twice
(exact + approximate) plus CFDMiner on the *same* relation — paid for
everything two or three times over.

:class:`PartitionCache` memoizes, per relation instance:

* ``partition(X)`` — the stripped partition ``π_X``, keyed by the
  *sorted* attribute-name tuple (partitions are order-insensitive);
* ``groups(X)`` — the full ``group_by`` dict, keyed by the attribute
  list *as given* (the key tuples are order-sensitive).

Relations are immutable, so entries never invalidate; derived relations
(``with_value``, ``take``, ...) start with a fresh, empty cache.  The
cache lives on the relation (``Relation._cache``), so any two
algorithms handed the same relation object automatically share it.

Returned partitions and group dicts are shared: callers must treat
them as read-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from .partition import StrippedPartition
from .relation import Relation, Row
from .schema import Attribute, as_attribute_names


@dataclass
class CacheStats:
    """Hit/miss counters, exposed so discovery stats can report reuse."""

    hits: int = 0
    misses: int = 0

    def __str__(self) -> str:
        return f"{self.hits} hits / {self.misses} misses"


class PartitionCache:
    """Memoized stripped partitions and group tables for one relation."""

    __slots__ = ("_relation", "_partitions", "_groups", "stats")

    def __init__(self, relation: Relation) -> None:
        self._relation = relation
        self._partitions: dict[tuple[str, ...], StrippedPartition] = {}
        self._groups: dict[tuple[str, ...], dict[Row, list[int]]] = {}
        self.stats = CacheStats()

    def partition(
        self, attributes: Sequence[Attribute | str]
    ) -> StrippedPartition:
        """``π_X``, built on first use and shared afterwards.

        Single attributes build directly (from the dictionary codes
        when the encoded substrate is on); multi-attribute partitions
        compose incrementally via the (cached) sub-partitions' stamped
        ``product``, as classic TANE does — measured cheaper than a
        fresh combined-key sort even on the encoded path, since the
        sub-partitions are already lattice neighbours.
        """
        key = tuple(sorted(as_attribute_names(attributes)))
        pi = self._partitions.get(key)
        if pi is not None:
            self.stats.hits += 1
            return pi
        self.stats.misses += 1
        if len(key) > 1:
            pi = self.partition(key[:-1]).product(self.partition(key[-1:]))
        else:
            pi = StrippedPartition.from_relation(self._relation, key)
        self._partitions[key] = pi
        return pi

    def groups(
        self, attributes: Sequence[Attribute | str]
    ) -> dict[Row, list[int]]:
        """Memoized ``relation.group_by(attributes)`` (read-only!)."""
        key = as_attribute_names(attributes)
        table = self._groups.get(key)
        if table is not None:
            self.stats.hits += 1
            return table
        self.stats.misses += 1
        table = self._relation.group_by(key)
        self._groups[key] = table
        return table

    def __len__(self) -> int:
        return len(self._partitions) + len(self._groups)

    def clear(self) -> None:
        """Drop all cached entries (the stats survive)."""
        self._partitions.clear()
        self._groups.clear()


def cache_for(relation: Relation) -> PartitionCache:
    """The relation's shared :class:`PartitionCache` (created lazily)."""
    cache = relation._cache
    if cache is None:
        cache = PartitionCache(relation)
        relation._cache = cache
    return cache
