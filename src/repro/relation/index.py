"""Secondary indexes over relation columns.

Discovery and detection algorithms repeatedly ask three kinds of
questions that a raw column answers slowly:

* "which tuples hold value v in A?" — :class:`InvertedIndex`
  (constant CFD mining, equivalence-class repair);
* "which tuples are within distance d of value v?" — :class:`SortedIndex`
  over numerical columns (DD/PAC candidate generation, SD checking);
* "in value order, what are the consecutive gaps?" — also
  :class:`SortedIndex` (OD/SD verification sorts once and scans).
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from collections.abc import Hashable, Iterable
from typing import Any

from .relation import Relation
from .schema import Attribute

Value = Any


class InvertedIndex:
    """value -> sorted list of tuple indices, for one attribute."""

    __slots__ = ("attribute", "_postings")

    def __init__(self, relation: Relation, attribute: Attribute | str) -> None:
        self.attribute = (
            attribute.name if isinstance(attribute, Attribute) else attribute
        )
        postings: dict[Hashable, list[int]] = defaultdict(list)
        for i, v in enumerate(relation.column(attribute)):
            postings[v].append(i)
        self._postings = dict(postings)

    def lookup(self, value: Hashable) -> tuple[int, ...]:
        """Tuple indices whose attribute equals ``value``."""
        return tuple(self._postings.get(value, ()))

    def values(self) -> tuple[Hashable, ...]:
        """All distinct values, insertion-ordered."""
        return tuple(self._postings)

    def frequency(self, value: Hashable) -> int:
        return len(self._postings.get(value, ()))

    def most_frequent(self) -> tuple[Hashable, int]:
        """The modal value and its count (PFD per-value probability)."""
        if not self._postings:
            raise ValueError("index over empty relation has no mode")
        value = max(self._postings, key=lambda v: len(self._postings[v]))
        return value, len(self._postings[value])

    def __len__(self) -> int:
        return len(self._postings)


class SortedIndex:
    """Tuple indices sorted by a (numerical) column's values.

    ``None`` values are excluded; callers that care about missing data
    inspect :attr:`missing`.
    """

    __slots__ = ("attribute", "_values", "_indices", "missing")

    def __init__(self, relation: Relation, attribute: Attribute | str) -> None:
        self.attribute = (
            attribute.name if isinstance(attribute, Attribute) else attribute
        )
        pairs = [
            (v, i)
            for i, v in enumerate(relation.column(attribute))
            if v is not None
        ]
        pairs.sort(key=lambda p: p[0])
        self._values = [p[0] for p in pairs]
        self._indices = [p[1] for p in pairs]
        self.missing = tuple(
            i for i, v in enumerate(relation.column(attribute)) if v is None
        )

    def in_range(self, low: float, high: float) -> tuple[int, ...]:
        """Tuple indices with value in the closed interval [low, high]."""
        lo = bisect.bisect_left(self._values, low)
        hi = bisect.bisect_right(self._values, high)
        return tuple(self._indices[lo:hi])

    def within(self, center: float, radius: float) -> tuple[int, ...]:
        """Tuple indices within ``radius`` of ``center`` (inclusive)."""
        return self.in_range(center - radius, center + radius)

    def ordered_indices(self) -> tuple[int, ...]:
        """Tuple indices in ascending value order (stable)."""
        return tuple(self._indices)

    def ordered_values(self) -> tuple[Value, ...]:
        return tuple(self._values)

    def gaps(self) -> list[float]:
        """Consecutive differences of the sorted values (SD evidence)."""
        return [
            self._values[k + 1] - self._values[k]
            for k in range(len(self._values) - 1)
        ]

    def __len__(self) -> int:
        return len(self._values)


def build_indexes(
    relation: Relation, attributes: Iterable[Attribute | str] | None = None
) -> dict[str, InvertedIndex]:
    """Inverted indexes for the given (default: all) attributes."""
    if attributes is None:
        attributes = relation.schema.names()
    out: dict[str, InvertedIndex] = {}
    for a in attributes:
        idx = InvertedIndex(relation, a)
        out[idx.attribute] = idx
    return out
