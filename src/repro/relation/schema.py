"""Relation schemas: typed attributes and attribute sets.

The paper (Table 4) works with a relation scheme ``R``, attribute sets
``X, Y`` and single attributes ``A, B``.  This module provides those
objects: :class:`Attribute` (a named, typed column), :class:`Schema`
(an ordered collection of attributes), and :class:`AttributeType`
(the three data types the survey is organized around: categorical,
numerical, and free text from heterogeneous sources).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence


class AttributeType(enum.Enum):
    """Data type of an attribute, mirroring the survey's categorization.

    * ``CATEGORICAL`` — compared with equality (Section 2).
    * ``TEXT`` — heterogeneous representations compared with string
      similarity metrics (Section 3).
    * ``NUMERICAL`` — compared with order and absolute difference
      (Section 4).
    """

    CATEGORICAL = "categorical"
    TEXT = "text"
    NUMERICAL = "numerical"

    @property
    def is_ordered(self) -> bool:
        """Whether ``<``/``>`` comparisons are meaningful for this type."""
        return self is AttributeType.NUMERICAL


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation scheme.

    Attributes are value objects: two attributes are interchangeable iff
    their name and type match.  They are hashable so they can be used in
    the attribute sets (``X``, ``Y``) that dependencies are declared over.
    """

    name: str
    dtype: AttributeType = AttributeType.CATEGORICAL

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.dtype.value})"


class SchemaError(KeyError):
    """Raised when an attribute is missing from, or duplicated in, a schema."""


class Schema:
    """An ordered collection of uniquely named attributes.

    A :class:`Schema` plays the role of the relation scheme ``R`` of the
    paper.  It supports lookup by name, projection to a sub-schema, and
    set-style queries used throughout dependency definitions.
    """

    __slots__ = ("_attributes", "_by_name", "_index_by_name")

    def __init__(self, attributes: Iterable[Attribute | str]) -> None:
        attrs: list[Attribute] = []
        for a in attributes:
            if isinstance(a, str):
                a = Attribute(a)
            attrs.append(a)
        by_name: dict[str, Attribute] = {}
        for a in attrs:
            if a.name in by_name:
                raise SchemaError(f"duplicate attribute name: {a.name!r}")
            by_name[a.name] = a
        self._attributes: tuple[Attribute, ...] = tuple(attrs)
        self._by_name = by_name
        self._index_by_name: dict[str, int] = {
            a.name: i for i, a in enumerate(attrs)
        }

    # -- basic container protocol ------------------------------------

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Attribute):
            return self._by_name.get(item.name) == item
        if isinstance(item, str):
            return item in self._by_name
        return False

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, int):
            return self._attributes[key]
        try:
            return self._by_name[key]
        except KeyError:
            raise SchemaError(
                f"no attribute {key!r} in schema {self.names()}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({list(self.names())})"

    # -- queries ------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """The attribute names, in schema order."""
        return tuple(a.name for a in self._attributes)

    def index_of(self, attribute: Attribute | str) -> int:
        """Position of ``attribute`` within the schema (O(1))."""
        name = attribute.name if isinstance(attribute, Attribute) else attribute
        try:
            return self._index_by_name[name]
        except KeyError:
            raise SchemaError(
                f"no attribute {name!r} in schema {self.names()}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """Lookup an attribute by name (alias of ``schema[name]``)."""
        return self[name]

    def resolve(self, names: Iterable[Attribute | str]) -> tuple[Attribute, ...]:
        """Map a mixed iterable of names/attributes to schema attributes.

        Raises :class:`SchemaError` for anything not in the schema, so
        dependencies fail fast when declared over the wrong relation.
        """
        return tuple(
            self[n.name if isinstance(n, Attribute) else n] for n in names
        )

    def project(self, names: Sequence[Attribute | str]) -> "Schema":
        """A new schema restricted to ``names``, in the order given."""
        return Schema(self.resolve(names))

    def complement(self, names: Iterable[Attribute | str]) -> tuple[Attribute, ...]:
        """Attributes of the schema *not* listed in ``names``.

        Used by tuple-generating dependencies (MVDs, FHDs) where the
        "rest" of the schema ``Z = R - X - Y`` matters.
        """
        drop = {n.name if isinstance(n, Attribute) else n for n in names}
        missing = drop - set(self.names())
        if missing:
            raise SchemaError(f"attributes not in schema: {sorted(missing)}")
        return tuple(a for a in self._attributes if a.name not in drop)

    def numerical_attributes(self) -> tuple[Attribute, ...]:
        """Attributes whose domain carries a meaningful order."""
        return tuple(
            a for a in self._attributes if a.dtype is AttributeType.NUMERICAL
        )

    def categorical_attributes(self) -> tuple[Attribute, ...]:
        return tuple(
            a for a in self._attributes if a.dtype is AttributeType.CATEGORICAL
        )

    def text_attributes(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self._attributes if a.dtype is AttributeType.TEXT)


def as_attribute_names(attrs: Iterable[Attribute | str]) -> tuple[str, ...]:
    """Normalize an iterable of attributes-or-names to a name tuple."""
    return tuple(a.name if isinstance(a, Attribute) else a for a in attrs)
