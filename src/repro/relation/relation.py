"""The in-memory relation instance: a small column-store.

This is the substrate every dependency in the family tree is evaluated
against.  A :class:`Relation` stores one Python list per attribute
(column-oriented), which makes the access patterns of the discovery
algorithms cheap:

* ``column(A)`` — a whole column for partitioning (TANE) or for metric
  index construction (DDs/MDs);
* ``tuple_at(i)`` / ``values_at(i, X)`` — tuple access for pairwise
  checks (MFDs, DCs, ...);
* ``group_by(X)`` — the equal-``X`` groups that FD-style semantics
  quantify over;
* ``project``, ``select``, ``natural_join`` — the relational algebra
  needed by tuple-generating dependencies (MVDs decompose/join).

``None`` is the missing-value marker throughout; by SQL convention a
``None`` never equals anything (including another ``None``) in
selections, but tuples compare positionally for the join/set semantics.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Hashable, Iterable, Iterator, Mapping, Sequence
from typing import Any

from . import encoding as _encoding
from .schema import Attribute, Schema

Value = Any
Row = tuple[Value, ...]


class Relation:
    """An immutable relation instance ``r`` over a schema ``R``.

    Construct with :meth:`from_rows` / :meth:`from_dicts` /
    :meth:`from_columns`.  All mutating operations return new relations.
    """

    __slots__ = ("_schema", "_columns", "_size", "_enc", "_cache")

    def __init__(self, schema: Schema, columns: Sequence[Sequence[Value]]) -> None:
        if len(columns) != len(schema):
            raise ValueError(
                f"{len(schema)} attributes but {len(columns)} columns supplied"
            )
        sizes = {len(c) for c in columns}
        if len(sizes) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(sizes)}")
        self._schema = schema
        self._columns: tuple[tuple[Value, ...], ...] = tuple(
            tuple(c) for c in columns
        )
        self._size = len(self._columns[0]) if self._columns else 0
        self._enc: _encoding.RelationEncoding | None = None
        self._cache = None  # lazily created PartitionCache

    @classmethod
    def _from_trusted(
        cls, schema: Schema, columns: tuple[tuple[Value, ...], ...]
    ) -> "Relation":
        """Internal constructor for already-validated column tuples.

        Skips the per-column re-tupling of ``__init__`` so derived
        relations (``with_value`` and friends) can share unchanged
        column tuples with their parent.
        """
        out = cls.__new__(cls)
        out._schema = schema
        out._columns = columns
        out._size = len(columns[0]) if columns else 0
        out._enc = None
        out._cache = None
        return out

    # -- constructors --------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema | Sequence[Attribute | str],
        rows: Iterable[Sequence[Value]],
    ) -> "Relation":
        """Build a relation from an iterable of row sequences."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        materialized = [tuple(row) for row in rows]
        for row in materialized:
            if len(row) != len(schema):
                raise ValueError(
                    f"row of width {len(row)} does not fit schema of width "
                    f"{len(schema)}: {row!r}"
                )
        columns = [
            [row[i] for row in materialized] for i in range(len(schema))
        ]
        return cls(schema, columns)

    @classmethod
    def from_dicts(
        cls,
        schema: Schema | Sequence[Attribute | str],
        rows: Iterable[Mapping[str, Value]],
    ) -> "Relation":
        """Build a relation from an iterable of ``{name: value}`` mappings.

        Missing keys become ``None``.
        """
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        names = schema.names()
        return cls.from_rows(
            schema, ([row.get(n) for n in names] for row in rows)
        )

    @classmethod
    def from_columns(
        cls,
        schema: Schema | Sequence[Attribute | str],
        columns: Mapping[str, Sequence[Value]] | Sequence[Sequence[Value]],
    ) -> "Relation":
        """Build a relation from per-attribute columns."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        if isinstance(columns, Mapping):
            ordered = [columns[n] for n in schema.names()]
        else:
            ordered = list(columns)
        return cls(schema, ordered)

    @classmethod
    def empty(cls, schema: Schema | Sequence[Attribute | str]) -> "Relation":
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        return cls(schema, [[] for __ in schema])

    # -- basic protocol -------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        # A relation with zero tuples is still a relation; avoid the
        # truthiness trap of ``if relation:`` meaning non-empty.
        return True

    def __iter__(self) -> Iterator[Row]:
        return (self.tuple_at(i) for i in range(self._size))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._columns == other._columns

    def __hash__(self) -> int:
        return hash((self._schema, self._columns))

    def __repr__(self) -> str:
        return f"Relation({list(self._schema.names())}, n={self._size})"

    # -- access ----------------------------------------------------------

    def _column_indices(
        self, attributes: Sequence[Attribute | str]
    ) -> tuple[int, ...]:
        """Resolve an attribute list to column positions, once per call.

        Every bulk operation goes through this so attribute-name lookup
        happens per *call*, never per cell.
        """
        index_of = self._schema.index_of
        return tuple(index_of(a) for a in attributes)

    def encoding(self) -> _encoding.RelationEncoding:
        """The relation's dictionary encoding (built lazily, cached).

        Relations are immutable, so the encoding never invalidates;
        derived relations start with a fresh one.
        """
        enc = self._enc
        if enc is None:
            enc = _encoding.RelationEncoding(self._columns, self._size)
            self._enc = enc
        return enc

    def _use_encoded(self, idxs: tuple[int, ...]) -> bool:
        return bool(idxs) and self._size > 0 and _encoding.encoded_enabled()

    def column(self, attribute: Attribute | str) -> tuple[Value, ...]:
        """The full column of ``attribute``."""
        idx = self._schema.index_of(attribute)
        return self._columns[idx]

    def tuple_at(self, i: int) -> Row:
        """The ``i``-th tuple as a positional value tuple."""
        if not 0 <= i < self._size:
            raise IndexError(f"tuple index {i} out of range [0, {self._size})")
        return tuple(col[i] for col in self._columns)

    def record_at(self, i: int) -> dict[str, Value]:
        """The ``i``-th tuple as a ``{name: value}`` dict."""
        return dict(zip(self._schema.names(), self.tuple_at(i), strict=True))

    def value_at(self, i: int, attribute: Attribute | str) -> Value:
        """Single cell ``t_i[A]``."""
        return self.column(attribute)[i]

    def values_at(
        self, i: int, attributes: Sequence[Attribute | str]
    ) -> Row:
        """Sub-tuple ``t_i[X]`` over the attribute list ``X``."""
        columns = self._columns
        return tuple(
            columns[j][i] for j in self._column_indices(attributes)
        )

    def rows(self) -> list[Row]:
        """All tuples, materialized."""
        return [self.tuple_at(i) for i in range(self._size)]

    # -- relational algebra ----------------------------------------------

    def project(self, attributes: Sequence[Attribute | str]) -> "Relation":
        """Projection *with* duplicate elimination (set semantics).

        MVD/FHD satisfaction is defined via ``r = π_XY(r) ⋈ π_XZ(r)``,
        which requires set semantics on the projections.
        """
        sub = self._schema.project(attributes)
        idxs = self._column_indices(attributes)
        cols = [self._columns[j] for j in idxs]
        if self._use_encoded(idxs):
            firsts = self.encoding().distinct_first_rows(idxs)
            rows = [tuple(col[i] for col in cols) for i in firsts]
            return Relation.from_rows(sub, rows)
        seen: set[Row] = set()
        rows = []
        for row in zip(*cols, strict=True) if cols else ((),) * self._size:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Relation.from_rows(sub, rows)

    def project_bag(self, attributes: Sequence[Attribute | str]) -> "Relation":
        """Projection keeping duplicates (bag semantics)."""
        sub = self._schema.project(attributes)
        cols = [self._columns[j] for j in self._column_indices(attributes)]
        if not cols:
            return Relation.from_rows(sub, [()] * self._size)
        return Relation.from_rows(sub, zip(*cols, strict=True))

    def select(self, predicate: Callable[[dict[str, Value]], bool]) -> "Relation":
        """Selection by a predicate over tuple dicts."""
        keep = [
            i for i in range(self._size) if predicate(self.record_at(i))
        ]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Relation":
        """New relation keeping exactly the tuples at ``indices``."""
        columns = [
            [col[i] for i in indices] for col in self._columns
        ]
        return Relation(self._schema, columns)

    def drop(self, indices: Iterable[int]) -> "Relation":
        """New relation with the tuples at ``indices`` removed."""
        dropped = set(indices)
        keep = [i for i in range(self._size) if i not in dropped]
        return self.take(keep)

    def extend(self, rows: Iterable[Sequence[Value]]) -> "Relation":
        """New relation with ``rows`` appended.

        Appends column-wise — one concat per column, sharing nothing but
        the existing column tuples — so the cost is O(rows added), not
        O(n·m) as the old ``from_rows`` round-trip was.

        Like insert-only :meth:`apply_delta`, any already-built
        dictionary encoding carries forward *patched* rather than
        rebuilt: codebooks extend in first-occurrence order and the
        kernel-side caches (float projections, sorted projections) are
        merged for the appended tail — never left stale (the
        extend-then-check regression suite pins this against a cold
        rebuild under the vectorized backend).
        """
        added = [tuple(r) for r in rows]
        width = len(self._schema)
        for row in added:
            if len(row) != width:
                raise ValueError(
                    f"row of width {len(row)} does not fit schema of width "
                    f"{width}: {row!r}"
                )
        if not added:
            return self
        columns = tuple(
            col + tuple(row[j] for row in added)
            for j, col in enumerate(self._columns)
        )
        child = Relation._from_trusted(self._schema, columns)
        enc = self._enc
        if enc is not None and any(cc is not None for cc in enc._per_column):
            child._enc = enc.extended(child._columns, len(child))
        return child

    def apply_delta(self, delta: "object") -> "Relation":
        """New relation with a mutation batch applied — see
        :mod:`repro.incremental`.

        Unlike :meth:`extend`/:meth:`take`/:meth:`with_values`, the
        derived relation inherits *patched* partition-cache entries (and,
        for insert-only batches, an extended dictionary encoding) from
        this one, which is what makes incremental re-checking cheap.
        """
        from ..incremental.delta import apply_delta

        return apply_delta(self, delta)

    # -- state serialization ---------------------------------------------

    def to_state(self) -> dict[str, Any]:
        """A JSON-safe, dictionary-encoded serialization of this relation.

        The snapshot format of the server durability layer (see
        :func:`repro.relation.encoding.relation_to_state`): schema with
        declared types plus per-column ``values``/``codes`` pairs.
        Round-trips through :meth:`from_state`.
        """
        return _encoding.relation_to_state(self)

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "Relation":
        """Rebuild a relation serialized by :meth:`to_state`."""
        return _encoding.relation_from_state(state)

    def with_value(
        self, i: int, attribute: Attribute | str, value: Value
    ) -> "Relation":
        """New relation with cell ``t_i[A]`` replaced — the repair primitive.

        Only the touched column is copied; the other column tuples are
        shared with this relation (they are immutable).
        """
        return self.with_values(i, {attribute: value})

    def with_values(
        self, i: int, assignment: Mapping[Attribute | str, Value]
    ) -> "Relation":
        """New relation with several cells of tuple ``i`` replaced at once.

        The batch form of :meth:`with_value`: one column copy per
        touched attribute instead of one whole-relation copy per cell,
        which is what the repair engines hammer on.
        """
        if not 0 <= i < self._size:
            raise IndexError(f"tuple index {i} out of range [0, {self._size})")
        columns = list(self._columns)
        for attribute, value in assignment.items():
            idx = self._schema.index_of(attribute)
            col = list(columns[idx])
            col[i] = value
            columns[idx] = tuple(col)
        return Relation._from_trusted(self._schema, tuple(columns))

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on shared attribute names (hash join).

        The joined schema lists self's attributes first, then other's
        non-shared attributes, matching the usual π/⋈ identities used in
        MVD semantics.
        """
        shared = [n for n in self._schema.names() if n in other._schema]
        other_only = [
            a for a in other._schema if a.name not in self._schema
        ]
        out_schema = Schema(list(self._schema) + list(other_only))
        shared_left = [
            self._columns[j] for j in self._column_indices(shared)
        ]
        shared_right = [
            other._columns[j] for j in other._column_indices(shared)
        ]
        right_only = [
            other._columns[j]
            for j in other._column_indices([a.name for a in other_only])
        ]
        index: dict[Row, list[int]] = defaultdict(list)
        for j in range(len(other)):
            index[tuple(col[j] for col in shared_right)].append(j)
        rows: list[Row] = []
        for i in range(self._size):
            key = tuple(col[i] for col in shared_left)
            for j in index.get(key, ()):
                rows.append(
                    self.tuple_at(i)
                    + tuple(col[j] for col in right_only)
                )
        return Relation.from_rows(out_schema, rows)

    def distinct(self) -> "Relation":
        """Duplicate-free copy of the relation."""
        return self.project(list(self._schema.names()))

    # -- grouping and counting ---------------------------------------------

    def group_by(
        self, attributes: Sequence[Attribute | str]
    ) -> dict[Row, list[int]]:
        """Tuple indices grouped by their ``X``-value.

        This is the backbone of FD-style semantics: a dependency
        ``X -> Y`` quantifies over each group of equal ``X`` values.
        Groups preserve first-occurrence order of keys via dict ordering.
        """
        idxs = self._column_indices(attributes)
        if self._use_encoded(idxs):
            return {
                key: list(members)
                for key, members in self.encoding().keyed_table(idxs)
            }
        return self._group_by_naive(idxs)

    def _group_by_naive(self, idxs: tuple[int, ...]) -> dict[Row, list[int]]:
        """Value-tuple grouping (the reference path for the encoded one)."""
        if not idxs:
            return {(): list(range(self._size))} if self._size else {}
        cols = [self._columns[j] for j in idxs]
        groups: dict[Row, list[int]] = defaultdict(list)
        for i, row in enumerate(zip(*cols, strict=True)):
            groups[row].append(i)
        return dict(groups)

    def _grouped_indices(
        self, attributes: Sequence[Attribute | str], min_size: int = 1
    ) -> Sequence[Sequence[int]]:
        """Equal-``X`` index groups without materializing key tuples.

        The partition-construction kernel: with the encoding enabled the
        group keys are never decoded at all, the classes come back as
        normalized (ascending, memoized) tuples, and repeated calls are
        dictionary hits.  Every class is ascending on both paths.
        """
        idxs = self._column_indices(attributes)
        if self._use_encoded(idxs):
            return self.encoding().stripped_classes(idxs, min_size=min_size)
        return [
            g
            for g in self._group_by_naive(idxs).values()
            if len(g) >= min_size
        ]

    def cached_group_by(
        self, attributes: Sequence[Attribute | str]
    ) -> dict[Row, list[int]]:
        """Memoized :meth:`group_by` via the relation's partition cache.

        Callers must treat the returned dict (and its lists) as
        read-only; it is shared across every caller of the same
        attribute list.
        """
        from .partition_cache import cache_for

        return cache_for(self).groups(attributes)

    def distinct_count(self, attributes: Sequence[Attribute | str]) -> int:
        """``|dom(X)|_r`` — number of distinct ``X``-values (SFD strength)."""
        idxs = self._column_indices(attributes)
        if self._use_encoded(idxs):
            return self.encoding().distinct_count(idxs)
        if not idxs:
            return 1 if self._size else 0
        cols = [self._columns[j] for j in idxs]
        return len(set(zip(*cols, strict=True)))

    def value_counts(
        self, attribute: Attribute | str
    ) -> dict[Hashable, int]:
        """Frequency of each value in a column."""
        counts: dict[Hashable, int] = defaultdict(int)
        for v in self.column(attribute):
            counts[v] += 1
        return dict(counts)

    def tuple_pairs(self) -> Iterator[tuple[int, int]]:
        """All unordered tuple-index pairs ``i < j``.

        Pairwise dependencies (MFDs, DDs, DCs, ...) quantify over these.
        """
        for i in range(self._size):
            for j in range(i + 1, self._size):
                yield i, j

    def sample(self, k: int, seed: int = 0) -> "Relation":
        """Deterministic pseudo-random sample of ``min(k, n)`` tuples.

        CORDS-style discovery samples the relation; a seeded sample keeps
        discovery reproducible.
        """
        import random

        if k >= self._size:
            return self
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(self._size), k))
        return self.take(indices)

    # -- pretty printing ------------------------------------------------

    def to_text(self, max_rows: int | None = 20) -> str:
        """Fixed-width textual rendering (used by the bench harness)."""
        names = self._schema.names()
        shown = self.rows() if max_rows is None else self.rows()[:max_rows]
        cells = [[str(n) for n in names]] + [
            ["" if v is None else str(v) for v in row] for row in shown
        ]
        widths = [
            max(len(r[c]) for r in cells) for c in range(len(names))
        ]
        lines = []
        for r, row in enumerate(cells):
            lines.append(
                "  ".join(val.ljust(widths[c]) for c, val in enumerate(row))
            )
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        if max_rows is not None and self._size > max_rows:
            lines.append(f"... ({self._size - max_rows} more tuples)")
        return "\n".join(lines)
