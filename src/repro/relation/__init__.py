"""Relational substrate: schemas, relation instances, partitions, indexes.

Everything in the dependency family tree is evaluated against the
:class:`~repro.relation.relation.Relation` defined here — a small,
immutable, column-oriented relation instance with exactly the access
paths the survey's algorithms require (grouping, stripped partitions,
sorted/inverted indexes, projection/join for MVD semantics).
"""

from .schema import Attribute, AttributeType, Schema, SchemaError, as_attribute_names
from .relation import Relation
from .encoding import (
    HAS_NUMPY,
    RelationEncoding,
    encoded_enabled,
    set_mode,
    substrate_mode,
)
from .partition import StrippedPartition
from .partition_cache import CacheStats, PartitionCache, cache_for
from .index import InvertedIndex, SortedIndex, build_indexes
from .io import read_csv, read_csv_text, to_csv_text, write_csv

__all__ = [
    "Attribute",
    "AttributeType",
    "Schema",
    "SchemaError",
    "as_attribute_names",
    "Relation",
    "HAS_NUMPY",
    "RelationEncoding",
    "encoded_enabled",
    "set_mode",
    "substrate_mode",
    "CacheStats",
    "PartitionCache",
    "cache_for",
    "StrippedPartition",
    "InvertedIndex",
    "SortedIndex",
    "build_indexes",
    "read_csv",
    "read_csv_text",
    "to_csv_text",
    "write_csv",
]
