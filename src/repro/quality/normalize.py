"""Schema normalization with FDs and MVDs (Table 3 row 7).

The original use of data dependencies [24, 30]:

* key inference and normal-form tests (BCNF via FDs, 4NF via MVDs);
* lossless-join decomposition: BCNF synthesis by splitting on
  violating FDs, 4NF splitting on violating MVDs;
* :func:`is_lossless` verifies a decomposition re-joins exactly.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from ..core.categorical import FD, MVD
from ..relation.relation import Relation
from ..relation.schema import Schema


def closure(
    attributes: Sequence[str], fds: Sequence[FD]
) -> frozenset[str]:
    """Attribute-set closure X+ under a set of FDs (Armstrong)."""
    out = set(attributes)
    changed = True
    while changed:
        changed = False
        for dep in fds:
            if set(dep.lhs) <= out and not set(dep.rhs) <= out:
                out |= set(dep.rhs)
                changed = True
    return frozenset(out)


def is_superkey(
    attributes: Sequence[str], schema_names: Sequence[str], fds: Sequence[FD]
) -> bool:
    """Whether ``attributes`` functionally determine the whole schema."""
    return closure(attributes, fds) >= set(schema_names)


def candidate_keys(
    schema_names: Sequence[str], fds: Sequence[FD]
) -> list[tuple[str, ...]]:
    """All minimal keys w.r.t. the given FDs (exponential, small schemas)."""
    names = sorted(schema_names)
    keys: list[tuple[str, ...]] = []
    for size in range(1, len(names) + 1):
        for combo in itertools.combinations(names, size):
            if any(set(k) <= set(combo) for k in keys):
                continue
            if is_superkey(combo, names, fds):
                keys.append(combo)
    return keys


def bcnf_violations(
    schema_names: Sequence[str], fds: Sequence[FD]
) -> list[FD]:
    """FDs violating BCNF: non-trivial with a non-superkey LHS."""
    return [
        dep
        for dep in fds
        if not dep.is_trivial()
        and not is_superkey(dep.lhs, schema_names, fds)
    ]


def is_bcnf(schema_names: Sequence[str], fds: Sequence[FD]) -> bool:
    return not bcnf_violations(schema_names, fds)


def bcnf_decompose(
    schema_names: Sequence[str], fds: Sequence[FD]
) -> list[tuple[str, ...]]:
    """Standard BCNF decomposition by repeated violation splitting.

    Each violating FD ``X -> Y`` splits R into ``X+ ∩ R`` and
    ``X ∪ (R - X+)``; FDs are projected by closure.  Lossless by
    construction; dependency preservation is *not* guaranteed (the
    classical caveat).
    """
    result: list[tuple[str, ...]] = []
    stack: list[tuple[str, ...]] = [tuple(sorted(schema_names))]
    while stack:
        current = stack.pop()
        local_fds = _project_fds(current, fds)
        violations = bcnf_violations(current, local_fds)
        if not violations:
            result.append(current)
            continue
        dep = violations[0]
        x_closure = closure(dep.lhs, local_fds) & set(current)
        left = tuple(sorted(x_closure))
        right = tuple(
            sorted(set(dep.lhs) | (set(current) - x_closure))
        )
        stack.append(left)
        stack.append(right)
    return sorted(set(result))


def _project_fds(
    schema_names: Sequence[str], fds: Sequence[FD]
) -> list[FD]:
    """FDs implied on a sub-schema (closure-based projection).

    Exponential in the sub-schema size; fine for the design-time use.
    """
    names = sorted(schema_names)
    out: list[FD] = []
    for size in range(1, len(names)):
        for lhs in itertools.combinations(names, size):
            cl = closure(lhs, fds)
            rhs = tuple(sorted((cl & set(names)) - set(lhs)))
            if rhs:
                out.append(FD(lhs, rhs))
    return out


def fourth_nf_violations(
    relation: Relation, mvds: Sequence[MVD], fds: Sequence[FD]
) -> list[MVD]:
    """MVDs violating 4NF: non-trivial with non-superkey LHS."""
    names = relation.schema.names()
    out = []
    for mvd in mvds:
        z = mvd.complement_attributes(relation)
        if not z or not mvd.rhs:
            continue  # trivial
        if not is_superkey(mvd.lhs, names, fds):
            out.append(mvd)
    return out


def fourth_nf_decompose(
    relation: Relation, mvds: Sequence[MVD], fds: Sequence[FD]
) -> list[Relation]:
    """One-step 4NF decomposition on the first violating MVD.

    Full 4NF synthesis iterates; one split suffices for the library's
    demonstration and tests verify losslessness via re-join.
    """
    violations = fourth_nf_violations(relation, mvds, fds)
    if not violations:
        return [relation]
    left, right = violations[0].decompose(relation)
    return [left, right]


def is_lossless(
    relation: Relation, parts: Sequence[Relation]
) -> bool:
    """Whether the natural join of ``parts`` re-creates the relation."""
    if not parts:
        return False
    joined = parts[0]
    for p in parts[1:]:
        joined = joined.natural_join(p)
    joined = joined.project(list(relation.schema.names()))
    return set(joined.rows()) == set(relation.distinct().rows())
