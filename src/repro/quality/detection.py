"""Violation detection — Table 3's first application row.

A :class:`Detector` runs any set of dependencies (any notations mixed)
over a relation, aggregates the evidence, and — when ground truth about
injected errors is available (our generators record it) — scores the
detection as precision/recall/F1 at tuple granularity.

This is the engine behind the Perf-3 experiment: the paper's Section
1.2 story, quantified — FDs flag format variants as false positives
and miss variant-key errors, while metric rules do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from ..core.base import Dependency
from ..core.violation import Violation, ViolationSet
from ..relation.relation import Relation


@dataclass
class DetectionReport:
    """Aggregated violations of a rule set on one relation."""

    violations: ViolationSet
    per_rule: dict[str, ViolationSet] = field(default_factory=dict)
    #: ``False`` when a resource budget stopped the run early: the
    #: report is an honest partial answer (rules after the exhaustion
    #: point were not evaluated).
    complete: bool = True
    #: ``""`` while complete; the budget-exhaustion reason otherwise.
    exhausted: str = ""

    def __post_init__(self) -> None:
        # Deterministic iteration regardless of rule insertion order:
        # per_rule is keyed by rule label, so sort by it.
        self.per_rule = dict(sorted(self.per_rule.items()))

    def flagged_tuples(self) -> set[int]:
        """All tuple indices implicated by any rule."""
        return self.violations.tuple_indices()

    def rule_count(self) -> int:
        return len(self.per_rule)

    def summary(self) -> str:
        lines = [f"{len(self.violations)} violations from {self.rule_count()} rules"]
        for rule in sorted(self.per_rule):
            lines.append(f"  {rule}: {len(self.per_rule[rule])}")
        if not self.complete:
            lines.append(f"  [partial: budget exhausted ({self.exhausted})]")
        return "\n".join(lines)


@dataclass(frozen=True)
class DetectionQuality:
    """Tuple-level precision/recall against injected ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f}"
        )


class Detector:
    """Run a mixed rule set over relations and score the evidence."""

    def __init__(self, rules: Sequence[Dependency]) -> None:
        self.rules = list(rules)

    def detect(self, relation: Relation) -> DetectionReport:
        """All violations of every rule, aggregated and per-rule.

        Rules sharing an LHS (or a relation that discovery already
        profiled) reuse the relation-level partition/group cache — the
        grouping work behind FD-style rules is paid once per attribute
        list, not once per rule.

        Pairwise rules evaluate through their compiled plans, so an
        ambient :func:`repro.runtime.governed` budget caps the pairs
        examined *inside* each rule; on exhaustion the report carries
        the rules evaluated so far, flagged partial.
        """
        from ..runtime import BudgetExhausted

        total = ViolationSet()
        per_rule: dict[str, ViolationSet] = {}
        complete, exhausted = True, ""
        for rule in self.rules:
            try:
                vs = rule.violations(relation)
            except BudgetExhausted as exc:
                complete, exhausted = False, exc.reason
                break
            per_rule[rule.label()] = vs
            total.extend(vs)
        return DetectionReport(
            violations=total,
            per_rule=per_rule,
            complete=complete,
            exhausted=exhausted,
        )

    def score(
        self,
        relation: Relation,
        true_error_tuples: Iterable[int],
        report: DetectionReport | None = None,
    ) -> DetectionQuality:
        """Score flagged tuples against the known injected errors.

        Pass a ``report`` from a previous :meth:`detect` call to avoid
        re-running every rule.
        """
        if report is None:
            report = self.detect(relation)
        flagged = report.flagged_tuples()
        truth = set(true_error_tuples)
        tp = len(flagged & truth)
        fp = len(flagged - truth)
        fn = len(truth - flagged)
        return DetectionQuality(tp, fp, fn)

    def holds(self, relation: Relation) -> bool:
        """Whether every rule is satisfied (no detection evidence)."""
        return all(rule.holds(relation) for rule in self.rules)


def detect_violations(
    relation: Relation, rules: Sequence[Dependency]
) -> ViolationSet:
    """One-shot convenience wrapper around :class:`Detector`."""
    return Detector(rules).detect(relation).violations


def rank_sources_by_quality(
    sources: Sequence[Relation],
    lhs: Sequence[str],
    rhs: Sequence[str] | str,
) -> list[tuple[int, float]]:
    """Rank data sources by their PFD probability for ``lhs -> rhs``.

    Section 2.2.4: "the violation of PFDs by some data sources can help
    pinpoint data sources with low quality data."  Returns
    ``(source_index, probability)`` pairs, lowest quality first.
    """
    from ..core.categorical import PFD

    probe = PFD(lhs, rhs if not isinstance(rhs, str) else (rhs,))
    scored = [
        (k, probe.measure(source)) for k, source in enumerate(sources)
    ]
    return sorted(scored, key=lambda kv: (kv[1], kv[0]))


def rank_suspects(
    relation: Relation, rules: Sequence[Dependency]
) -> list[tuple[int, int]]:
    """Tuples ranked by how much violation evidence implicates them.

    UGuide-style prioritization ([102]): a tuple flagged by many rules
    and many pairs is the best candidate to show a user first.  Returns
    ``(tuple_index, evidence_count)`` pairs, most-suspicious first;
    ties break toward the smaller index for determinism.
    """
    counts: dict[int, int] = {}
    for rule in rules:
        for v in rule.violations(relation):
            for t in v.tuples:
                counts[t] = counts.get(t, 0) + 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
