"""Record matching and deduplication with MDs/CMDs (Table 3 row 5).

Fan et al. [37]: MDs are matching rules — LHS-similar pairs should be
identified.  The dedup engine:

1. applies a set of MDs to propose matching pairs;
2. takes the transitive closure (union-find) into entity clusters;
3. optionally *enforces* the identification by rewriting the RHS
   attributes of each cluster to a canonical value (the dynamic
   semantics of the matching operator ⇌).

Scoring against known duplicate pairs (our generator records them)
gives the pair-level precision/recall of a rule set.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..core.heterogeneous import MD
from ..relation.relation import Relation


class UnionFind:
    """Minimal union-find over tuple indices."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)

    def clusters(self) -> list[list[int]]:
        by_root: dict[int, list[int]] = {}
        for i in range(len(self.parent)):
            by_root.setdefault(self.find(i), []).append(i)
        return sorted(by_root.values())


@dataclass(frozen=True)
class MatchQuality:
    """Pair-level precision/recall of proposed matches."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        d = self.true_positives + self.false_positives
        return self.true_positives / d if d else 1.0

    @property
    def recall(self) -> float:
        d = self.true_positives + self.false_negatives
        return self.true_positives / d if d else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def match_across(
    left: Relation,
    right: Relation,
    rule: MD,
) -> list[tuple[int, int]]:
    """Cross-relation record matching (MDs over two relations, [33, 37]).

    Returns pairs ``(i, j)`` — ``i`` indexing ``left``, ``j`` indexing
    ``right`` — whose records are LHS-similar under the MD.  Both
    relations must carry the MD's attributes; extra attributes are
    ignored.  Implemented by stacking the shared attributes and
    filtering the pairwise matches to cross pairs only.
    """
    attrs = list(rule.attributes())
    for a in attrs:
        left.schema.resolve([a])
        right.schema.resolve([a])
    stacked = Relation.from_rows(
        left.schema.project(attrs),
        [left.values_at(i, attrs) for i in range(len(left))]
        + [right.values_at(j, attrs) for j in range(len(right))],
    )
    split = len(left)
    out: list[tuple[int, int]] = []
    for a, b in rule.matches(stacked):
        if a < split <= b:
            out.append((a, b - split))
    return out


class Deduplicator:
    """MD-driven record matching, clustering, and identification."""

    def __init__(self, rules: Sequence[MD]) -> None:
        self.rules = list(rules)

    def matching_pairs(self, relation: Relation) -> set[tuple[int, int]]:
        """Pairs proposed by at least one MD (unordered, i < j)."""
        out: set[tuple[int, int]] = set()
        for rule in self.rules:
            out.update(rule.matches(relation))
        return out

    def clusters(self, relation: Relation) -> list[list[int]]:
        """Entity clusters: transitive closure of the matching pairs."""
        uf = UnionFind(len(relation))
        for a, b in self.matching_pairs(relation):
            uf.union(a, b)
        return uf.clusters()

    def duplicates(self, relation: Relation) -> list[list[int]]:
        """Clusters of size >= 2 (the actual duplicate groups)."""
        return [c for c in self.clusters(relation) if len(c) >= 2]

    def identify(self, relation: Relation) -> Relation:
        """Enforce ⇌: canonicalize each cluster's RHS attributes.

        Every MD's RHS attributes are rewritten to the cluster-majority
        value — the dynamic-identification semantics of [33, 37].
        """
        current = relation
        rhs_attrs = sorted({a for rule in self.rules for a in rule.rhs})
        for cluster in self.duplicates(relation):
            for a in rhs_attrs:
                values = Counter(
                    current.value_at(t, a)
                    for t in cluster
                    if current.value_at(t, a) is not None
                )
                if not values:
                    continue
                canonical, __ = values.most_common(1)[0]
                for t in cluster:
                    if current.value_at(t, a) != canonical:
                        current = current.with_value(t, a, canonical)
        return current

    def score(
        self,
        relation: Relation,
        true_pairs: Iterable[tuple[int, int]],
    ) -> MatchQuality:
        """Pair-level quality against known duplicates.

        Proposed pairs are expanded to the cluster closure first, since
        transitively implied matches are intended matches.
        """
        truth = {tuple(sorted(p)) for p in true_pairs}
        proposed: set[tuple[int, int]] = set()
        for cluster in self.duplicates(relation):
            for x in range(len(cluster)):
                for y in range(x + 1, len(cluster)):
                    proposed.add((cluster[x], cluster[y]))
        tp = len(proposed & truth)
        return MatchQuality(tp, len(proposed) - tp, len(truth) - tp)
