"""Interleaved record matching and data repairing (Fan et al. [38, 41]).

Section 3.7.4: "record matching with MDs and data repairing with CFDs
can interactively perform together ... the interaction between record
matching and data repairing can effectively help with each other."

:func:`interactive_clean` implements that loop:

1. **match** — apply the MDs; identify each cluster's RHS attributes
   (canonical value), which can create new equal values ...
2. **repair** — ... that let CFD repairs fire; repairing in turn
   normalizes values, which can make new pairs LHS-similar;
3. repeat until a fixpoint (no edits in a full round) or the round cap.

The function returns the cleaned relation and a per-round trace so
callers (and the tests) can observe the mutual enablement the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..core.categorical import CFD
from ..core.heterogeneous import MD
from ..relation.relation import Relation
from .dedup import Deduplicator
from .repair import repair_cfds


@dataclass
class CleaningRound:
    """What one match+repair round changed."""

    round_number: int
    identified_cells: int
    repaired_cells: int

    @property
    def total(self) -> int:
        return self.identified_cells + self.repaired_cells


@dataclass
class CleaningTrace:
    """The full interactive-cleaning run."""

    rounds: list[CleaningRound] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return bool(self.rounds) and self.rounds[-1].total == 0

    def total_changes(self) -> int:
        return sum(r.total for r in self.rounds)


def _count_diff(before: Relation, after: Relation) -> int:
    """Number of cells that changed between two same-shape relations."""
    count = 0
    for i in range(len(before)):
        for a, b in zip(before.tuple_at(i), after.tuple_at(i), strict=True):
            if a != b:
                count += 1
    return count


def interactive_clean(
    relation: Relation,
    cfds: Sequence[CFD],
    mds: Sequence[MD],
    max_rounds: int = 10,
) -> tuple[Relation, CleaningTrace]:
    """Alternate MD identification and CFD repair to a fixpoint."""
    trace = CleaningTrace()
    current = relation
    dedup = Deduplicator(list(mds))
    for round_number in range(1, max_rounds + 1):
        # Matching step: canonicalize RHS attributes within clusters.
        identified = dedup.identify(current)
        identified_cells = _count_diff(current, identified)
        # Repairing step: enforce the CFDs.
        repaired, log = repair_cfds(identified, list(cfds))
        repaired_cells = log.cost()
        trace.rounds.append(
            CleaningRound(round_number, identified_cells, repaired_cells)
        )
        current = repaired
        if identified_cells == 0 and repaired_cells == 0:
            break
    return current, trace
