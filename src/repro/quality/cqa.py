"""Consistent query answering (CQA) over inconsistent relations.

Arenas, Bertossi & Chomicki [3]: a *repair* of an inconsistent database
is a maximal consistent subset; a tuple is a **consistent (certain)
answer** to a query iff it appears in the answer over *every* repair,
and a **possible answer** iff it appears in at least one.

Exact repair enumeration is exponential; for FD violations the repairs
have special structure — per violating equal-X group, any single-Y
subgroup choice — which this module exploits:

* :func:`fd_repairs` — enumerate (bounded) repairs of a relation
  w.r.t. a set of FDs;
* :func:`consistent_answers` / :func:`possible_answers` — certain and
  possible selections under those repairs.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Sequence

from ..core.categorical import FD
from ..relation.relation import Relation

Row = tuple


def _group_choices(relation: Relation, dep: FD) -> list[list[frozenset[int]]]:
    """Per violating X-group, the alternative single-Y subgroup keeps."""
    choices: list[list[frozenset[int]]] = []
    for indices in relation.group_by(dep.lhs).values():
        by_y: dict[tuple, list[int]] = {}
        for t in indices:
            by_y.setdefault(relation.values_at(t, dep.rhs), []).append(t)
        if len(by_y) > 1:
            choices.append([frozenset(v) for v in by_y.values()])
    return choices


def fd_repairs(
    relation: Relation,
    fds: Sequence[FD],
    max_repairs: int = 256,
) -> list[Relation]:
    """Subset repairs w.r.t. ``fds`` (maximal consistent subsets).

    For a single FD the repairs are exactly the per-group subgroup
    choices.  For several FDs, candidate subsets are generated from the
    product of per-FD choices and filtered for global consistency, then
    maximized.  Enumeration is capped at ``max_repairs`` (CQA is
    coNP-hard in general; the cap keeps the engine practical and is
    reported honestly by :func:`is_exhaustive`).
    """
    all_indices = set(range(len(relation)))
    per_fd_choices: list[list[list[frozenset[int]]]] = [
        _group_choices(relation, dep) for dep in fds
    ]
    flat_choices = [c for per_fd in per_fd_choices for c in per_fd]
    if not flat_choices:
        return [relation]

    candidates: set[frozenset[int]] = set()
    for combo in itertools.islice(
        itertools.product(*flat_choices), max_repairs * 4
    ):
        drop: set[int] = set()
        for group_keep, group_alternatives in zip(combo, flat_choices, strict=True):
            members = set().union(*group_alternatives)
            drop |= members - set(group_keep)
        keep = frozenset(all_indices - drop)
        candidates.add(keep)
        if len(candidates) >= max_repairs * 4:
            break

    # Filter to consistent subsets, then keep only the maximal ones.
    consistent: list[frozenset[int]] = []
    for keep in candidates:
        sub = relation.take(sorted(keep))
        if all(dep.holds(sub) for dep in fds):
            consistent.append(keep)
    maximal = [
        k
        for k in consistent
        if not any(o != k and o >= k for o in consistent)
    ]
    return [relation.take(sorted(k)) for k in maximal[:max_repairs]]


def is_exhaustive(relation: Relation, fds: Sequence[FD], max_repairs: int = 256) -> bool:
    """Whether :func:`fd_repairs` enumerated every repair (no cap hit)."""
    total = 1
    for dep in fds:
        for group in _group_choices(relation, dep):
            total *= len(group)
            if total > max_repairs:
                return False
    return True


def consistent_answers(
    relation: Relation,
    fds: Sequence[FD],
    query: Callable[[Relation], Iterable[Row]],
    max_repairs: int = 256,
) -> set[Row]:
    """Rows returned by ``query`` on *every* repair (certain answers)."""
    repairs = fd_repairs(relation, fds, max_repairs)
    if not repairs:
        return set()
    answer = set(map(tuple, query(repairs[0])))
    for rep in repairs[1:]:
        answer &= set(map(tuple, query(rep)))
        if not answer:
            break
    return answer


def possible_answers(
    relation: Relation,
    fds: Sequence[FD],
    query: Callable[[Relation], Iterable[Row]],
    max_repairs: int = 256,
) -> set[Row]:
    """Rows returned by ``query`` on at least one repair."""
    out: set[Row] = set()
    for rep in fd_repairs(relation, fds, max_repairs):
        out |= set(map(tuple, query(rep)))
    return out


def select_query(
    attributes: Sequence[str],
    predicate: Callable[[dict], bool] | None = None,
) -> Callable[[Relation], list[Row]]:
    """Build a simple project-select query for the CQA entry points."""

    def run(relation: Relation) -> list[Row]:
        rows = []
        for i in range(len(relation)):
            record = relation.record_at(i)
            if predicate is None or predicate(record):
                rows.append(tuple(record[a] for a in attributes))
        return rows

    return run
