"""Query-optimization statistics from dependencies (Table 3 row 3).

The survey's optimization applications, made concrete:

* :class:`SelectivityEstimator` — CORDS-style [55]: joint selectivity
  of conjunctive equality predicates is misestimated under the
  independence assumption when columns are correlated; known SFDs fix
  the estimate (``sel(X ∧ Y) ≈ sel(X)`` when X softly determines Y);
* :class:`CorrelationMap` — Kimura et al. [60]: a compressed secondary
  index mapping each value of a correlated column to the value(s) of
  an indexed column, enabling index rewrites;
* :func:`projection_size_estimate` — NUD-based bound on distinct
  counts [22];
* :func:`od_sort_reuse` — ODs let a sort order on X serve ORDER BY Y
  [28, 100].
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping, Sequence

from ..core.categorical import NUD, SFD
from ..core.numerical import OD
from ..relation.relation import Relation


class SelectivityEstimator:
    """Equality-predicate selectivity with and without SFD knowledge."""

    def __init__(self, relation: Relation, sfds: Sequence[SFD] = ()) -> None:
        self.relation = relation
        self.sfds = list(sfds)
        self._distinct: dict[str, int] = {
            a: max(relation.distinct_count([a]), 1)
            for a in relation.schema.names()
        }

    def single_selectivity(self, attribute: str) -> float:
        """Uniform-assumption selectivity of ``A = const``: 1/|dom(A)|."""
        return 1.0 / self._distinct[attribute]

    def independence_estimate(self, attributes: Sequence[str]) -> float:
        """Textbook independent-columns estimate: product of singles."""
        est = 1.0
        for a in attributes:
            est *= self.single_selectivity(a)
        return est

    def sfd_aware_estimate(self, attributes: Sequence[str]) -> float:
        """Estimate correcting for soft functional determination.

        When a known SFD says A softly determines B (both in the
        predicate), B's factor is dropped: fixing A (almost) fixes B,
        so multiplying by sel(B) undercounts by ~|dom(B)|x.
        """
        attrs = list(attributes)
        determined: set[str] = set()
        for sfd in self.sfds:
            if (
                len(sfd.lhs) == 1
                and len(sfd.rhs) == 1
                and sfd.lhs[0] in attrs
                and sfd.rhs[0] in attrs
            ):
                determined.add(sfd.rhs[0])
        est = 1.0
        for a in attrs:
            if a not in determined:
                est *= self.single_selectivity(a)
        return est

    def true_selectivity(
        self, predicate: Mapping[str, object]
    ) -> float:
        """Measured fraction of tuples matching the equality predicate."""
        n = len(self.relation)
        if n == 0:
            return 0.0
        hits = 0
        for i in range(n):
            record = self.relation.record_at(i)
            if all(record.get(a) == v for a, v in predicate.items()):
                hits += 1
        return hits / n

    def average_estimation_error(
        self, attributes: Sequence[str], use_sfds: bool
    ) -> float:
        """Mean |estimate - truth| over observed value combinations.

        The Perf/optimizer benchmark's figure of merit: with correlated
        columns the independence estimate is off by ~|dom|x, the
        SFD-aware one is not.
        """
        combos = defaultdict(int)
        for i in range(len(self.relation)):
            combos[self.relation.values_at(i, attributes)] += 1
        n = len(self.relation)
        estimate = (
            self.sfd_aware_estimate(attributes)
            if use_sfds
            else self.independence_estimate(attributes)
        )
        error = 0.0
        for value, count in combos.items():
            error += abs(estimate - count / n)
        return error / max(len(combos), 1)


class CorrelationMap:
    """Kimura et al.'s compressed secondary-index surrogate [60].

    For an SFD ``C1 -> C2`` (C2 indexed), the map stores, per bucketed
    C1 value, the set of C2 buckets its tuples fall in; a predicate on
    C1 is rewritten into C2-bucket accesses.  The map is small exactly
    when the SFD is strong.
    """

    def __init__(
        self,
        relation: Relation,
        source: str,
        target: str,
        buckets: int = 16,
    ) -> None:
        self.source = source
        self.target = target
        self.buckets = buckets
        self._map: dict[object, set[int]] = defaultdict(set)
        targets = sorted(
            {v for v in relation.column(target) if v is not None}, key=repr
        )
        self._bucket_of = {
            v: (k * buckets) // max(len(targets), 1)
            for k, v in enumerate(targets)
        }
        for i in range(len(relation)):
            s = relation.value_at(i, source)
            t = relation.value_at(i, target)
            if s is not None and t is not None:
                self._map[s].add(self._bucket_of[t])

    def target_buckets(self, source_value: object) -> set[int]:
        """Buckets of the indexed column to scan for a source predicate."""
        return set(self._map.get(source_value, set()))

    def size(self) -> int:
        """Total (value, bucket) entries — the compression figure."""
        return sum(len(b) for b in self._map.values())

    def scan_fraction(self, source_value: object) -> float:
        """Fraction of the index the rewrite must touch (lower = better)."""
        return len(self.target_buckets(source_value)) / max(self.buckets, 1)


def projection_size_estimate(
    relation: Relation, nud: NUD
) -> tuple[int, int]:
    """(estimated bound, actual) distinct count of ``π_{X ∪ Y}`` [22]."""
    bound = nud.projection_size_bound(relation)
    actual = relation.distinct_count(
        tuple(dict.fromkeys(nud.lhs + nud.rhs))
    )
    return bound, actual


def od_sort_reuse(relation: Relation, od: OD) -> bool:
    """Whether a sort on the OD's LHS also delivers the RHS order [28].

    True iff the OD holds — sorting by rank then reading salary order
    for free, in the paper's example.  Exposed as a named operation so
    optimizer code reads as intent.
    """
    return od.holds(relation)
