"""CD-driven query evaluation over dataspaces (Song et al. [92], §3.4.4).

In a dataspace, tuples from heterogeneous sources use synonym
attributes (region vs city) and variant value formats.  A query tuple
that names one attribute should still match records using the other —
that is what the similarity functions ``θ(Ai, Aj)`` of comparable
dependencies encode.

* :func:`comparable_search` — evaluate an equality-intent query
  through the θs: a record matches when, for every queried attribute,
  the record is θ-similar to a probe tuple carrying the query values;
* :func:`cd_accelerated_search` — "according to the comparable
  dependency, if LHS attributes of the query tuple and a data tuple
  are found comparable, then the data tuple can be returned without
  evaluating on RHS attributes": with a CD whose LHS covers the
  queried attributes, the RHS test is skipped and the number of
  comparisons drops — the efficiency effect is returned alongside the
  answers so benches can report it.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from ..core.heterogeneous.cd import CD, SimilarityFunction
from ..metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ..relation.relation import Relation


def _probe_relation(relation: Relation, query: Mapping[str, object]) -> Relation:
    """The relation extended with one probe tuple holding the query.

    θ evaluation is pairwise over one relation, so the probe rides
    along as the last tuple.
    """
    row = [query.get(name) for name in relation.schema.names()]
    return relation.extend([tuple(row)])


@dataclass
class SearchResult:
    """Answers plus the work counter (θ evaluations performed)."""

    indices: list[int]
    comparisons: int


def comparable_search(
    relation: Relation,
    query: Mapping[str, object],
    functions: Sequence[SimilarityFunction],
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> SearchResult:
    """Tuples θ-similar to the query on every queried attribute.

    Each queried attribute must be covered by some θ (as ``attr_i`` or
    ``attr_j``); uncovered attributes fall back to strict equality.
    """
    probe = _probe_relation(relation, query)
    probe_idx = len(probe) - 1
    theta_for: dict[str, SimilarityFunction] = {}
    for f in functions:
        theta_for.setdefault(f.attr_i, f)
        theta_for.setdefault(f.attr_j, f)

    out: list[int] = []
    comparisons = 0
    for i in range(len(relation)):
        ok = True
        for attr, value in query.items():
            theta = theta_for.get(attr)
            if theta is None:
                if relation.value_at(i, attr) != value:
                    ok = False
                    break
                continue
            comparisons += 1
            if not theta.similar(probe, i, probe_idx, registry):
                ok = False
                break
        if ok:
            out.append(i)
    return SearchResult(out, comparisons)


def cd_accelerated_search(
    relation: Relation,
    query: Mapping[str, object],
    cd: CD,
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> SearchResult:
    """Answer a query over LHS ∪ RHS attributes using only LHS checks.

    Sound when the CD holds on the dataspace: LHS-similarity implies
    RHS-similarity, so records similar to the probe on every LHS θ
    would pass the RHS θ too — the RHS evaluation is skipped entirely.
    The query must bind the LHS θs' attributes; RHS query values ride
    along un-checked (they are implied).
    """
    probe = _probe_relation(relation, query)
    probe_idx = len(probe) - 1
    out: list[int] = []
    comparisons = 0
    for i in range(len(relation)):
        ok = True
        for f in cd.lhs:
            comparisons += 1
            if not f.similar(probe, i, probe_idx, registry):
                ok = False
                break
        if ok:
            out.append(i)
    return SearchResult(out, comparisons)
