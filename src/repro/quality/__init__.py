"""Application engines of the survey's Table 3.

Violation detection, data repairing, record matching/deduplication,
missing-value imputation, consistent query answering, optimizer
statistics, schema normalization, and MVD-based fairness.
"""

from .detection import (
    DetectionQuality,
    DetectionReport,
    Detector,
    detect_violations,
    rank_sources_by_quality,
    rank_suspects,
)
from .repair import (
    CellEdit,
    RepairLog,
    repair_cfds,
    repair_dcs,
    repair_fds,
    verify_repair,
)
from .dedup import Deduplicator, MatchQuality, UnionFind, match_across
from .imputation import (
    afd_impute,
    afd_value_distribution,
    dd_impute,
    imputation_accuracy,
    p_neighborhood_impute,
)
from .cqa import (
    consistent_answers,
    fd_repairs,
    is_exhaustive,
    possible_answers,
    select_query,
)
from .optimizer import (
    CorrelationMap,
    SelectivityEstimator,
    od_sort_reuse,
    projection_size_estimate,
)
from .normalize import (
    bcnf_decompose,
    bcnf_violations,
    candidate_keys,
    closure,
    fourth_nf_decompose,
    fourth_nf_violations,
    is_bcnf,
    is_lossless,
    is_superkey,
)
from .propagation import (
    check_propagation,
    propagate_cfds,
    propagate_to_projection,
    propagate_to_selection,
    project_view,
    select_view,
)
from .dataspace import (
    SearchResult,
    cd_accelerated_search,
    comparable_search,
)
from .interaction import (
    CleaningRound,
    CleaningTrace,
    interactive_clean,
)
from .fairness import (
    fairness_violations,
    independence_mvd,
    is_interventionally_fair,
    repair_for_fairness,
)

__all__ = [
    "Detector",
    "DetectionReport",
    "DetectionQuality",
    "detect_violations",
    "rank_suspects",
    "rank_sources_by_quality",
    "CellEdit",
    "RepairLog",
    "repair_fds",
    "repair_cfds",
    "repair_dcs",
    "verify_repair",
    "Deduplicator",
    "MatchQuality",
    "UnionFind",
    "match_across",
    "p_neighborhood_impute",
    "dd_impute",
    "afd_impute",
    "afd_value_distribution",
    "imputation_accuracy",
    "fd_repairs",
    "is_exhaustive",
    "consistent_answers",
    "possible_answers",
    "select_query",
    "SelectivityEstimator",
    "CorrelationMap",
    "projection_size_estimate",
    "od_sort_reuse",
    "closure",
    "is_superkey",
    "candidate_keys",
    "bcnf_violations",
    "is_bcnf",
    "bcnf_decompose",
    "fourth_nf_violations",
    "fourth_nf_decompose",
    "is_lossless",
    "propagate_cfds",
    "propagate_to_projection",
    "propagate_to_selection",
    "project_view",
    "select_view",
    "check_propagation",
    "SearchResult",
    "comparable_search",
    "cd_accelerated_search",
    "CleaningRound",
    "CleaningTrace",
    "interactive_clean",
    "fairness_violations",
    "independence_mvd",
    "is_interventionally_fair",
    "repair_for_fairness",
]
