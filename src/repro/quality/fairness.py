"""MVDs for model fairness (Salimi et al. [80], Section 2.6.4).

Interventional fairness reduces to a database property: the training
data should satisfy a conditional independence — protected attributes
independent of the outcome given the admissible attributes — which is
*exactly* the saturated conditional independence an MVD
``K ->> P`` (with outcome in the complement) expresses.

This module provides:

* :func:`independence_mvd` — the MVD encoding a fairness requirement;
* :func:`fairness_violations` — the witness pairs breaking it;
* :func:`repair_for_fairness` — a minimal-deletion repair making the
  MVD hold (the "database repair problem" the paper reduces fairness
  to), via greedy removal of tuples blocking the cross product.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.categorical import MVD
from ..relation.relation import Relation


def independence_mvd(
    admissible: Sequence[str], protected: Sequence[str]
) -> MVD:
    """The MVD stating: given ``admissible``, ``protected`` varies
    independently of everything else (including the outcome)."""
    return MVD(tuple(admissible), tuple(protected))


def fairness_violations(
    relation: Relation,
    admissible: Sequence[str],
    protected: Sequence[str],
):
    """Witnesses that the protected attributes leak past ``admissible``."""
    return independence_mvd(admissible, protected).violations(relation)


def is_interventionally_fair(
    relation: Relation,
    admissible: Sequence[str],
    protected: Sequence[str],
) -> bool:
    """Whether the saturated conditional independence holds exactly."""
    return independence_mvd(admissible, protected).holds(relation)


def repair_for_fairness(
    relation: Relation,
    admissible: Sequence[str],
    protected: Sequence[str],
    max_rounds: int | None = None,
) -> tuple[Relation, list[int]]:
    """Greedy minimal-deletion repair enforcing the independence MVD.

    Repeatedly drops the tuple participating in the most violation
    witnesses until the MVD holds.  Returns (repaired relation, dropped
    original indices).  Deletion repairs always exist for MVDs (single
    tuples are trivially independent).
    """
    mvd = independence_mvd(admissible, protected)
    current = relation
    # Map current positions back to original indices as we drop.
    original = list(range(len(relation)))
    dropped: list[int] = []
    rounds = max_rounds if max_rounds is not None else len(relation)
    for __ in range(rounds):
        violations = mvd.violations(current)
        if not violations:
            break
        degree: dict[int, int] = {}
        for v in violations:
            for t in v.tuples:
                degree[t] = degree.get(t, 0) + 1
        victim = max(degree, key=degree.get)
        dropped.append(original[victim])
        original.pop(victim)
        current = current.drop([victim])
    return current, dropped
