"""Data repairing — FD/CFD equivalence-class repair and holistic DC repair.

Three engines, matching the Table 3 repair row:

* :func:`repair_fds` — Cong et al. [25] / Bohannon et al. [12] style:
  build equivalence classes of cells that must agree (connected
  components of FD-violation groups) and assign each class the value
  minimizing change cost (majority value);
* :func:`repair_cfds` — the same machinery on the conditioned subsets,
  plus constant-pattern enforcement;
* :func:`repair_dcs` — Chu et al. [20] holistic style: collect all DC
  violations into a conflict hypergraph and greedily fix the cell that
  resolves the most violations (value flip to a non-violating value, or
  tuple quarantine when no value works).

Repairs return a new relation plus a :class:`RepairLog` of cell edits —
relations are immutable here, as in the rest of the library.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..core.categorical import CFD, FD
from ..core.numerical import DC
from ..relation.relation import Relation
from ..runtime.budget import Budget, checkpoint, governed, resolve_budget
from ..runtime.errors import BudgetExhausted


@dataclass(frozen=True)
class CellEdit:
    """One repair: tuple ``index``'s ``attribute`` rewritten."""

    index: int
    attribute: str
    old_value: object
    new_value: object

    def __str__(self) -> str:
        return (
            f"t{self.index}.{self.attribute}: "
            f"{self.old_value!r} -> {self.new_value!r}"
        )


@dataclass
class RepairLog:
    """The edits applied by a repair engine, plus leftovers."""

    edits: list[CellEdit] = field(default_factory=list)
    #: Tuples quarantined because no consistent fix existed.
    quarantined: list[int] = field(default_factory=list)
    #: False when the engine stopped early on budget exhaustion; the
    #: edits applied so far are still valid (each one reduced
    #: violations), but the relation may not have reached a fixpoint.
    complete: bool = True
    #: Which budget dimension ran out ("deadline", "candidates", ...).
    exhausted: str = ""

    def mark_exhausted(self, reason: str) -> None:
        self.complete = False
        self.exhausted = reason

    def cost(self) -> int:
        """Number of cell edits (the usual repair cost model)."""
        return len(self.edits)

    def summary(self) -> str:
        lines = [f"{len(self.edits)} cell edits"]
        if not self.complete:
            lines[0] += (
                f" [partial: budget exhausted ({self.exhausted})]"
            )
        lines.extend(f"  {e}" for e in self.edits[:10])
        if len(self.edits) > 10:
            lines.append(f"  ... and {len(self.edits) - 10} more")
        if self.quarantined:
            lines.append(f"quarantined tuples: {self.quarantined}")
        return "\n".join(lines)


def repair_fds(
    relation: Relation,
    fds: Sequence[FD],
    budget: Budget | None = None,
) -> tuple[Relation, RepairLog]:
    """Equivalence-class repair: majority value per violating group.

    Iterates to a fixpoint (a repair for one FD can surface violations
    of another); each pass repairs every currently violating group of
    every FD by rewriting minority RHS values to the group majority.

    All edits for one tuple are applied as a single
    :meth:`~repro.relation.relation.Relation.with_values` batch — one
    column copy per touched attribute instead of one whole-relation
    copy per cell.

    On ``budget`` exhaustion the partially repaired relation is
    returned with ``log.complete = False``: every applied edit is a
    real majority-repair, but the fixpoint may not have been reached.
    """
    log = RepairLog()
    current = relation
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for __ in range(len(fds) * 2 + 2):  # fixpoint bound
                changed = False
                for dep in fds:
                    groups = dep.violating_groups(current)
                    for x_value, indices in groups.items():
                        checkpoint(candidates=1)
                        counts = Counter(
                            current.values_at(t, dep.rhs)
                            for t in indices
                        )
                        majority, __count = counts.most_common(1)[0]
                        for t in indices:
                            if current.values_at(t, dep.rhs) == majority:
                                continue
                            edits = {
                                a: new_v
                                for a, new_v in zip(dep.rhs, majority, strict=True)
                                if current.value_at(t, a) != new_v
                            }
                            if not edits:
                                continue
                            for a, new_v in edits.items():
                                log.edits.append(
                                    CellEdit(
                                        t, a,
                                        current.value_at(t, a),
                                        new_v,
                                    )
                                )
                            current = current.with_values(t, edits)
                            changed = True
                if not changed:
                    break
        except BudgetExhausted as exc:
            log.mark_exhausted(exc.reason)
    return current, log


def repair_cfds(
    relation: Relation,
    cfds: Sequence[CFD],
    budget: Budget | None = None,
) -> tuple[Relation, RepairLog]:
    """CFD repair: constant enforcement + conditioned majority repair.

    Partial (``log.complete = False``) on ``budget`` exhaustion.
    """
    log = RepairLog()
    current = relation
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for __ in range(len(cfds) * 2 + 2):
                changed = False
                for dep in cfds:
                    matching = dep.matching_indices(current)
                    # Constant RHS cells: force the constants.
                    for a in dep.rhs:
                        entry = dep.pattern.entry(a)
                        if entry.is_wildcard or not entry.is_constant:
                            continue
                        checkpoint(candidates=1)
                        for t in matching:
                            old_v = current.value_at(t, a)
                            if old_v != entry.constant:
                                current = current.with_value(
                                    t, a, entry.constant
                                )
                                log.edits.append(
                                    CellEdit(t, a, old_v, entry.constant)
                                )
                                changed = True
                    # Variable part: majority repair in matched groups.
                    groups: dict[tuple, list[int]] = defaultdict(list)
                    for t in matching:
                        groups[current.values_at(t, dep.lhs)].append(t)
                    for indices in groups.values():
                        checkpoint(candidates=1)
                        values = Counter(
                            current.values_at(t, dep.rhs)
                            for t in indices
                        )
                        if len(values) < 2:
                            continue
                        majority, __c = values.most_common(1)[0]
                        for t in indices:
                            if current.values_at(t, dep.rhs) == majority:
                                continue
                            edits = {
                                a: new_v
                                for a, new_v in zip(dep.rhs, majority, strict=True)
                                if current.value_at(t, a) != new_v
                            }
                            if not edits:
                                continue
                            for a, new_v in edits.items():
                                log.edits.append(
                                    CellEdit(
                                        t, a,
                                        current.value_at(t, a),
                                        new_v,
                                    )
                                )
                            current = current.with_values(t, edits)
                            changed = True
                if not changed:
                    break
        except BudgetExhausted as exc:
            log.mark_exhausted(exc.reason)
    return current, log


def repair_dcs(
    relation: Relation,
    dcs: Sequence[DC],
    max_rounds: int = 50,
    budget: Budget | None = None,
) -> tuple[Relation, RepairLog]:
    """Holistic greedy DC repair (violation hypergraph, max-degree cell).

    Each round: collect all violations of all DCs; pick the tuple
    participating in the most violations; try rewriting one of its
    cells (attributes mentioned by the violated DCs) to a value from
    another tuple's cell that removes its violations; quarantine the
    tuple when no single-cell rewrite works.

    Partial (``log.complete = False``) on ``budget`` exhaustion: the
    greedy rounds completed so far stand, later rounds are skipped.
    """
    log = RepairLog()
    current = relation
    quarantine: set[int] = set()

    def active_violations() -> list[tuple[DC, tuple[int, ...]]]:
        out = []
        for dc in dcs:
            for v in dc.violations(current):
                if not (set(v.tuples) & quarantine):
                    out.append((dc, v.tuples))
        return out

    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for __ in range(max_rounds):
                checkpoint()
                violations = active_violations()
                if not violations:
                    break
                degree: Counter = Counter()
                for __dc, tuples in violations:
                    degree.update(tuples)
                victim = degree.most_common(1)[0][0]
                involved_dcs = [
                    dc for dc, tuples in violations if victim in tuples
                ]
                attrs = sorted(
                    {a for dc in involved_dcs for a in dc.attributes()}
                )
                before = sum(
                    1 for __dc, ts in violations if victim in ts
                )
                fixed = False
                for a in attrs:
                    old_v = current.value_at(victim, a)
                    candidates = {
                        current.value_at(i, a)
                        for i in range(len(current))
                        if i != victim
                    } - {old_v, None}
                    for new_v in sorted(candidates, key=repr):
                        stats_pairs = len(current) - 1
                        checkpoint(candidates=1, pairs=stats_pairs)
                        trial = current.with_value(victim, a, new_v)
                        after = 0
                        for dc in dcs:
                            for v in dc.violations(trial):
                                if victim in v.tuples and not (
                                    set(v.tuples) & quarantine
                                ):
                                    after += 1
                        if after < before:
                            current = trial
                            log.edits.append(
                                CellEdit(victim, a, old_v, new_v)
                            )
                            fixed = True
                            break
                    if fixed:
                        break
                if not fixed:
                    quarantine.add(victim)
                    log.quarantined.append(victim)
        except BudgetExhausted as exc:
            log.mark_exhausted(exc.reason)
    return current, log


def verify_repair(
    relation: Relation,
    rules: Sequence,
    ignore_tuples: Sequence[int] = (),
) -> bool:
    """Check that all rules hold on the repaired relation.

    ``ignore_tuples`` excludes quarantined tuples from the check.
    """
    if ignore_tuples:
        keep = [
            i for i in range(len(relation)) if i not in set(ignore_tuples)
        ]
        relation = relation.take(keep)
    return all(rule.holds(relation) for rule in rules)
