"""Missing-value imputation with neighborhood rules (NEDs/DDs).

Two methods from the survey:

* :func:`p_neighborhood_impute` — Bassée & Wijsen's P-neighborhood
  method [4] (Section 3.2.4): predict a tuple's target value from all
  existing tuples that are close on the predictor attributes, without
  requiring a k or a combined distance metric like kNN does;
* :func:`dd_impute` — DD-based candidate enrichment in the spirit of
  [95, 96]: a missing cell's candidates are the values of tuples
  compatible with the DD's LHS differential function; pick the
  candidate minimizing RHS-range violations (majority of the
  compatible neighbours).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence

from ..core.heterogeneous import DD, SimilarityPredicate, coerce_predicates
from ..metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ..relation.relation import Relation


def _neighbours(
    relation: Relation,
    index: int,
    predicates: Sequence[SimilarityPredicate],
    registry: MetricRegistry,
) -> list[int]:
    """Tuples close to ``index`` on every predictor predicate."""
    out = []
    for j in range(len(relation)):
        if j == index:
            continue
        if all(p.satisfied(relation, index, j, registry) for p in predicates):
            out.append(j)
    return out


def p_neighborhood_impute(
    relation: Relation,
    predictors: Mapping[str, float] | Sequence[SimilarityPredicate],
    target: str,
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> Relation:
    """Fill missing ``target`` values from P-neighbourhood majorities.

    For each tuple with a missing target, collect all tuples agreeing
    on the predictor closeness predicates and take the most frequent
    (categorical) or median (numerical) of their target values.  Tuples
    with no neighbours stay missing.
    """
    predicates = coerce_predicates(predictors)
    current = relation
    for i in range(len(relation)):
        if relation.value_at(i, target) is not None:
            continue
        neighbours = _neighbours(relation, i, predicates, registry)
        values = [
            relation.value_at(j, target)
            for j in neighbours
            if relation.value_at(j, target) is not None
        ]
        if not values:
            continue
        if all(isinstance(v, (int, float)) for v in values):
            ordered = sorted(values)
            fill = ordered[len(ordered) // 2]
        else:
            fill, __ = Counter(values).most_common(1)[0]
        current = current.with_value(i, target, fill)
    return current


def dd_impute(
    relation: Relation,
    rule: DD,
    target: str,
) -> Relation:
    """Fill missing ``target`` cells using a DD's compatible neighbours.

    Candidates for a missing cell are values of tuples compatible with
    the DD's LHS function; the filled value is the candidate compatible
    with the RHS range against the most neighbours (ties broken by
    frequency) — the "enriched candidates" idea of [95, 96].
    """
    if target not in rule.rhs.attributes():
        raise ValueError(
            f"target {target!r} is not constrained by the DD's RHS"
        )
    current = relation
    for i in range(len(relation)):
        if relation.value_at(i, target) is not None:
            continue
        neighbours = [
            j
            for j in range(len(relation))
            if j != i
            and relation.value_at(j, target) is not None
            and rule.lhs.compatible(relation, i, j, rule.registry)
        ]
        if not neighbours:
            continue
        metric = rule.registry.metric_for(relation.schema[target])
        interval = rule.rhs.ranges[target]
        best_value = None
        best_score = (-1, 0)
        counts = Counter(relation.value_at(j, target) for j in neighbours)
        for candidate, freq in counts.items():
            agree = sum(
                1
                for j in neighbours
                if interval.contains(
                    metric.distance(candidate, relation.value_at(j, target))
                )
            )
            score = (agree, freq)
            if score > best_score:
                best_score = score
                best_value = candidate
        if best_value is not None:
            current = current.with_value(i, target, best_value)
    return current


def afd_value_distribution(
    relation: Relation,
    lhs: Sequence[str],
    target: str,
    index: int,
) -> dict[object, float]:
    """QPIAD-style value distribution for a missing cell ([111], §2.3.4).

    The AFD ``lhs -> target`` almost holds; the distribution over the
    missing value is the empirical distribution of ``target`` within the
    tuple's equal-``lhs`` group (excluding missing values).  Empty when
    the group carries no evidence.
    """
    key = relation.values_at(index, lhs)
    counts: Counter = Counter()
    for j in range(len(relation)):
        if j == index:
            continue
        if relation.values_at(j, lhs) != key:
            continue
        v = relation.value_at(j, target)
        if v is not None:
            counts[v] += 1
    total = sum(counts.values())
    if total == 0:
        return {}
    return {v: c / total for v, c in counts.items()}


def afd_impute(
    relation: Relation,
    lhs: Sequence[str],
    target: str,
    min_confidence: float = 0.0,
) -> Relation:
    """Fill missing ``target`` cells with the AFD-group mode.

    Cells whose best candidate has probability below ``min_confidence``
    stay missing (QPIAD returns *ranked possible answers*; for a point
    imputation we gate on the mode's probability).
    """
    current = relation
    for i in range(len(relation)):
        if relation.value_at(i, target) is not None:
            continue
        dist = afd_value_distribution(relation, lhs, target, i)
        if not dist:
            continue
        value, prob = max(dist.items(), key=lambda kv: kv[1])
        if prob >= min_confidence:
            current = current.with_value(i, target, value)
    return current


def imputation_accuracy(
    imputed: Relation,
    truth: Relation,
    target: str,
    missing_indices: Sequence[int],
) -> float:
    """Fraction of originally missing cells now matching the truth."""
    if not missing_indices:
        return 1.0
    good = sum(
        1
        for i in missing_indices
        if imputed.value_at(i, target) == truth.value_at(i, target)
    )
    return good / len(missing_indices)
