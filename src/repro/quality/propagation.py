"""CFD propagation to views (Fan et al. [40], Section 2.5.4).

Given CFDs on a source relation, determine which constraints remain
valid on a *view* of that source — "useful for data integration, data
exchange and data cleaning".  Supported view shapes (the SPC fragment
without joins):

* **projection** ``π_V(r)`` — a CFD survives iff all its attributes
  are kept;
* **selection** ``σ_{A=c}(r)`` — every CFD survives (a subset of the
  tuples cannot introduce violations), and the selection condition can
  be *absorbed* into the pattern tuple, sometimes turning a variable
  CFD into a more informative conditional one;
* composition of both.

:func:`propagate_cfds` computes the cover of propagated CFDs;
:func:`check_propagation` verifies a propagation claim on data (the
view is materialized and the CFD checked), used by the tests as the
semantic oracle.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..core.categorical import CFD, Pattern
from ..core.categorical.pattern import PatternEntry, const
from ..relation.relation import Relation


def project_view(relation: Relation, attributes: Sequence[str]) -> Relation:
    """``π_V(r)`` with bag semantics (views keep duplicates here)."""
    return relation.project_bag(list(attributes))


def select_view(
    relation: Relation, condition: Mapping[str, object]
) -> Relation:
    """``σ_{A=c ∧ ...}(r)``."""
    return relation.select(
        lambda t: all(t.get(a) == v for a, v in condition.items())
    )


def propagate_to_projection(
    cfds: Sequence[CFD], view_attributes: Sequence[str]
) -> list[CFD]:
    """CFDs whose attributes survive the projection."""
    keep = set(view_attributes)
    return [
        dep for dep in cfds if set(dep.attributes()) <= keep
    ]


def propagate_to_selection(
    cfds: Sequence[CFD], condition: Mapping[str, object]
) -> list[CFD]:
    """CFDs rewritten for ``σ_condition``; None-compatible entries only.

    Every input CFD remains valid on the selection.  When the selection
    fixes an attribute of the CFD's LHS, the pattern cell is specialized
    to the selected constant — unless the cell already holds a
    *different* constant, in which case the CFD is vacuous on the view
    (no tuple matches) and is dropped from the propagated cover.
    """
    out: list[CFD] = []
    for dep in cfds:
        entries: dict[str, PatternEntry] = dep.pattern.entries()
        vacuous = False
        for a, v in condition.items():
            if a not in dep.lhs:
                continue
            current = dep.pattern.entry(a)
            if current.is_wildcard:
                entries[a] = const(v)
            elif current.is_constant and current.constant != v:
                vacuous = True
                break
            # equality with the same constant: unchanged
        if not vacuous:
            out.append(CFD(dep.lhs, dep.rhs, Pattern(entries)))
    return out


def propagate_cfds(
    cfds: Sequence[CFD],
    view_attributes: Sequence[str] | None = None,
    condition: Mapping[str, object] | None = None,
) -> list[CFD]:
    """Propagated CFD cover for ``π_V(σ_condition(r))``."""
    current = list(cfds)
    if condition:
        current = propagate_to_selection(current, condition)
    if view_attributes is not None:
        current = propagate_to_projection(current, view_attributes)
    return current


def check_propagation(
    relation: Relation,
    cfds: Sequence[CFD],
    view_attributes: Sequence[str] | None = None,
    condition: Mapping[str, object] | None = None,
) -> bool:
    """Semantic oracle: if the CFDs hold on ``r``, the propagated ones
    hold on the materialized view."""
    if not all(dep.holds(relation) for dep in cfds):
        return True  # premise fails; nothing to check
    view = relation
    if condition:
        view = select_view(view, condition)
    if view_attributes is not None:
        view = project_view(view, view_attributes)
    return all(
        dep.holds(view)
        for dep in propagate_cfds(cfds, view_attributes, condition)
    )
