"""Discovery algorithms for the dependency family (Table 2's column c).

Every entry point returns a :class:`~repro.discovery.common.DiscoveryResult`
(dependencies + search statistics).
"""

from .common import DiscoveryResult, DiscoveryStats
from .tane import brute_force_fds, tane
from .fastfd import difference_sets, fastfd
from .cords import ColumnPairAnalysis, chi_square_statistic, cords
from .pfd_discovery import (
    discover_pfds,
    discover_pfds_multisource,
    merged_probability,
)
from .cfd_discovery import (
    candidate_patterns,
    discover_constant_cfds,
    discover_ecfds,
    discover_general_cfds,
    greedy_tableau,
    pattern_confidence,
)
from .mvd_discovery import discover_mvds_bottomup, discover_mvds_topdown
from .mfd_verify import (
    discover_mfds,
    minimal_delta,
    verify_mfd,
    verify_mfd_approximate,
)
from .dd_discovery import (
    candidate_thresholds,
    discover_dds,
    pairwise_distances,
)
from .md_discovery import (
    concise_matching_keys,
    discover_mds,
    discover_mds_approximate,
)
from .od_discovery import discover_ods, discover_pairwise_ods
from .dc_discovery import (
    build_predicate_space,
    discover_constant_dcs,
    discover_dcs,
    discover_dcs_approximate,
    evidence_sets,
)
from .sd_discovery import (
    discover_csd_tableau,
    discover_sds,
    fit_gap_interval,
    sd_confidence,
)
from .nud_discovery import discover_nuds, minimal_weight
from .misc_discovery import (
    discover_amvds,
    discover_cds,
    discover_ffds,
    fit_pac,
)

__all__ = [
    "DiscoveryResult",
    "DiscoveryStats",
    "tane",
    "brute_force_fds",
    "fastfd",
    "difference_sets",
    "cords",
    "chi_square_statistic",
    "ColumnPairAnalysis",
    "discover_pfds",
    "discover_pfds_multisource",
    "merged_probability",
    "discover_constant_cfds",
    "discover_ecfds",
    "discover_general_cfds",
    "greedy_tableau",
    "candidate_patterns",
    "pattern_confidence",
    "discover_mvds_topdown",
    "discover_mvds_bottomup",
    "verify_mfd",
    "verify_mfd_approximate",
    "minimal_delta",
    "discover_mfds",
    "pairwise_distances",
    "candidate_thresholds",
    "discover_dds",
    "discover_mds",
    "discover_mds_approximate",
    "concise_matching_keys",
    "discover_pairwise_ods",
    "discover_ods",
    "build_predicate_space",
    "evidence_sets",
    "discover_dcs",
    "discover_dcs_approximate",
    "discover_constant_dcs",
    "sd_confidence",
    "discover_csd_tableau",
    "discover_sds",
    "fit_gap_interval",
    "discover_nuds",
    "minimal_weight",
    "discover_amvds",
    "fit_pac",
    "discover_ffds",
    "discover_cds",
]
