"""Discovery routines for the remaining Table 2 rows.

* :func:`discover_amvds` — approximate MVDs by spurious-join fraction
  (Kenig et al. [59] direction: mining approximate acyclic schemes);
* :func:`fit_pac` — PAC-Man-style parameter instantiation [63]: given
  a rule template (LHS/RHS attributes) and training data, choose the
  distance tolerances and report the achieved confidence;
* :func:`discover_ffds` — TANE-style FFD mining [109]: single-RHS FFDs
  under user-supplied resemblance relations, level-wise with
  minimality pruning;
* :func:`discover_cds` — pay-as-you-go CD discovery [92]: given the
  currently identified comparison functions, emit the CDs they
  support; calling it again with more functions extends the result
  incrementally (the dataspace setting).
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Mapping, Sequence

from ..core.heterogeneous import CD, PAC, SimilarityFunction
from ..core.heterogeneous.ffd import FFD
from ..metrics.fuzzy import Resemblance
from ..metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ..relation.relation import Relation
from .common import DiscoveryResult, DiscoveryStats
from .dd_discovery import candidate_thresholds, pairwise_distances
from .mvd_discovery import _candidate_rhs


def discover_amvds(
    relation: Relation,
    epsilon: float = 0.05,
    max_lhs_size: int | None = None,
) -> DiscoveryResult:
    """AMVDs whose spurious-join fraction is at most ``epsilon``.

    Minimality as for exact MVDs: an LHS is pruned when a subset
    already qualifies for the same (canonical) RHS.
    """
    from ..core.categorical import AMVD

    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    if max_lhs_size is None:
        max_lhs_size = max(len(names) - 2, 1)
    found: list[AMVD] = []
    done: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    for size in range(1, max_lhs_size + 1):
        stats.levels = size
        for lhs in combinations(names, size):
            for rhs in _candidate_rhs(names, lhs):
                covered = done.get(rhs, [])
                if any(set(c) <= set(lhs) for c in covered):
                    stats.candidates_pruned += 1
                    continue
                stats.candidates_checked += 1
                candidate = AMVD(lhs, rhs, epsilon)
                if candidate.measure(relation) <= epsilon:
                    found.append(candidate)
                    done.setdefault(rhs, []).append(lhs)
    return DiscoveryResult(
        dependencies=found, stats=stats,
        algorithm=f"AMVD(eps={epsilon})",
    )


def fit_pac(
    relation: Relation,
    lhs_attributes: Sequence[str],
    rhs_attributes: Sequence[str],
    target_confidence: float = 0.9,
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> tuple[PAC, float]:
    """Instantiate a PAC's tolerances from training data (PAC-Man [63]).

    Template: "if tuples are close on ``lhs_attributes`` then they are
    close on ``rhs_attributes`` with probability >= target".  LHS
    tolerances are set to the median observed pairwise distance (a
    meaningful closeness neighbourhood); the RHS tolerance is then the
    smallest grid candidate achieving the target confidence (falling
    back to the largest candidate).  Returns the PAC and its measured
    confidence — PAC-Man keeps monitoring that number over time.
    """
    lhs_tol: dict[str, float] = {}
    for a in lhs_attributes:
        dists = [
            d
            for d in pairwise_distances(relation, a, registry)
            if d != float("inf")
        ]
        lhs_tol[a] = dists[len(dists) // 2] if dists else 0.0

    rhs_grids = {
        a: candidate_thresholds(pairwise_distances(relation, a, registry))
        for a in rhs_attributes
    }
    # Tightest-first joint sweep over per-attribute grid positions.
    max_len = max(len(g) for g in rhs_grids.values())
    chosen: dict[str, float] = {}
    pac = None
    confidence = 0.0
    for level in range(max_len):
        chosen = {
            a: g[min(level, len(g) - 1)] for a, g in rhs_grids.items()
        }
        pac = PAC(lhs_tol, chosen, target_confidence, registry=registry)
        confidence = pac.measure(relation)
        if confidence >= target_confidence:
            break
    assert pac is not None
    return pac, confidence


def discover_ffds(
    relation: Relation,
    resemblances: Mapping[str, Resemblance],
    max_lhs_size: int = 2,
) -> DiscoveryResult:
    """Level-wise FFD mining under given resemblance relations [109].

    Emits minimal single-RHS FFDs (crisp equality for attributes not in
    ``resemblances``): an LHS is pruned when a subset already yields a
    holding FFD for the same RHS — adding LHS attributes can only lower
    ``mu_EQ(X)`` and therefore weaken the constraint.
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    found: list[FFD] = []
    done: dict[str, list[tuple[str, ...]]] = {a: [] for a in names}
    for size in range(1, max_lhs_size + 1):
        stats.levels = size
        for lhs in combinations(names, size):
            for a in names:
                if a in lhs:
                    continue
                if any(set(q) <= set(lhs) for q in done[a]):
                    stats.candidates_pruned += 1
                    continue
                stats.candidates_checked += 1
                cand = FFD(lhs, (a,), dict(resemblances))
                if cand.holds(relation):
                    found.append(cand)
                    done[a].append(lhs)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="FFD-mine"
    )


def discover_cds(
    relation: Relation,
    functions: Sequence[SimilarityFunction],
    min_confidence: float = 1.0,
    existing: Sequence[CD] = (),
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> DiscoveryResult:
    """Pay-as-you-go CD discovery over identified comparison functions.

    Single-LHS CDs ``θ_i -> θ_j`` whose confidence clears the
    threshold.  ``existing`` carries CDs from earlier increments; they
    are kept and not re-derived, so each call only pays for the newly
    identified functions — the incremental regime of [92].
    """
    stats = DiscoveryStats()
    known = {
        (id_lhs, id_rhs)
        for cd in existing
        for id_lhs in [tuple((f.attr_i, f.attr_j) for f in cd.lhs)]
        for id_rhs in [(cd.rhs.attr_i, cd.rhs.attr_j)]
    }
    found: list[CD] = list(existing)
    for lhs_fn in functions:
        for rhs_fn in functions:
            if lhs_fn is rhs_fn:
                continue
            key = (
                ((lhs_fn.attr_i, lhs_fn.attr_j),),
                (rhs_fn.attr_i, rhs_fn.attr_j),
            )
            if key in known:
                stats.candidates_pruned += 1
                continue
            stats.candidates_checked += 1
            cand = CD([lhs_fn], rhs_fn, registry=registry)
            if cand.confidence(relation) >= min_confidence:
                found.append(cand)
                known.add(key)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="CD-payg"
    )
