"""SD confidence and CSD tableau discovery (Golab et al. [48]).

Two pieces, matching Section 4.4:

* :func:`sd_confidence` — an SD's confidence relates to the minimum
  edits (deletions/insertions) to make it hold; computed via the
  longest valid run (O(n²) DP, delegated to :meth:`SD.confidence`).
* :func:`discover_csd_tableau` — the polynomial-time CSD tableau
  construction: among candidate intervals of the ordered attribute,
  pick a set of disjoint intervals maximizing covered tuples subject to
  each interval's confidence clearing a threshold — exact dynamic
  programming, quadratic in the number of candidate intervals.  This is
  the family tree's *tractable* discovery problem (Fig. 3), in contrast
  to the NP-complete CFD-family tableau generation.
* :func:`discover_sds` — fit minimal gap intervals for attribute pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.heterogeneous.constraints import Interval
from ..core.numerical import CSD, SD
from ..relation.relation import Relation
from .common import DiscoveryResult, DiscoveryStats


def sd_confidence(relation: Relation, sd: SD) -> float:
    """Confidence of an SD on a relation (longest-valid-run based)."""
    return sd.confidence(relation)


@dataclass
class IntervalCandidate:
    """A candidate tableau interval with its statistics."""

    interval: Interval
    tuple_count: int
    confidence: float


def candidate_intervals(
    relation: Relation, sd: SD, min_width: int = 2
) -> list[IntervalCandidate]:
    """All contiguous runs of the X-order as candidate intervals.

    Candidates are [x_a, x_b] spans between observed X-values with at
    least ``min_width`` tuples, evaluated for SD confidence inside.
    """
    order = sd.sorted_indices(relation)
    xs = [float(relation.values_at(i, sd.lhs)[0]) for i in order]
    out: list[IntervalCandidate] = []
    n = len(order)
    for a in range(n):
        for b in range(a + min_width - 1, n):
            iv = Interval(xs[a], xs[b])
            sub = relation.take(order[a: b + 1])
            out.append(
                IntervalCandidate(iv, b - a + 1, sd.confidence(sub))
            )
    return out


def discover_csd_tableau(
    relation: Relation,
    sd: SD,
    min_confidence: float = 1.0,
    min_width: int = 2,
) -> CSD | None:
    """Exact DP tableau construction for a CSD (quadratic time).

    Let the tuples be sorted on X.  ``best[k]`` = maximum tuples
    covered by disjoint good intervals ending at or before position k.
    For each position the DP either skips the tuple or ends a good
    interval there — quadratic in the candidate intervals, exactly the
    complexity the paper quotes.  Returns None when no interval
    qualifies.
    """
    if len(sd.lhs) != 1:
        raise ValueError("CSD tableau needs a single ordered attribute")
    order = sd.sorted_indices(relation)
    n = len(order)
    if n == 0:
        return None
    xs = [float(relation.values_at(i, sd.lhs)[0]) for i in order]

    # good[a][b]: does the SD hold (confidence >= threshold) on span a..b?
    conf: dict[tuple[int, int], float] = {}
    for a in range(n):
        for b in range(a + min_width - 1, n):
            sub = relation.take(order[a: b + 1])
            conf[(a, b)] = sd.confidence(sub)

    best = [0] * (n + 1)  # best[k]: coverage using positions < k
    choice: list[tuple[int, int] | None] = [None] * (n + 1)
    for k in range(1, n + 1):
        best[k] = best[k - 1]
        choice[k] = None
        for a in range(0, k - min_width + 1):
            b = k - 1
            c = conf.get((a, b))
            if c is not None and c >= min_confidence:
                cover = best[a] + (b - a + 1)
                if cover > best[k]:
                    best[k] = cover
                    choice[k] = (a, b)
    # Reconstruct chosen intervals.
    intervals: list[Interval] = []
    k = n
    while k > 0:
        if choice[k] is None:
            k -= 1
        else:
            a, b = choice[k]
            intervals.append(Interval(xs[a], xs[b]))
            k = a
    intervals.reverse()
    if not intervals:
        return None
    return CSD(sd.lhs[0], sd.rhs, sd.gap, intervals)


def fit_gap_interval(
    relation: Relation, lhs: str, rhs: str, slack: float = 0.0
) -> Interval:
    """The tightest gap interval making ``lhs ->_g rhs`` hold.

    ``slack`` widens both ends (fractional, relative to the span) to
    avoid overfitting the exact extremes.
    """
    probe = SD(lhs, rhs, (None, None))
    gaps = [g for __, __, g in probe.consecutive_gaps(relation)]
    if not gaps:
        return Interval(-math.inf, math.inf)
    low, high = min(gaps), max(gaps)
    pad = (high - low) * slack
    return Interval(low - pad, high + pad)


def discover_sds(
    relation: Relation,
    max_relative_span: float = 0.5,
    min_confidence: float = 1.0,
) -> DiscoveryResult:
    """Find SDs with *informative* (narrow) gap intervals.

    An SD whose fitted gap spans less than ``max_relative_span`` of the
    dependent attribute's total range is considered informative ("the
    subtotal raises within [100, 200]"-style); wider fits are noise.
    """
    stats = DiscoveryStats()
    names = sorted(
        a.name for a in relation.schema.numerical_attributes()
    )
    found: list[SD] = []
    for lhs in names:
        for rhs in names:
            if lhs == rhs:
                continue
            stats.candidates_checked += 1
            gap = fit_gap_interval(relation, lhs, rhs)
            col = [
                float(v) for v in relation.column(rhs) if v is not None
            ]
            if not col or gap.high == math.inf or gap.low == -math.inf:
                stats.candidates_pruned += 1
                continue
            value_span = max(col) - min(col)
            if value_span <= 0:
                stats.candidates_pruned += 1
                continue
            if (gap.high - gap.low) / value_span > max_relative_span:
                stats.candidates_pruned += 1
                continue
            sd = SD(lhs, rhs, gap)
            if sd.confidence(relation) >= min_confidence:
                found.append(sd)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="SD-fit"
    )
