"""MVD discovery — hypothesis-space search (Savnik & Flach [82]).

The hypothesis space for MVDs ``X ->> Y`` is ordered by generalization:
smaller ``X`` is more general.  The **top-down** strategy searches from
the most general hypotheses toward more specific ones, keeping the
*positive border* of valid MVDs; the **bottom-up** strategy first
collects invalid MVDs (the negative border) from violating evidence and
then emits the most general dependencies not above any invalid one.

Both return minimal valid MVDs: no discovered MVD has another
discovered (or valid) MVD with a subset LHS and the same RHS partition.
"""

from __future__ import annotations

from itertools import combinations

from ..core.categorical import MVD
from ..relation.relation import Relation
from ..runtime.budget import (
    Budget,
    checkpoint,
    governed,
    resolve_budget,
    verify_on_sample,
)
from ..runtime.errors import BudgetExhausted
from .common import DiscoveryResult, DiscoveryStats


def _candidate_rhs(names: list[str], lhs: tuple[str, ...]) -> list[tuple[str, ...]]:
    """Non-trivial RHS choices for a given LHS: proper, non-empty,
    non-complement subsets of the remaining attributes.

    ``X ->> Y`` and ``X ->> Z`` (complementation rule) are equivalent;
    we canonicalize by keeping the lexicographically smaller side.
    """
    rest = [a for a in names if a not in lhs]
    out: list[tuple[str, ...]] = []
    for size in range(1, len(rest)):
        for y in combinations(rest, size):
            z = tuple(a for a in rest if a not in y)
            if y <= z:  # canonical representative of the {Y, Z} pair
                out.append(y)
    return out


def discover_mvds_topdown(
    relation: Relation,
    max_lhs_size: int | None = None,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Top-down search for the positive border of valid MVDs.

    Starts from the most general hypotheses (smallest LHS) and only
    specializes hypotheses that failed; a valid MVD stops its branch
    (any superset-LHS version is implied by augmentation and thus not
    minimal).

    On ``budget`` exhaustion the in-flight level's unchecked
    hypotheses are admitted via sampled verification
    (``stats.sampled_verified``) and the result is flagged partial.
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    if max_lhs_size is None:
        max_lhs_size = max(len(names) - 2, 1)
    found: list[MVD] = []
    valid_lhs_per_rhs: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for size in range(1, max_lhs_size + 1):
                stats.levels = size
                level = list(combinations(names, size))
                for pos, lhs in enumerate(level):
                    try:
                        for rhs in _candidate_rhs(names, lhs):
                            done = valid_lhs_per_rhs.get(rhs, [])
                            if any(set(v) <= set(lhs) for v in done):
                                stats.candidates_pruned += 1
                                continue
                            stats.candidates_checked += 1
                            checkpoint(candidates=1)
                            mvd = MVD(lhs, rhs)
                            if mvd.holds(relation):
                                found.append(mvd)
                                valid_lhs_per_rhs.setdefault(
                                    rhs, []
                                ).append(lhs)
                    except BudgetExhausted:
                        pending = [
                            MVD(p_lhs, p_rhs)
                            for p_lhs in level[pos:]
                            for p_rhs in _candidate_rhs(names, p_lhs)
                        ]
                        admitted = verify_on_sample(relation, pending)
                        found.extend(admitted)
                        stats.sampled_verified += len(admitted)
                        raise
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="MVD-topdown"
    )


def discover_mvds_bottomup(
    relation: Relation,
    max_lhs_size: int | None = None,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Bottom-up: elicit the negative border first, then emit minimal
    valid MVDs not subsumed by an invalid hypothesis's generalizations.

    The negative border is built by testing hypotheses from specific to
    general; an invalid MVD at LHS ``X`` invalidates nothing above it
    (supersets may still be valid), so the border bounds the space the
    final sweep must verify — fewer full verifications on relations
    where most general hypotheses fail.
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    if max_lhs_size is None:
        max_lhs_size = max(len(names) - 2, 1)
    invalid: set[tuple[tuple[str, ...], tuple[str, ...]]] = set()
    found: list[MVD] = []
    valid_lhs_per_rhs: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            # Pass 1: negative border, most specific (largest LHS) first.
            for size in range(max_lhs_size, 0, -1):
                for lhs in combinations(names, size):
                    for rhs in _candidate_rhs(names, lhs):
                        stats.candidates_checked += 1
                        checkpoint(candidates=1)
                        if not MVD(lhs, rhs).holds(relation):
                            invalid.add((lhs, rhs))
            # Pass 2: emit minimal valid hypotheses (not in the invalid
            # set and with no valid subset-LHS for the same RHS already
            # emitted).
            for size in range(1, max_lhs_size + 1):
                stats.levels = size
                for lhs in combinations(names, size):
                    for rhs in _candidate_rhs(names, lhs):
                        if (lhs, rhs) in invalid:
                            continue
                        done = valid_lhs_per_rhs.get(rhs, [])
                        if any(set(v) <= set(lhs) for v in done):
                            stats.candidates_pruned += 1
                            continue
                        found.append(MVD(lhs, rhs))
                        valid_lhs_per_rhs.setdefault(rhs, []).append(lhs)
        except BudgetExhausted as exc:
            # Exhaustion in pass 1 leaves the negative border
            # incomplete: pass 2 would emit unverified hypotheses, so
            # degrade to sampled verification of the most general
            # (size-1) hypotheses instead of guessing.
            stats.mark_exhausted(exc.reason)
            if not found:
                pending = [
                    MVD(lhs, rhs)
                    for lhs in combinations(names, 1)
                    for rhs in _candidate_rhs(names, lhs)
                ]
                admitted = verify_on_sample(relation, pending)
                found.extend(admitted)
                stats.sampled_verified += len(admitted)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="MVD-bottomup"
    )
