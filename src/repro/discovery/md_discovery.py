"""MD discovery — support/confidence threshold search (Song & Chen).

[85, 87]: an MD is *useful* when its LHS similarity predicate has
enough **support** (it fires on enough pairs) and **confidence** (the
pairs it fires on are largely already identified on the RHS).  The
exact algorithm sweeps candidate thresholds from the observed distance
distribution; the approximation processes only the first k tuples and
inherits statistical error bounds on support/confidence.

Also here: the concise matching-key selection of [90] — greedily pick
a small set of relative candidate keys covering the matching pairs.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Sequence

from ..core.heterogeneous import MD, SimilarityPredicate
from ..metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ..plan import plan_enabled
from ..relation.relation import Relation
from ..runtime.budget import Budget, checkpoint, governed, resolve_budget
from ..runtime.errors import BudgetExhausted
from .common import DiscoveryResult, DiscoveryStats, match_evidence
from .dd_discovery import candidate_thresholds, pairwise_distances


def discover_mds(
    relation: Relation,
    rhs: str,
    lhs_attributes: Sequence[str] | None = None,
    min_support: float = 0.01,
    min_confidence: float = 0.8,
    max_lhs_attrs: int = 2,
    registry: MetricRegistry = DEFAULT_REGISTRY,
    seed: int = 0,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Exact MD discovery for a fixed identification target ``rhs``.

    Sweeps threshold grids per LHS attribute (from the pairwise
    distance distribution) and keeps the *tightest* thresholds per
    attribute set meeting both support and confidence — tighter LHS
    thresholds fire on fewer, more-similar pairs, so they are the
    conservative matching rules of record-matching practice.

    ``seed`` feeds the pairwise-distance sampling; on ``budget``
    exhaustion the MDs found so far come back with
    ``stats.complete = False``.
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    pool = sorted(lhs_attributes) if lhs_attributes else [
        a for a in names if a != rhs
    ]
    found: list[MD] = []
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            grids = {
                a: candidate_thresholds(
                    pairwise_distances(relation, a, registry, seed=seed)
                )
                for a in pool
            }
            _md_threshold_sweep(
                relation, rhs, pool, grids, min_support, min_confidence,
                max_lhs_attrs, registry, found, stats,
            )
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="MD-exact"
    )


def _md_threshold_sweep(
    relation: Relation,
    rhs: str,
    pool: list[str],
    grids: dict[str, list[float]],
    min_support: float,
    min_confidence: float,
    max_lhs_attrs: int,
    registry: MetricRegistry,
    found: list[MD],
    stats: DiscoveryStats,
) -> None:
    n_pairs = len(relation) * (len(relation) - 1) // 2
    for size in range(1, max_lhs_attrs + 1):
        stats.levels = size
        for attrs in combinations(pool, size):
            best: MD | None = None
            # Tightest-first per attribute: iterate the grid products in
            # ascending threshold order (small thresholds first).
            def search(idx: int, chosen: dict[str, float]) -> MD | None:
                nonlocal best
                if idx == len(attrs):
                    stats.candidates_checked += 1
                    if plan_enabled():
                        # Kernels charge examined pairs inside
                        # support/confidence themselves.
                        checkpoint(candidates=1)
                    else:
                        checkpoint(candidates=1, pairs=n_pairs)
                    cand = MD(
                        [
                            SimilarityPredicate(a, t)
                            for a, t in chosen.items()
                        ],
                        rhs,
                        registry=registry,
                    )
                    if (
                        cand.support(relation) >= min_support
                        and cand.confidence(relation) >= min_confidence
                    ):
                        return cand
                    return None
                for t in grids[attrs[idx]]:
                    chosen[attrs[idx]] = t
                    hit = search(idx + 1, chosen)
                    del chosen[attrs[idx]]
                    if hit is not None:
                        return hit
                return None

            best = search(0, {})
            if best is not None:
                found.append(best)
            else:
                stats.candidates_pruned += 1


def discover_mds_approximate(
    relation: Relation,
    rhs: str,
    k: int = 100,
    **kwargs,
) -> DiscoveryResult:
    """Approximate MD discovery over the first ``k`` tuples [85].

    Statistical-distribution traversal: support/confidence measured on
    the prefix estimate the full-data values with bounded relative
    error; the returned MDs carry thresholds fitted on the prefix.
    """
    prefix = relation.take(list(range(min(k, len(relation)))))
    result = discover_mds(prefix, rhs, **kwargs)
    result.algorithm = f"MD-approx(k={k})"
    return result


def concise_matching_keys(
    relation: Relation,
    candidates: Sequence[MD],
    target_pairs: Sequence[tuple[int, int]],
    max_keys: int | None = None,
) -> list[MD]:
    """Greedy concise key set: cover the target pairs with few MDs [90].

    Deciding whether ``k`` keys suffice is NP-complete; the greedy
    set-cover heuristic picks, each round, the candidate covering the
    most still-uncovered target pairs.
    """
    uncovered = set(target_pairs)
    chosen: list[MD] = []
    remaining = list(candidates)
    # Each candidate's match set is collected once through its guard
    # plan; greedy rounds then intersect sets instead of re-running the
    # similarity metric per (candidate, pair).
    match_sets = {
        id(md): match_evidence(md, relation) for md in remaining
    }
    while uncovered and remaining and (
        max_keys is None or len(chosen) < max_keys
    ):
        best = None
        best_cover: set[tuple[int, int]] = set()
        for md in remaining:
            # Match sets hold i < j pairs; accept either orientation in
            # the caller-supplied targets (similarity is symmetric).
            cover = {
                p
                for p in uncovered
                if (min(p), max(p)) in match_sets[id(md)]
            }
            if len(cover) > len(best_cover):
                best, best_cover = md, cover
        if best is None or not best_cover:
            break
        chosen.append(best)
        remaining.remove(best)
        uncovered -= best_cover
    return chosen
