"""TANE — level-wise FD and AFD discovery via stripped partitions.

Huhtala et al. [53, 54]: traverse the attribute-set lattice level by
level; for each set ``X`` maintain the stripped partition ``π_X`` and a
candidate-RHS set ``C+(X)``; an FD ``X \\ {A} -> A`` is valid iff the
partition error of ``X \\ {A}`` equals that of ``X`` (equivalently,
equal ranks).  Valid FDs prune the candidate sets; key-sized sets prune
whole branches after emitting their minimal key FDs.

The same traversal discovers AFDs by swapping the validity test for
``g3(X -> A) <= epsilon`` (Section 2.3.3), computed from the same
partitions.

The level structure follows the published pseudocode:

1. ``COMPUTE-DEPENDENCIES(L_l)`` — derive ``C+`` from the previous
   level, test/emit FDs, shrink ``C+``;
2. ``PRUNE(L_l)`` — drop empty-``C+`` sets, and for (super)keys emit
   the remaining minimal FDs and drop the branch;
3. ``GENERATE-NEXT-LEVEL`` — apriori join of the survivors.

Output: all minimal non-trivial FDs with a single RHS attribute
(verified against :func:`brute_force_fds` in the property tests).
"""

from __future__ import annotations

from ..core.categorical import AFD, FD
from ..relation.partition import StrippedPartition
from ..relation.partition_cache import cache_for
from ..relation.relation import Relation
from ..runtime.budget import (
    Budget,
    checkpoint,
    governed,
    resolve_budget,
    verify_on_sample,
)
from ..runtime.errors import BudgetExhausted, EngineFault, ReproError
from .common import DiscoveryResult, DiscoveryStats, generate_next_level


def tane(
    relation: Relation,
    max_lhs_size: int | None = None,
    epsilon: float = 0.0,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Discover minimal FDs (``epsilon = 0``) or AFDs (``epsilon > 0``).

    ``max_lhs_size`` bounds the LHS attribute count (default: no bound
    below ``|R| - 1``).  Returns FD instances for exact discovery, AFD
    instances (threshold ``epsilon``) otherwise.

    ``budget`` (or an ambient :func:`~repro.runtime.budget.governed`
    budget) bounds the traversal: on exhaustion the FDs found so far
    are returned with ``stats.complete = False``, and the candidates of
    the in-flight level are admitted via sampled verification instead
    of being dropped mid-lattice.
    """
    names = sorted(relation.schema.names())
    stats = DiscoveryStats()
    if max_lhs_size is None:
        max_lhs_size = max(len(names) - 1, 1)

    # Partitions come from the relation-level shared cache, so a second
    # TANE pass (e.g. the profiler's exact-then-approximate runs), CFD
    # discovery, or the repair engines reuse everything built here.
    cache = cache_for(relation)
    misses_before = cache.stats.misses
    hits_before = cache.stats.hits

    def partition_for(combo: tuple[str, ...]) -> StrippedPartition:
        """π_combo via the shared cache; substrate faults become typed."""
        try:
            return cache.partition(combo)
        except ReproError:
            raise
        except Exception as exc:
            raise EngineFault(
                f"partition substrate failed for {combo!r}: {exc}",
                site="partition",
            ) from exc

    n = len(relation)
    found: list = []
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for a in names:
                checkpoint()
                partition_for((a,))
            _tane_traverse(
                relation, names, max_lhs_size, epsilon, partition_for,
                found, stats, n,
            )
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)

    stats.partitions_built += cache.stats.misses - misses_before
    stats.partition_cache_hits += cache.stats.hits - hits_before
    return DiscoveryResult(
        dependencies=found,
        stats=stats,
        algorithm=f"TANE(epsilon={epsilon})",
    )


def _tane_traverse(
    relation: Relation,
    names: list[str],
    max_lhs_size: int,
    epsilon: float,
    partition_for,
    found: list,
    stats: DiscoveryStats,
    n: int,
) -> None:
    """The level-wise traversal; mutates ``found``/``stats`` in place.

    Raises :class:`BudgetExhausted` out of a checkpoint when the budget
    runs dry — after first salvaging the current level's unchecked
    candidates via sampled verification, so a deadline degrades to a
    FASTDC-style sampled answer instead of discarding enumerated work.
    """
    cplus: dict[tuple[str, ...], set[str]] = {(): set(names)}
    level: list[tuple[str, ...]] = [(a,) for a in names]
    level_num = 1

    while level and level_num <= max_lhs_size + 1:
        stats.levels = level_num

        # -- COMPUTE-DEPENDENCIES ------------------------------------
        for combo in level:
            candidates = set(names)
            for drop in range(len(combo)):
                sub = combo[:drop] + combo[drop + 1:]
                candidates &= cplus.get(sub, set())
            cplus[combo] = candidates

        for pos, combo in enumerate(level):
            try:
                checkpoint()
                pi_x = partition_for(combo)
                for a in sorted(cplus[combo] & set(combo)):
                    lhs = tuple(x for x in combo if x != a)
                    if not lhs:
                        continue
                    stats.candidates_checked += 1
                    checkpoint(candidates=1)
                    pi_lhs = partition_for(lhs)
                    if epsilon == 0.0:
                        valid = pi_lhs.rank == pi_x.rank
                    else:
                        valid = pi_lhs.g3_error(pi_x) <= epsilon
                    if valid:
                        if epsilon == 0.0:
                            found.append(FD(lhs, (a,)))
                        else:
                            found.append(AFD(lhs, (a,), max_error=epsilon))
                        cplus[combo].discard(a)
                        if epsilon == 0.0:
                            for b in set(names) - set(combo):
                                cplus[combo].discard(b)
            except BudgetExhausted:
                _salvage_level(
                    relation, level[pos:], cplus, epsilon, found, stats
                )
                raise

        # -- PRUNE ------------------------------------------------------
        survivors: list[tuple[str, ...]] = []
        for combo in level:
            checkpoint()
            if not cplus[combo]:
                stats.candidates_pruned += 1
                continue
            if epsilon == 0.0 and partition_for(combo).rank == n:
                # X is a (super)key: emit remaining minimal FDs X -> A.
                # Minimality is tested directly on the partitions (is
                # any immediate subset already a determinant of A?) —
                # the C+-based shortcut of the published pseudocode is
                # ambiguous once pruned neighbours left the lattice.
                for a in sorted(cplus[combo] - set(combo)):
                    minimal = True
                    for b in combo:
                        sub = tuple(x for x in combo if x != b)
                        if not sub:
                            continue
                        stats.candidates_checked += 1
                        checkpoint(candidates=1)
                        pi_sub = partition_for(sub)
                        pi_sub_a = partition_for(
                            tuple(sorted(set(sub) | {a}))
                        )
                        if pi_sub.rank == pi_sub_a.rank:
                            minimal = False
                            break
                    if minimal:
                        found.append(FD(combo, (a,)))
                stats.candidates_pruned += 1
                continue
            survivors.append(combo)

        # -- GENERATE-NEXT-LEVEL ----------------------------------------
        level = generate_next_level(survivors)
        level_num += 1


def _salvage_level(
    relation: Relation,
    remaining: list[tuple[str, ...]],
    cplus: dict[tuple[str, ...], set[str]],
    epsilon: float,
    found: list,
    stats: DiscoveryStats,
) -> None:
    """Sampled verification of the level's unchecked candidates.

    Bounded (candidate and row caps inside
    :func:`~repro.runtime.budget.verify_on_sample`) so the overrun past
    a blown deadline stays small; admitted dependencies are counted in
    ``stats.sampled_verified`` and the result stays ``complete=False``.
    """
    already = {str(d) for d in found}
    pending = []
    for combo in remaining:
        for a in sorted(cplus.get(combo, set()) & set(combo)):
            lhs = tuple(x for x in combo if x != a)
            if not lhs:
                continue
            dep = (
                FD(lhs, (a,)) if epsilon == 0.0
                else AFD(lhs, (a,), max_error=epsilon)
            )
            if str(dep) not in already:
                pending.append(dep)
    admitted = verify_on_sample(relation, pending)
    found.extend(admitted)
    stats.sampled_verified += len(admitted)


def brute_force_fds(
    relation: Relation, max_lhs_size: int | None = None
) -> list[FD]:
    """All minimal non-trivial FDs by exhaustive checking (test oracle)."""
    import itertools

    names = sorted(relation.schema.names())
    if max_lhs_size is None:
        max_lhs_size = len(names) - 1
    found: list[FD] = []
    for a in names:
        others = [x for x in names if x != a]
        minimal: list[tuple[str, ...]] = []
        for size in range(1, max_lhs_size + 1):
            for lhs in itertools.combinations(others, size):
                if any(set(m) <= set(lhs) for m in minimal):
                    continue
                if FD(lhs, (a,)).holds(relation):
                    minimal.append(lhs)
                    found.append(FD(lhs, (a,)))
    return found
