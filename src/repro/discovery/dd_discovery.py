"""DD discovery — minimal DDs with data-driven distance thresholds.

Song & Chen [86] note that even the minimal DDs can be exponentially
many; practical discovery restricts the differential-function space
and prunes by subsumption.  This module implements:

* :func:`candidate_thresholds` — the parameter-free determination of
  distance thresholds [88, 89]: candidate bounds are taken from the
  observed pairwise distance distribution (quantile knee points),
  instead of being user-supplied;
* :func:`discover_dds` — search over similar-range differential
  functions on LHS/RHS attribute pairs, keeping DDs that hold with the
  tightest RHS range and the loosest LHS range (minimality in the DD
  sense), with subsumption pruning.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Sequence

from ..core.heterogeneous import DD, DifferentialFunction, Interval
from ..metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ..plan import plan_enabled
from ..relation.relation import Relation
from ..runtime.budget import Budget, checkpoint, governed, resolve_budget
from ..runtime.errors import BudgetExhausted, EngineFault, ReproError
from .common import DiscoveryResult, DiscoveryStats


def _guarded_distance(metric, a, b, attribute: str) -> float:
    """One metric evaluation with fault conversion and sanity checks.

    The metric boundary is where injected (or genuine) faults surface:
    an unexpected exception or a corrupted result (negative, NaN) must
    become a typed :class:`EngineFault`, never a silently poisoned
    threshold grid.
    """
    try:
        d = metric.distance(a, b)
    except ReproError:
        raise
    except Exception as exc:
        raise EngineFault(
            f"metric {metric.name!r} failed on attribute "
            f"{attribute!r}: {exc}",
            site="metric",
        ) from exc
    if not isinstance(d, (int, float)) or d != d or d < 0:
        raise EngineFault(
            f"metric {metric.name!r} returned corrupted distance {d!r} "
            f"on attribute {attribute!r}",
            site="metric",
        )
    return d


def pairwise_distances(
    relation: Relation,
    attribute: str,
    registry: MetricRegistry = DEFAULT_REGISTRY,
    max_pairs: int = 20000,
    seed: int = 0,
) -> list[float]:
    """Sorted pairwise distances on one attribute (sampled past a cap).

    ``seed`` drives the pair sampling past ``max_pairs`` (matching the
    ``seed=`` convention of :mod:`repro.discovery.cords`), so callers
    can vary or pin the sampled distance distribution.
    """
    metric = registry.metric_for(relation.schema[attribute])
    col = relation.column(attribute)
    n = len(col)
    out: list[float] = []
    total = n * (n - 1) // 2
    if total <= max_pairs:
        for i in range(n):
            checkpoint(pairs=n - 1 - i)
            for j in range(i + 1, n):
                out.append(_guarded_distance(metric, col[i], col[j],
                                             attribute))
    else:
        import random

        rng = random.Random(seed)
        for k in range(max_pairs):
            if k % 256 == 0:
                checkpoint(pairs=min(256, max_pairs - k))
            i = rng.randrange(n)
            j = rng.randrange(n)
            if i != j:
                out.append(_guarded_distance(metric, col[i], col[j],
                                             attribute))
    out.sort()
    return out


def candidate_thresholds(
    distances: Sequence[float], max_candidates: int = 4
) -> list[float]:
    """Data-driven threshold candidates from a distance distribution.

    Quantile-based determination in the spirit of [88]: thresholds are
    placed at evenly spaced quantiles of the distinct finite observed
    distances, biased toward the similar (small-distance) end where
    differential functions are useful.
    """
    finite = sorted({d for d in distances if d != float("inf")})
    if not finite:
        return [0.0]
    if len(finite) <= max_candidates:
        return finite
    # Quantiles of the *distinct* distances: 25%, 50%, ... of the range.
    out: list[float] = []
    for k in range(1, max_candidates + 1):
        idx = int(len(finite) * k / (max_candidates + 1))
        out.append(finite[min(idx, len(finite) - 1)])
    return sorted(set(out))


def discover_dds(
    relation: Relation,
    lhs_attributes: Sequence[str] | None = None,
    rhs_attributes: Sequence[str] | None = None,
    registry: MetricRegistry = DEFAULT_REGISTRY,
    max_lhs_attrs: int = 2,
    seed: int = 0,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Discover minimal similar-range DDs with data-driven thresholds.

    For each (LHS attrs, RHS attr) combination, pick the loosest LHS
    thresholds and the tightest RHS threshold such that the DD holds —
    both from the candidate grids — then prune subsumed results.

    ``seed`` feeds the pairwise-distance sampling; ``budget`` bounds
    the grid search, returning the (subsumption-pruned) DDs found so
    far on exhaustion with ``stats.complete = False``.
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    lhs_pool = sorted(lhs_attributes) if lhs_attributes else names
    rhs_pool = sorted(rhs_attributes) if rhs_attributes else names
    found: list[DD] = []
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            grids = {
                a: candidate_thresholds(
                    pairwise_distances(relation, a, registry, seed=seed)
                )
                for a in set(lhs_pool) | set(rhs_pool)
            }
            _dd_grid_search(
                relation, lhs_pool, rhs_pool, grids, registry,
                max_lhs_attrs, found, stats,
            )
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    # Subsumption pruning: drop any DD implied by another found DD.
    minimal: list[DD] = []
    for d in found:
        if not any(o is not d and o.subsumes(d) for o in found):
            minimal.append(d)
    stats.candidates_pruned += len(found) - len(minimal)
    return DiscoveryResult(
        dependencies=minimal, stats=stats, algorithm="DD-discovery"
    )


def _dd_grid_search(
    relation: Relation,
    lhs_pool: list[str],
    rhs_pool: list[str],
    grids: dict[str, list[float]],
    registry: MetricRegistry,
    max_lhs_attrs: int,
    found: list[DD],
    stats: DiscoveryStats,
) -> None:
    from itertools import product

    for size in range(1, max_lhs_attrs + 1):
        stats.levels = size
        for lhs in combinations(lhs_pool, size):
            for rhs in rhs_pool:
                if rhs in lhs:
                    continue
                # Search the LHS threshold-grid product loosest-first
                # (larger thresholds = wider applicability), and for
                # each LHS the RHS grid tightest-first; keep the first
                # hit — the widest-applicability, tightest-consequence
                # DD for this attribute combination.
                lhs_grids = [
                    sorted(grids[a], reverse=True) for a in lhs
                ]
                best: DD | None = None
                for lhs_ts in product(*lhs_grids):
                    lhs_fn = DifferentialFunction(
                        {
                            a: Interval.at_most(t)
                            for a, t in zip(lhs, lhs_ts, strict=True)
                        }
                    )
                    for rhs_t in grids[rhs]:
                        stats.candidates_checked += 1
                        if plan_enabled():
                            # The plan kernels charge the pairs they
                            # actually examine inside ``holds``.
                            checkpoint(candidates=1)
                        else:
                            checkpoint(
                                candidates=1,
                                pairs=len(relation)
                                * (len(relation) - 1)
                                // 2,
                            )
                        cand = DD(
                            lhs_fn,
                            DifferentialFunction(
                                {rhs: Interval.at_most(rhs_t)}
                            ),
                            registry=registry,
                        )
                        if cand.holds(relation):
                            best = cand
                            break
                    if best is not None:
                        break
                if best is not None:
                    found.append(best)
                else:
                    stats.candidates_pruned += 1
