"""PFD discovery — counting-based, single- and multi-source.

Wang et al. [104] extend TANE-style traversal with per-value counting
to generate PFDs from "hundreds of small, dirty and incomplete data
sets".  Two algorithms:

* :func:`discover_pfds` — merge all tuples and compute each candidate
  FD's probability directly (their first, value-merging algorithm);
* :func:`discover_pfds_multisource` — compute per-source PFDs and merge
  the *probabilities* weighted by source size (their second algorithm,
  for when sources cannot be merged).
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Sequence

from ..core.categorical import PFD
from ..relation.relation import Relation
from .common import DiscoveryResult, DiscoveryStats


def discover_pfds(
    relation: Relation,
    probability_threshold: float = 0.8,
    max_lhs_size: int = 2,
) -> DiscoveryResult:
    """All PFDs ``X ->_p Y`` with measured probability >= threshold.

    Single-RHS, LHS up to ``max_lhs_size``; minimality pruning drops an
    LHS when one of its subsets already qualifies for the same RHS.
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    found: list[PFD] = []
    qualified: dict[str, list[tuple[str, ...]]] = {a: [] for a in names}
    for size in range(1, max_lhs_size + 1):
        stats.levels = size
        for lhs in combinations(names, size):
            for a in names:
                if a in lhs:
                    continue
                if any(set(q) <= set(lhs) for q in qualified[a]):
                    stats.candidates_pruned += 1
                    continue
                stats.candidates_checked += 1
                candidate = PFD(lhs, (a,), probability=probability_threshold)
                if candidate.measure(relation) >= probability_threshold:
                    found.append(candidate)
                    qualified[a].append(lhs)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="PFD-merge-values"
    )


def merged_probability(
    sources: Sequence[Relation], lhs: tuple[str, ...], rhs: str
) -> float:
    """Tuple-count-weighted mean of per-source PFD probabilities."""
    total = sum(len(s) for s in sources)
    if total == 0:
        return 1.0
    probe = PFD(lhs, (rhs,))
    weighted = sum(probe.measure(s) * len(s) for s in sources)
    return weighted / total


def discover_pfds_multisource(
    sources: Sequence[Relation],
    probability_threshold: float = 0.8,
    max_lhs_size: int = 2,
) -> DiscoveryResult:
    """Merge per-source PFDs instead of merging the data.

    All sources must share a schema.  The merged probability of a
    candidate is the tuple-count-weighted mean of its per-source
    probabilities — cheap to maintain incrementally as sources arrive,
    which is the pay-as-you-go integration setting of [104].
    """
    if not sources:
        raise ValueError("need at least one source relation")
    schema0 = sources[0].schema
    for s in sources[1:]:
        if s.schema.names() != schema0.names():
            raise ValueError("all sources must share one schema")
    stats = DiscoveryStats()
    names = sorted(schema0.names())
    found: list[PFD] = []
    qualified: dict[str, list[tuple[str, ...]]] = {a: [] for a in names}
    for size in range(1, max_lhs_size + 1):
        stats.levels = size
        for lhs in combinations(names, size):
            for a in names:
                if a in lhs:
                    continue
                if any(set(q) <= set(lhs) for q in qualified[a]):
                    stats.candidates_pruned += 1
                    continue
                stats.candidates_checked += 1
                if merged_probability(sources, lhs, a) >= probability_threshold:
                    found.append(
                        PFD(lhs, (a,), probability=probability_threshold)
                    )
                    qualified[a].append(lhs)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="PFD-merge-sources"
    )
