"""NUD discovery — minimal weights per attribute combination.

Ciaccia et al. [22] derive numerical dependencies for cardinality
estimation; the discovery primitive is simply the minimal weight ``k``
for which ``X ->_k Y`` holds — the maximum fanout — swept over
attribute combinations with a usefulness cap (a NUD with a huge weight
carries no information).
"""

from __future__ import annotations

from itertools import combinations

from ..core.categorical import NUD
from ..relation.relation import Relation
from .common import DiscoveryResult, DiscoveryStats


def minimal_weight(relation: Relation, lhs, rhs) -> int:
    """The smallest k such that ``lhs ->_k rhs`` holds (0 on empty)."""
    return NUD(lhs, rhs, weight=1).max_fanout(relation)


def discover_nuds(
    relation: Relation,
    max_weight: int = 5,
    max_lhs_size: int = 2,
) -> DiscoveryResult:
    """All NUDs with minimal weight in [1, max_weight], minimal LHS.

    An LHS is pruned for a given RHS when a subset already achieves the
    same or smaller weight (adding attributes can only lower fanout, so
    a superset with equal weight is redundant).
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    found: list[NUD] = []
    best: dict[str, list[tuple[tuple[str, ...], int]]] = {
        a: [] for a in names
    }
    for size in range(1, max_lhs_size + 1):
        stats.levels = size
        for lhs in combinations(names, size):
            for a in names:
                if a in lhs:
                    continue
                stats.candidates_checked += 1
                k = minimal_weight(relation, lhs, (a,))
                if k == 0 or k > max_weight:
                    stats.candidates_pruned += 1
                    continue
                dominated = any(
                    set(sub) <= set(lhs) and sub_k <= k
                    for sub, sub_k in best[a]
                )
                if dominated:
                    stats.candidates_pruned += 1
                    continue
                found.append(NUD(lhs, (a,), weight=k))
                best[a].append((lhs, k))
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="NUD-minweight"
    )
