"""FastFD — FD discovery via difference sets and depth-first covers.

Wyss et al. [112]: compute *difference sets* — for every tuple pair,
the set of attributes on which the pair disagrees.  An FD ``X -> A``
holds iff every difference set containing ``A`` also intersects ``X``;
minimal FDs correspond to minimal covers of the difference sets, found
by depth-first search.

FastFD's cost is driven by the number of tuple *pairs* (vs TANE's
per-level partitions) — the classic row/column trade-off the Perf-1
benchmark demonstrates.
"""

from __future__ import annotations


from ..core.categorical import FD
from ..relation import encoding
from ..relation.relation import Relation
from ..runtime.budget import (
    Budget,
    checkpoint,
    governed,
    resolve_budget,
    verify_on_sample,
)
from ..runtime.errors import BudgetExhausted, EngineFault, ReproError
from .common import DiscoveryResult, DiscoveryStats


def difference_sets(relation: Relation) -> set[frozenset[str]]:
    """Distinct attribute sets on which some tuple pair disagrees.

    The agree-set complement formulation of FastFD: O(n²) pairs, but
    deduplicated into the (usually far smaller) set of distinct
    difference sets that drives the cover search.

    With the dictionary-encoded substrate the O(n²·k) pair sweep runs
    over integer code vectors (one ``!=`` broadcast + bitmask reduction
    per anchor tuple) instead of Python value tuples; the naive path
    remains both as the ``REPRO_NAIVE_SUBSTRATE`` fallback and for
    relations the kernel cannot encode faithfully (NaN-like values,
    > 62 attributes).
    """
    names = relation.schema.names()
    if encoding.encoded_enabled() and len(relation) >= 2 and names:
        # One checkpoint for the whole vectorized sweep: the kernel is
        # a single C-speed pass we cannot interrupt mid-flight.
        checkpoint(pairs=len(relation) * (len(relation) - 1) // 2)
        idxs = tuple(range(len(names)))
        try:
            masks = relation.encoding().difference_masks(idxs)
        except ReproError:
            raise
        except Exception as exc:
            raise EngineFault(
                f"encoded difference-mask kernel failed: {exc}",
                site="encoding",
            ) from exc
        if masks is not None:
            return {
                frozenset(
                    names[c] for c in range(len(names)) if (m >> c) & 1
                )
                for m in masks
            }
    return _difference_sets_naive(relation)


def _difference_sets_naive(relation: Relation) -> set[frozenset[str]]:
    """Reference value-tuple implementation (parity oracle)."""
    names = relation.schema.names()
    out: set[frozenset[str]] = set()
    rows = relation.rows()
    n = len(rows)
    for i in range(n):
        checkpoint(pairs=n - 1 - i)
        for j in range(i + 1, n):
            diff = frozenset(
                names[c]
                for c, (a, b) in enumerate(zip(rows[i], rows[j], strict=True))
                if a != b
            )
            if diff:
                out.add(diff)
    return out


def _minimal_covers(
    sets_to_cover: list[frozenset[str]],
    attributes: list[str],
    prefix: tuple[str, ...],
    stats: DiscoveryStats,
    out: list[tuple[str, ...]],
) -> None:
    """Depth-first search for minimal hitting sets (FastFD's core).

    ``attributes`` is the ordered pool still allowed to be chosen; the
    ordering fixes a canonical search tree so each cover is found once.
    """
    stats.candidates_checked += 1
    checkpoint(candidates=1)
    uncovered = [s for s in sets_to_cover if not (s & set(prefix))]
    if not uncovered:
        # prefix is a cover; minimal iff removing any element uncovers.
        for drop in range(len(prefix)):
            reduced = set(prefix[:drop] + prefix[drop + 1:])
            if all(s & reduced for s in sets_to_cover):
                stats.candidates_pruned += 1
                return
        out.append(prefix)
        return
    # Choose attributes appearing in uncovered sets, in pool order.
    for k, a in enumerate(attributes):
        if any(a in s for s in uncovered):
            _minimal_covers(
                sets_to_cover, attributes[k + 1:], prefix + (a,), stats, out
            )


def fastfd(
    relation: Relation, budget: Budget | None = None
) -> DiscoveryResult:
    """Discover all minimal non-trivial single-RHS FDs.

    Budget-governed: on exhaustion the FDs of the RHS attributes
    already processed are returned (``stats.complete = False``), and
    the unprocessed RHS attributes get a sampled single-determinant
    fallback so no attribute is dropped without any answer.
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    found: list[FD] = []
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            diffs = difference_sets(relation)
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
            _salvage_rhs(relation, names, names, found, stats)
            return DiscoveryResult(
                dependencies=found, stats=stats, algorithm="FastFD"
            )
        for pos, a in enumerate(names):
            try:
                checkpoint()
                relevant = [s - {a} for s in diffs if a in s]
                if any(not s for s in relevant):
                    # Some pair differs *only* on A: no FD X -> A can
                    # hold (any X agrees on that pair while A differs).
                    continue
                if not relevant:
                    # No pair ever differs on A: every attribute
                    # determines A; minimal FDs are B -> A for each
                    # single attribute.
                    found.extend(FD((b,), (a,)) for b in names if b != a)
                    continue
                pool = [b for b in names if b != a]
                covers: list[tuple[str, ...]] = []
                _minimal_covers(
                    sorted(relevant, key=len), pool, (), stats, covers
                )
                found.extend(FD(c, (a,)) for c in covers)
            except BudgetExhausted as exc:
                stats.mark_exhausted(exc.reason)
                _salvage_rhs(relation, names[pos:], names, found, stats)
                break
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="FastFD"
    )


def _salvage_rhs(
    relation: Relation,
    pending_rhs: list[str],
    names: list[str],
    found: list[FD],
    stats: DiscoveryStats,
) -> None:
    """Sampled single-determinant FDs for unprocessed RHS attributes."""
    already = {str(d) for d in found}
    pending = [
        FD((b,), (a,))
        for a in pending_rhs
        for b in names
        if b != a and str(FD((b,), (a,))) not in already
    ]
    admitted = verify_on_sample(relation, pending)
    found.extend(admitted)
    stats.sampled_verified += len(admitted)
