"""FASTDC — denial constraint discovery via evidence sets (Chu et al.).

[19]: build a **predicate space** P (two-tuple atoms over the schema),
compute the **evidence set** of every ordered tuple pair — the subset
of P the pair satisfies — and observe that a DC ``¬(Q)`` with
``Q ⊆ P`` is valid iff no evidence set contains all of ``Q``.
Minimal valid DCs therefore correspond to **minimal hitting sets** of
the evidence-set complements, found depth-first with pruning.

Also provided, as in the paper:

* :func:`discover_dcs_approximate` (A-FASTDC) — tolerate ``Q ⊆ E`` for
  at most a fraction of pairs;
* :func:`discover_constant_dcs` (C-FASTDC) — single-tuple DCs with
  constant atoms from frequent values.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

from ..core.numerical import ALPHA, BETA, DC, Predicate
from ..relation import encoding as _encoding
from ..relation.relation import Relation
from ..relation.schema import AttributeType
from ..runtime.budget import Budget, checkpoint, governed, resolve_budget
from ..runtime.errors import BudgetExhausted, EngineFault, ReproError
from .common import DiscoveryResult, DiscoveryStats

if _encoding.HAS_NUMPY:
    import numpy as _np
else:  # pragma: no cover - minimal installs
    _np = None

_EQ_OPS = ("=", "!=")
_ORDER_OPS = ("=", "!=", "<", "<=", ">", ">=")


def build_predicate_space(
    relation: Relation, cross_columns: bool = False
) -> list[Predicate]:
    """Two-tuple predicates over the schema (FASTDC's space).

    Equality/inequality for every attribute; the four order operators
    additionally for numerical attributes; with ``cross_columns``, also
    order atoms across distinct numerical attribute pairs (the
    "structure of two different attributes and one operator" case).
    """
    space: list[Predicate] = []
    numeric: list[str] = []
    for attr in relation.schema:
        ops = _ORDER_OPS if attr.dtype is AttributeType.NUMERICAL else _EQ_OPS
        if attr.dtype is AttributeType.NUMERICAL:
            numeric.append(attr.name)
        for op in ops:
            space.append(Predicate(ALPHA, attr.name, op, BETA, attr.name))
    if cross_columns:
        for a, b in combinations(numeric, 2):
            for op in ("<", "<=", ">", ">="):
                space.append(Predicate(ALPHA, a, op, BETA, b))
    return space


def evidence_sets(
    relation: Relation, space: list[Predicate]
) -> Counter:
    """Multiset of evidence sets over all ordered tuple pairs.

    Each evidence set is the frozenset of space-indices of predicates
    the pair satisfies; the Counter tracks how many pairs share each
    evidence set (needed for the approximate variant).

    With the dictionary-encoded substrate each predicate becomes one
    broadcast comparison over integer codes (equality atoms) or float
    vectors (order atoms), and the per-pair evidence sets fall out of a
    single ``np.unique`` over packed bitmasks — O(|P| · n²) C-speed
    work instead of O(|P| · n²) interpreted ``Predicate.evaluate``
    calls.  Falls back to the naive path when disabled or when a
    predicate cannot be vectorized faithfully.
    """
    if _encoding.encoded_enabled() and len(relation) >= 2:
        plan = _vectorizable_plan(relation, space)
        if plan is not None:
            # One checkpoint for the whole vectorized sweep — the
            # numpy kernel is uninterruptible, so the budget charge is
            # taken up front.
            checkpoint(pairs=len(relation) * (len(relation) - 1))
            try:
                return _evidence_sets_encoded(relation, space, plan)
            except ReproError:
                raise
            except Exception as exc:
                raise EngineFault(
                    f"encoded evidence-set kernel failed: {exc}",
                    site="encoding",
                ) from exc
    return _evidence_sets_naive(relation, space)


def _evidence_sets_naive(
    relation: Relation, space: list[Predicate]
) -> Counter:
    """Reference per-pair implementation (parity oracle)."""
    out: Counter = Counter()
    n = len(relation)
    for i in range(n):
        checkpoint(pairs=n - 1)
        for j in range(n):
            if i == j:
                continue
            assignment = {ALPHA: i, BETA: j}
            ev = frozenset(
                k
                for k, p in enumerate(space)
                if p.evaluate(relation, assignment)
            )
            out[ev] += 1
    return out


def _vectorizable_plan(
    relation: Relation, space: list[Predicate]
) -> list[tuple] | None:
    """Per-predicate vectorization recipes, or ``None`` to fall back.

    Equality atoms over one attribute run on dictionary codes (masked
    by ``None`` validity, since ``None`` never satisfies an atom);
    order and cross-column atoms run on float vectors with ``NaN`` for
    ``None`` (``NaN`` comparisons are ``False``, matching the naive
    semantics).  Columns with NaN-like values take the float route for
    equality too — codes would call two equal-by-identity NaNs equal
    where ``==`` does not.
    """
    if _np is None:
        return None
    enc = relation.encoding()
    schema = relation.schema
    plan: list[tuple] = []
    for p in space:
        if p.is_constant or p.lhs_var != ALPHA or p.rhs_var != BETA:
            return None
        if p.lhs_attribute not in schema or p.rhs_attribute not in schema:
            return None
        li = schema.index_of(p.lhs_attribute)
        ri = schema.index_of(p.rhs_attribute)
        if p.op in ("=", "==", "!=") and li == ri:
            cc = enc.column_codes(li)
            if not cc.self_unequal:
                plan.append(("codes", li, p.op))
                continue
        if not (
            enc.column_codes(li).numeric_safe
            and enc.column_codes(ri).numeric_safe
        ):
            return None
        plan.append(("float", li, ri, p.op))
    return plan


def _evidence_sets_encoded(
    relation: Relation, space: list[Predicate], plan: list[tuple]
) -> Counter:
    """Vectorized evidence sets: per-predicate broadcast + bit packing."""
    enc = relation.encoding()
    n = len(relation)
    off_diagonal = ~_np.eye(n, dtype=bool)
    words: list = []  # one packed int64 word per chunk of 62 predicates
    word = None
    for k, recipe in enumerate(plan):
        bit = k % 62
        if bit == 0:
            if word is not None:
                words.append(word[off_diagonal])
            word = _np.zeros((n, n), dtype=_np.int64)
        if recipe[0] == "codes":
            __, col, op = recipe
            codes = enc.codes_array(col)
            valid = enc.valid_array(col)
            eq = codes[:, None] == codes[None, :]
            both_valid = valid[:, None] & valid[None, :]
            matrix = (eq if op != "!=" else ~eq) & both_valid
        else:
            __, li, ri, op = recipe
            a = enc.float_array(li)[:, None]
            b = enc.float_array(ri)[None, :]
            if op in ("=", "=="):
                matrix = a == b  # NaN == anything -> False
            elif op == "!=":
                matrix = (a != b) & (
                    enc.valid_array(li)[:, None]
                    & enc.valid_array(ri)[None, :]
                )
            elif op == "<":
                matrix = a < b
            elif op == "<=":
                matrix = a <= b
            elif op == ">":
                matrix = a > b
            else:
                matrix = a >= b
        word |= matrix.astype(_np.int64) << bit
    if word is not None:
        words.append(word[off_diagonal])
    out: Counter = Counter()
    if not words:  # empty predicate space: every pair has empty evidence
        out[frozenset()] = n * (n - 1)
        return out
    if len(words) == 1:
        packed, counts = _np.unique(words[0], return_counts=True)
        packed = packed[:, None]
    else:
        packed, counts = _np.unique(
            _np.stack(words, axis=1), axis=0, return_counts=True
        )
    for row, count in zip(packed.tolist(), counts.tolist(), strict=True):
        members = []
        for chunk, value in enumerate(row):
            base = chunk * 62
            while value:
                low = value & -value
                members.append(base + low.bit_length() - 1)
                value ^= low
        out[frozenset(members)] = count
    return out


def _minimal_covers(
    complements: list[frozenset[int]],
    pool: list[int],
    prefix: tuple[int, ...],
    out: list[tuple[int, ...]],
    stats: DiscoveryStats,
    max_size: int,
) -> None:
    """DFS for minimal hitting sets of the complement sets."""
    stats.candidates_checked += 1
    checkpoint(candidates=1)
    uncovered = [c for c in complements if not (c & set(prefix))]
    if not uncovered:
        for drop in range(len(prefix)):
            reduced = set(prefix[:drop] + prefix[drop + 1:])
            if all(c & reduced for c in complements):
                stats.candidates_pruned += 1
                return
        out.append(prefix)
        return
    if len(prefix) >= max_size:
        return
    # Branch on predicates appearing in the first uncovered complement —
    # any hitting set must pick one of them.
    target = min(uncovered, key=len)
    for k, pidx in enumerate(pool):
        if pidx in target:
            _minimal_covers(
                complements, pool[k + 1:], prefix + (pidx,), out, stats,
                max_size,
            )


def discover_dcs(
    relation: Relation,
    max_predicates: int = 3,
    cross_columns: bool = False,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Minimal valid DCs with at most ``max_predicates`` atoms.

    Budget-governed: exhaustion mid-sweep returns the covers found so
    far — each already a verified hitting set, hence a valid DC — with
    ``stats.complete = False``.  Exhaustion during the evidence sweep
    falls back to evidence sets over a row sample (the A-FASTDC-style
    degradation), whose DCs are flagged via ``stats.sampled_verified``.
    """
    from ..runtime.budget import sample_relation

    stats = DiscoveryStats()
    space = build_predicate_space(relation, cross_columns)
    covers: list[tuple[int, ...]] = []
    sampled = False
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            evidence = evidence_sets(relation, space)
        except BudgetExhausted as exc:
            # Sampled evidence fallback: bounded (<= 32 rows => <= 992
            # ordered pairs) and checkpoint-free, so the overrun past
            # the blown budget stays small.
            stats.mark_exhausted(exc.reason)
            sampled = True
            sample = sample_relation(relation, max_rows=32)
            evidence = _evidence_sets_naive_unguarded(sample, space)
        all_ids = set(range(len(space)))
        complements = sorted(
            {frozenset(all_ids - e) for e in evidence}, key=len
        )
        try:
            if sampled:
                _minimal_covers_unguarded(
                    complements, list(range(len(space))), (), covers,
                    stats, max_predicates,
                )
            else:
                _minimal_covers(
                    complements, list(range(len(space))), (), covers,
                    stats, max_predicates,
                )
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    dcs = [DC([space[k] for k in cover]) for cover in covers]
    if sampled:
        stats.sampled_verified += len(dcs)
    return DiscoveryResult(
        dependencies=dcs, stats=stats, algorithm="FASTDC"
    )


def _evidence_sets_naive_unguarded(
    relation: Relation, space: list[Predicate]
) -> Counter:
    """Naive evidence sets with no checkpoints (post-exhaustion use)."""
    out: Counter = Counter()
    n = len(relation)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            assignment = {ALPHA: i, BETA: j}
            ev = frozenset(
                k
                for k, p in enumerate(space)
                if p.evaluate(relation, assignment)
            )
            out[ev] += 1
    return out


def _minimal_covers_unguarded(
    complements, pool, prefix, out, stats, max_size, node_cap: int = 20000
) -> None:
    """Checkpoint-free cover DFS with a hard node cap (salvage path)."""
    if stats.candidates_checked >= node_cap:
        return
    stats.candidates_checked += 1
    uncovered = [c for c in complements if not (c & set(prefix))]
    if not uncovered:
        for drop in range(len(prefix)):
            reduced = set(prefix[:drop] + prefix[drop + 1:])
            if all(c & reduced for c in complements):
                stats.candidates_pruned += 1
                return
        out.append(prefix)
        return
    if len(prefix) >= max_size:
        return
    target = min(uncovered, key=len)
    for k, pidx in enumerate(pool):
        if pidx in target:
            _minimal_covers_unguarded(
                complements, pool[k + 1:], prefix + (pidx,), out, stats,
                max_size, node_cap,
            )


def discover_dcs_approximate(
    relation: Relation,
    epsilon: float = 0.01,
    max_predicates: int = 3,
    cross_columns: bool = False,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """A-FASTDC: DCs violated by at most ``epsilon`` of ordered pairs.

    A candidate ``Q`` is approximately valid when the pairs whose
    evidence set contains all of ``Q`` number at most
    ``epsilon * n * (n-1)``.  The search enumerates predicate subsets
    up to ``max_predicates`` with subset-minimality filtering (covers
    of *most* complements are not hitting sets, so the exact DFS does
    not transfer directly).
    """
    stats = DiscoveryStats()
    space = build_predicate_space(relation, cross_columns)
    found: list[tuple[frozenset[int], DC]] = []
    n = len(relation)
    violation_budget = epsilon * n * (n - 1)
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            evidence = evidence_sets(relation, space)

            def violating_pairs(q: frozenset[int]) -> int:
                return sum(
                    count for e, count in evidence.items() if q <= e
                )

            ids = list(range(len(space)))
            for size in range(1, max_predicates + 1):
                stats.levels = size
                for q in combinations(ids, size):
                    qs = frozenset(q)
                    if any(prev <= qs for prev, __ in found):
                        stats.candidates_pruned += 1
                        continue
                    stats.candidates_checked += 1
                    checkpoint(candidates=1)
                    if violating_pairs(qs) <= violation_budget:
                        found.append((qs, DC([space[k] for k in q])))
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    return DiscoveryResult(
        dependencies=[dc for __, dc in found],
        stats=stats,
        algorithm=f"A-FASTDC(eps={epsilon})",
    )


def discover_constant_dcs(
    relation: Relation,
    min_frequency: int = 2,
    max_predicates: int = 2,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """C-FASTDC: single-tuple DCs over frequent constant atoms.

    Builds constant predicates ``t.A op c`` for frequent values ``c``
    (equality for all types, order atoms for numerical attributes at
    observed quartiles), then emits minimal never-satisfied
    conjunctions — the constant rules ("region = Chicago ∧ price <
    200" style) of Section 4.3.
    """
    stats = DiscoveryStats()
    found: list[tuple[frozenset[int], DC]] = []
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            _discover_constant_dcs(
                relation, min_frequency, max_predicates, stats, found
            )
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    return DiscoveryResult(
        dependencies=[dc for __, dc in found],
        stats=stats,
        algorithm="C-FASTDC",
    )


def _discover_constant_dcs(
    relation: Relation,
    min_frequency: int,
    max_predicates: int,
    stats: DiscoveryStats,
    found: list[tuple[frozenset[int], DC]],
) -> None:
    space: list[Predicate] = []
    for attr in relation.schema:
        counts = relation.value_counts(attr.name)
        frequent = [
            v
            for v, c in counts.items()
            if c >= min_frequency and v is not None
        ]
        for v in frequent:
            space.append(Predicate(ALPHA, attr.name, "=", None, None, v))
        if attr.dtype is AttributeType.NUMERICAL:
            values = sorted(
                v for v in relation.column(attr.name) if v is not None
            )
            if values:
                for q in (0.25, 0.5, 0.75):
                    c = values[int(q * (len(values) - 1))]
                    space.append(
                        Predicate(ALPHA, attr.name, "<", None, None, c)
                    )
                    space.append(
                        Predicate(ALPHA, attr.name, ">", None, None, c)
                    )
    # Evidence per single tuple.
    evidences: list[frozenset[int]] = []
    for i in range(len(relation)):
        checkpoint()
        assignment = {ALPHA: i}
        evidences.append(
            frozenset(
                k
                for k, p in enumerate(space)
                if p.evaluate(relation, assignment)
            )
        )
    ids = list(range(len(space)))
    for size in range(1, max_predicates + 1):
        stats.levels = size
        for q in combinations(ids, size):
            qs = frozenset(q)
            if len({space[k].lhs_attribute for k in q}) != size:
                continue  # one atom per attribute keeps rules readable
            if any(prev <= qs for prev, __ in found):
                stats.candidates_pruned += 1
                continue
            stats.candidates_checked += 1
            checkpoint(candidates=1)
            if not any(qs <= e for e in evidences):
                found.append((qs, DC([space[k] for k in q])))
