"""OD discovery — level-wise search over marked attributes.

Langer & Naumann [67] traverse the lattice of attribute permutations;
Szlichta et al. [99] (FASTOD) use a set-based canonical form to cut the
list-based blowup.  For the survey's scope we discover the practically
dominant class: pairwise ODs ``A^m1 -> B^m2`` over single attributes
with both ascending/descending marks, plus list-extension to
lexicographic LHS lists, level-wise with validity pruning.
"""

from __future__ import annotations

from itertools import combinations, permutations

from ..core.numerical import OD, MarkedAttribute
from ..relation.relation import Relation
from ..runtime.budget import Budget, checkpoint, governed, resolve_budget
from ..runtime.errors import BudgetExhausted
from .common import DiscoveryResult, DiscoveryStats

_MARKS = ("<=", ">=")


def _numerical_names(relation: Relation) -> list[str]:
    numeric = [a.name for a in relation.schema.numerical_attributes()]
    if numeric:
        return sorted(numeric)
    # Untyped relations: fall back to columns that are all numbers.
    out = []
    for a in relation.schema.names():
        col = [v for v in relation.column(a) if v is not None]
        if col and all(isinstance(v, (int, float)) for v in col):
            out.append(a)
    return sorted(out)


def discover_pairwise_ods(
    relation: Relation, budget: Budget | None = None
) -> DiscoveryResult:
    """All valid single-attribute ODs ``A^m1 -> B^m2`` (A != B).

    Descending-LHS variants are equivalent to flipped ascending-LHS
    ones (``A^>= -> B^>=`` iff ``A^<= -> B^<=``), so the canonical
    output fixes the LHS mark to ascending and varies the RHS mark.
    """
    stats = DiscoveryStats()
    names = _numerical_names(relation)
    found: list[OD] = []
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for a, b in permutations(names, 2):
                for rhs_mark in _MARKS:
                    stats.candidates_checked += 1
                    checkpoint(candidates=1)
                    od = OD(
                        [MarkedAttribute(a, "<=")],
                        [MarkedAttribute(b, rhs_mark)],
                    )
                    if od.holds(relation):
                        found.append(od)
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="OD-pairwise"
    )


def discover_ods(
    relation: Relation,
    max_lhs_size: int = 2,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Level-wise OD discovery with LHS lists up to ``max_lhs_size``.

    Minimality: an OD with a longer LHS list is emitted only when no
    discovered OD with a *prefix-subset* LHS already orders the same
    RHS mark (shorter order specifications are stronger statements:
    they fire on more pairs).
    """
    stats = DiscoveryStats()
    names = _numerical_names(relation)
    found: list[OD] = []
    # RHS (attr, mark) -> LHS attribute sets already covered.
    done: dict[tuple[str, str], list[tuple[str, ...]]] = {}
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for size in range(1, max_lhs_size + 1):
                stats.levels = size
                for lhs_attrs in combinations(names, size):
                    for b in names:
                        if b in lhs_attrs:
                            continue
                        for rhs_mark in _MARKS:
                            covered = done.get((b, rhs_mark), [])
                            if any(
                                set(c) <= set(lhs_attrs) for c in covered
                            ):
                                stats.candidates_pruned += 1
                                continue
                            stats.candidates_checked += 1
                            checkpoint(candidates=1)
                            od = OD(
                                [
                                    MarkedAttribute(a, "<=")
                                    for a in lhs_attrs
                                ],
                                [MarkedAttribute(b, rhs_mark)],
                            )
                            if od.holds(relation):
                                found.append(od)
                                done.setdefault(
                                    (b, rhs_mark), []
                                ).append(lhs_attrs)
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="OD-levelwise"
    )
