"""MFD verification and threshold discovery (Koudas et al. [64]).

Section 3.1.3: the key step of MFD discovery is *verifying* whether a
candidate MFD holds — group by the LHS, compute each group's dependent-
side diameter, compare against δ.  Exact verification is O(n²) within
groups; the approximate variant uses pivot eccentricities (a
2-approximation by the triangle inequality) to skip most exact work.

Beyond verification, :func:`minimal_delta` reports the smallest δ
making a candidate MFD hold — the natural threshold-discovery routine —
and :func:`discover_mfds` sweeps single-attribute candidates.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Sequence

from ..core.heterogeneous import MFD
from ..metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ..relation.relation import Relation
from .common import DiscoveryResult, DiscoveryStats


def verify_mfd(relation: Relation, mfd: MFD) -> bool:
    """Exact diameter-based verification (delegates to the class)."""
    return mfd.holds(relation)


def verify_mfd_approximate(relation: Relation, mfd: MFD) -> bool:
    """Pivot-eccentricity verification with exact fallback per group."""
    return mfd.holds_approximate(relation)


def minimal_delta(
    relation: Relation,
    lhs: Sequence[str],
    rhs: Sequence[str] | str,
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> float:
    """The smallest δ for which ``lhs ->^δ rhs`` holds: the max diameter."""
    probe = MFD(lhs, rhs, delta=float("inf"), registry=registry)
    diameters = probe.group_diameters(relation)
    return max(diameters.values(), default=0.0)


def discover_mfds(
    relation: Relation,
    max_delta: float,
    lhs_size: int = 1,
    registry: MetricRegistry = DEFAULT_REGISTRY,
) -> DiscoveryResult:
    """All MFDs ``X ->^δ A`` with minimal δ <= ``max_delta``.

    Sweeps LHS combinations of the given size and single dependent
    attributes, reporting each candidate at its minimal δ (tight
    thresholds, not the loose bound).
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    found: list[MFD] = []
    for lhs in combinations(names, lhs_size):
        for a in names:
            if a in lhs:
                continue
            stats.candidates_checked += 1
            delta = minimal_delta(relation, lhs, a, registry)
            if delta <= max_delta:
                found.append(MFD(lhs, (a,), delta, registry=registry))
            else:
                stats.candidates_pruned += 1
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="MFD-verify"
    )
