"""CORDS — sample-based SFD and correlation discovery.

Ilyas et al. [55]: for each column pair (C1, C2), take a sample, count
distinct values, and

* declare a **soft FD** ``C1 -> C2`` when the strength
  ``|dom(C1)| / |dom(C1, C2)|`` on the sample clears a threshold;
* flag **correlation** via a robust chi-square test on the contingency
  table of frequent values.

The sample size is "basically independent of the database size", which
is what makes CORDS scalable; :func:`cords` therefore works on a
seeded sample of bounded size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import permutations

from ..core.categorical import SFD
from ..relation.relation import Relation
from .common import DiscoveryResult, DiscoveryStats


@dataclass
class ColumnPairAnalysis:
    """CORDS' verdict on one ordered column pair."""

    determinant: str
    dependent: str
    strength: float
    chi_square: float
    degrees_of_freedom: int
    correlated: bool


def chi_square_statistic(
    relation: Relation, col1: str, col2: str, max_categories: int = 20
) -> tuple[float, int]:
    """Chi-square independence statistic over the top value categories.

    Values beyond the ``max_categories`` most frequent ones per column
    are pooled into an "other" bucket — CORDS' robustness device
    against skew and high cardinality.
    """
    counts1 = relation.value_counts(col1)
    counts2 = relation.value_counts(col2)
    top1 = sorted(counts1, key=counts1.get, reverse=True)[:max_categories]
    top2 = sorted(counts2, key=counts2.get, reverse=True)[:max_categories]
    cat1 = {v: k for k, v in enumerate(top1)}
    cat2 = {v: k for k, v in enumerate(top2)}
    other1, other2 = len(cat1), len(cat2)
    rows = other1 + 1
    cols = other2 + 1
    table = [[0.0] * cols for __ in range(rows)]
    c1 = relation.column(col1)
    c2 = relation.column(col2)
    for a, b in zip(c1, c2, strict=True):
        table[cat1.get(a, other1)][cat2.get(b, other2)] += 1
    n = len(c1)
    if n == 0:
        return 0.0, 0
    row_sums = [sum(r) for r in table]
    col_sums = [sum(table[r][c] for r in range(rows)) for c in range(cols)]
    # Drop empty rows/cols from the dof count.
    live_rows = sum(1 for s in row_sums if s > 0)
    live_cols = sum(1 for s in col_sums if s > 0)
    stat = 0.0
    for r in range(rows):
        for c in range(cols):
            expected = row_sums[r] * col_sums[c] / n
            if expected > 0:
                stat += (table[r][c] - expected) ** 2 / expected
    dof = max((live_rows - 1) * (live_cols - 1), 1)
    return stat, dof


def _chi_square_critical(dof: int, alpha: float = 0.01) -> float:
    """Approximate critical value via the Wilson-Hilferty transform.

    chi2_crit ≈ dof * (1 - 2/(9 dof) + z * sqrt(2/(9 dof)))³ with z the
    standard-normal quantile; z(0.99) ≈ 2.326, z(0.95) ≈ 1.645.
    """
    z = 2.326 if alpha <= 0.01 else 1.645
    k = 2.0 / (9.0 * dof)
    return dof * (1.0 - k + z * math.sqrt(k)) ** 3


def cords(
    relation: Relation,
    strength_threshold: float = 0.9,
    sample_size: int = 2000,
    alpha: float = 0.01,
    seed: int = 0,
) -> DiscoveryResult:
    """Discover SFDs (and correlations) over all ordered column pairs.

    Returns SFDs whose sample strength is >= ``strength_threshold``.
    The full per-pair analyses (including chi-square correlation
    verdicts) are attached as ``result.analyses``.
    """
    stats = DiscoveryStats()
    sample = relation.sample(sample_size, seed=seed)
    names = sorted(relation.schema.names())
    found: list[SFD] = []
    analyses: list[ColumnPairAnalysis] = []
    for c1, c2 in permutations(names, 2):
        stats.candidates_checked += 1
        candidate = SFD((c1,), (c2,), strength=strength_threshold)
        strength = candidate.measure(sample)
        chi, dof = chi_square_statistic(sample, c1, c2)
        correlated = chi > _chi_square_critical(dof, alpha)
        analyses.append(
            ColumnPairAnalysis(c1, c2, strength, chi, dof, correlated)
        )
        if strength >= strength_threshold:
            found.append(SFD((c1,), (c2,), strength=strength_threshold))
    result = DiscoveryResult(
        dependencies=found, stats=stats, algorithm="CORDS"
    )
    result.analyses = analyses
    return result
