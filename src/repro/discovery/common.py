"""Shared machinery for dependency discovery algorithms.

Level-wise lattice traversal (TANE-family), minimality filtering, and
the uniform :class:`DiscoveryResult` container that every discovery
entry point returns (discovered dependencies + search statistics, so
the benchmark harness can report work done, not just wall-clock).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

from ..core.base import Dependency

D = TypeVar("D", bound=Dependency)


@dataclass
class DiscoveryStats:
    """Work counters common across discovery algorithms."""

    candidates_checked: int = 0
    candidates_pruned: int = 0
    levels: int = 0
    partitions_built: int = 0
    #: Partitions/groupings served from the shared relation-level cache
    #: instead of being rebuilt (see ``repro.relation.partition_cache``).
    partition_cache_hits: int = 0
    #: ``False`` when the run stopped on a resource budget: the result
    #: is an honest partial answer, not the full minimal set.
    complete: bool = True
    #: ``""`` while complete; the :class:`~repro.runtime.errors.
    #: BudgetExhausted` reason (``"deadline"``, ``"candidates"``, ...)
    #: otherwise.
    exhausted: str = ""
    #: Dependencies admitted via sampled verification after budget
    #: exhaustion (degraded FASTDC/Hydra-style fallback) — these were
    #: checked on a row sample only, never on the full relation.
    sampled_verified: int = 0

    def merge(self, other: "DiscoveryStats") -> None:
        self.candidates_checked += other.candidates_checked
        self.candidates_pruned += other.candidates_pruned
        self.levels = max(self.levels, other.levels)
        self.partitions_built += other.partitions_built
        self.partition_cache_hits += other.partition_cache_hits
        self.complete = self.complete and other.complete
        self.exhausted = self.exhausted or other.exhausted
        self.sampled_verified += other.sampled_verified

    def mark_exhausted(self, reason: str) -> None:
        """Flag this run as budget-limited (partial result)."""
        self.complete = False
        self.exhausted = reason


@dataclass
class DiscoveryResult:
    """Dependencies found by one discovery run, with statistics."""

    dependencies: list
    stats: DiscoveryStats = field(default_factory=DiscoveryStats)
    algorithm: str = ""

    def __iter__(self):
        return iter(self.dependencies)

    def __len__(self) -> int:
        return len(self.dependencies)

    def __contains__(self, dep) -> bool:
        return dep in self.dependencies

    @property
    def complete(self) -> bool:
        """Whether the search ran to completion (no budget exhaustion)."""
        return self.stats.complete

    def summary(self) -> str:
        text = (
            f"{self.algorithm}: {len(self.dependencies)} dependencies, "
            f"{self.stats.candidates_checked} candidates checked, "
            f"{self.stats.candidates_pruned} pruned"
        )
        if not self.stats.complete:
            text += f" [partial: budget exhausted ({self.stats.exhausted})]"
        return text


def violation_evidence(dep, relation) -> set[tuple[int, int]]:
    """The violating (i, j) pairs of a pairwise candidate.

    Single evidence-collection seam for discovery algorithms (FASTDC
    cover verification, DD/MD threshold sweeps): routes through the
    candidate's compiled plan so the kernels prune the pair space and
    charge the budget for the pairs actually examined.
    """
    from ..plan import pairwise_violations, plan_enabled

    if plan_enabled():
        return {
            (v.tuples[0], v.tuples[1])
            for v in pairwise_violations(dep, relation)
        }
    return dep.violating_pairs(relation)


def match_evidence(rule, relation) -> set[tuple[int, int]]:
    """The LHS-selected (i, j) pairs of a matching-style rule.

    ``rule.matches`` is plan-backed (guard-plan pruning); collecting
    the full match set once lets greedy cover selection intersect sets
    instead of re-evaluating similarity per (candidate, pair).
    """
    return set(rule.matches(relation))


def subsets_of_size(
    items: Sequence[str], size: int
) -> Iterator[tuple[str, ...]]:
    """All ``size``-subsets in deterministic order."""
    return itertools.combinations(items, size)


def proper_subsets(items: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
    """All immediate (size-1) subsets of an attribute combination."""
    for drop in range(len(items)):
        yield items[:drop] + items[drop + 1:]


def is_superset_of_any(
    candidate: tuple[str, ...], found: Iterable[tuple[str, ...]]
) -> bool:
    """Whether ``candidate`` ⊇ some already-found LHS (minimality prune)."""
    cset = set(candidate)
    return any(cset >= set(f) for f in found)


def generate_next_level(
    level: list[tuple[str, ...]]
) -> list[tuple[str, ...]]:
    """Apriori-style candidate generation: join k-sets sharing a prefix.

    Keeps only candidates all of whose k-subsets are present in the
    current level — the standard level-wise pruning of TANE [53, 54].
    """
    present = set(level)
    next_level: list[tuple[str, ...]] = []
    by_prefix: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    for combo in level:
        by_prefix.setdefault(combo[:-1], []).append(combo)
    for group in by_prefix.values():
        for a, b in itertools.combinations(sorted(group), 2):
            candidate = tuple(sorted(set(a) | set(b)))
            if len(candidate) != len(a) + 1:
                continue
            if all(sub in present for sub in proper_subsets(candidate)):
                next_level.append(candidate)
    return sorted(set(next_level))
