"""CFD discovery — constant mining, level-wise general mining, tableaux.

Three entry points mirroring Section 2.5.3:

* :func:`discover_constant_cfds` — CFDMiner-style [35, 36]: constant
  CFDs correspond to frequent attribute-value patterns that fix the
  RHS value; mined level-wise with minimality pruning.
* :func:`discover_general_cfds` — CTANE-style [36]: level-wise search
  over (attribute-set, pattern) pairs mixing constants and wildcards.
* :func:`greedy_tableau` — Golab et al. [49]: generating an *optimal*
  tableau for a given embedded FD is NP-complete; the greedy algorithm
  repeatedly adds the candidate pattern with the best marginal
  support among patterns meeting the confidence requirement, yielding
  the standard (1 - 1/e)-style near-optimal tableau.
"""

from __future__ import annotations

from itertools import combinations
from ..core.categorical import CFD, CFDTableau, FD, Pattern
from ..relation.partition_cache import cache_for
from ..relation.relation import Relation
from ..runtime.budget import Budget, checkpoint, governed, resolve_budget
from ..runtime.errors import BudgetExhausted, EngineFault, ReproError
from .common import DiscoveryResult, DiscoveryStats


def _guarded_groups(cache, lhs):
    """``cache.groups`` with fault conversion at the substrate boundary.

    A raising grouping kernel (genuine or injected) becomes a typed
    :class:`EngineFault` instead of an anonymous crash mid-mine.
    """
    try:
        return cache.groups(lhs)
    except ReproError:
        raise
    except Exception as exc:
        raise EngineFault(
            f"group-by kernel failed on {lhs!r}: {exc}", site="groups"
        ) from exc


def discover_constant_cfds(
    relation: Relation,
    min_support: int = 2,
    max_lhs_size: int = 2,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Mine minimal constant CFDs ``(X = x -> A = a)``.

    A constant CFD is emitted when at least ``min_support`` tuples match
    the LHS constants and *all* of them share one RHS value.  Minimality:
    a pattern is pruned when a sub-pattern (fewer conditioned
    attributes) already fixes the same RHS attribute.

    On ``budget`` exhaustion the constant CFDs mined so far are
    returned with ``stats.complete = False`` — every emitted CFD was
    fully verified before the cutoff.
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    found: list[CFD] = []
    # Groups come from the shared relation-level cache: a profiler run
    # that already did TANE + CFD mining on this relation reuses them.
    cache = cache_for(relation)
    hits_before = cache.stats.hits
    columns = {a: relation.column(a) for a in names}
    # RHS attr -> list of minimal LHS (attr, value) sets already found.
    minimal: dict[str, list[frozenset[tuple[str, object]]]] = {
        a: [] for a in names
    }
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for size in range(1, max_lhs_size + 1):
                stats.levels = size
                for lhs in combinations(names, size):
                    checkpoint()
                    groups = _guarded_groups(cache, lhs)
                    for x_value, indices in groups.items():
                        if len(indices) < min_support:
                            continue
                        items = frozenset(zip(lhs, x_value, strict=True))
                        for a in names:
                            if a in lhs:
                                continue
                            if any(m <= items for m in minimal[a]):
                                stats.candidates_pruned += 1
                                continue
                            stats.candidates_checked += 1
                            checkpoint(candidates=1)
                            column = columns[a]
                            values = {column[t] for t in indices}
                            if len(values) == 1:
                                rhs_value = next(iter(values))
                                pattern = dict(items)
                                pattern[a] = rhs_value
                                found.append(CFD(lhs, (a,), pattern))
                                minimal[a].append(items)
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    stats.partition_cache_hits += cache.stats.hits - hits_before
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="CFDMiner"
    )


def discover_general_cfds(
    relation: Relation,
    min_support: int = 2,
    max_lhs_size: int = 2,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Mine general (variable) CFDs level-wise, CTANE-style.

    Candidates are embedded FDs ``X -> A`` with patterns over ``X``
    mixing constants (drawn from values with enough support) and
    wildcards, wildcard RHS.  Emitted when the CFD holds exactly and
    covers >= ``min_support`` tuples; pure-wildcard patterns reduce to
    plain FDs and are reported too.  Partial on ``budget`` exhaustion.
    """
    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    found: list[CFD] = []
    emitted_fd_lhs: dict[str, list[tuple[str, ...]]] = {a: [] for a in names}
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for size in range(1, max_lhs_size + 1):
                stats.levels = size
                for lhs in combinations(names, size):
                    for a in names:
                        if a in lhs:
                            continue
                        if any(
                            set(q) <= set(lhs) for q in emitted_fd_lhs[a]
                        ):
                            stats.candidates_pruned += 1
                            continue
                        # Pure-wildcard candidate first (the plain FD).
                        stats.candidates_checked += 1
                        checkpoint(candidates=1)
                        plain = CFD(lhs, (a,), None)
                        if (
                            plain.holds(relation)
                            and len(relation) >= min_support
                        ):
                            found.append(plain)
                            emitted_fd_lhs[a].append(lhs)
                            continue
                        # One-constant patterns: condition a single LHS
                        # attribute on each sufficiently frequent value.
                        for cond_attr in lhs:
                            counts = relation.value_counts(cond_attr)
                            for value, freq in counts.items():
                                if freq < min_support or value is None:
                                    continue
                                stats.candidates_checked += 1
                                checkpoint(candidates=1)
                                cand = CFD(
                                    lhs, (a,), {cond_attr: value}
                                )
                                if cand.holds(relation):
                                    found.append(cand)
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    return DiscoveryResult(
        dependencies=found, stats=stats, algorithm="CTANE-lite"
    )


def discover_ecfds(
    relation: Relation,
    min_support: int = 2,
    max_lhs_size: int = 2,
    budget: Budget | None = None,
) -> DiscoveryResult:
    """Mine eCFDs with inequality conditions on numerical attributes.

    Zanzi & Trombetta [114] discover non-constant conditional FDs with
    built-in predicates; this implementation conditions one numerical
    LHS attribute on observed-quartile thresholds with the operators
    ``<=``/``>``/``>=``/``<`` and keeps eCFDs that hold exactly with
    enough matching tuples.  Pure-constant conditions are CFDMiner's
    job (:func:`discover_constant_cfds`); this adds the predicate part.
    """
    from ..core.categorical import ECFD
    from ..relation.schema import AttributeType

    stats = DiscoveryStats()
    names = sorted(relation.schema.names())
    numeric = {
        a.name
        for a in relation.schema
        if a.dtype is AttributeType.NUMERICAL
    }
    found: list[ECFD] = []
    budget = resolve_budget(budget)
    with governed(budget):
        try:
            for size in range(1, max_lhs_size + 1):
                stats.levels = size
                for lhs in combinations(names, size):
                    cond_candidates = [a for a in lhs if a in numeric]
                    for a in names:
                        if a in lhs:
                            continue
                        # Skip when the plain FD already holds (the
                        # eCFD would be redundant).
                        plain = CFD(lhs, (a,), None)
                        stats.candidates_checked += 1
                        checkpoint(candidates=1)
                        if plain.holds(relation):
                            continue
                        for cond_attr in cond_candidates:
                            values = sorted(
                                v
                                for v in relation.column(cond_attr)
                                if v is not None
                            )
                            if not values:
                                continue
                            thresholds = {
                                values[len(values) // 4],
                                values[len(values) // 2],
                                values[(3 * len(values)) // 4],
                            }
                            for c in thresholds:
                                for op in ("<=", ">", ">=", "<"):
                                    stats.candidates_checked += 1
                                    checkpoint(candidates=1)
                                    cand = ECFD(
                                        lhs, (a,), {cond_attr: (op, c)}
                                    )
                                    matching = cand.matching_indices(
                                        relation
                                    )
                                    if len(matching) < min_support:
                                        stats.candidates_pruned += 1
                                        continue
                                    if cand.holds(relation):
                                        found.append(cand)
        except BudgetExhausted as exc:
            stats.mark_exhausted(exc.reason)
    # Keep only the widest-coverage eCFD per (lhs, rhs) pair.
    best: dict[tuple, ECFD] = {}
    coverage: dict[tuple, int] = {}
    for dep in found:
        key = (dep.lhs, dep.rhs)
        cover = len(dep.matching_indices(relation))
        if cover > coverage.get(key, -1):
            coverage[key] = cover
            best[key] = dep
    return DiscoveryResult(
        dependencies=list(best.values()),
        stats=stats,
        algorithm="eCFD-predicates",
    )


def pattern_confidence(relation: Relation, cfd: CFD) -> float:
    """Fraction of pattern-matching tuples kept by the embedded FD.

    1.0 means the CFD holds exactly on its matching subset.
    """
    matching = cfd.matching_indices(relation)
    if not matching:
        return 1.0
    sub = relation.take(matching)
    kept = len(cfd.embedded.keeps(sub))
    return kept / len(sub)


def candidate_patterns(
    relation: Relation, fd: FD, max_constants: int = 1
) -> list[Pattern]:
    """Candidate tableau rows for an embedded FD.

    All patterns conditioning at most ``max_constants`` LHS attributes
    on observed values, ordered general-first (fewer constants first).
    """
    out: list[Pattern] = [Pattern()]
    for k in range(1, max_constants + 1):
        for attrs in combinations(fd.lhs, k):
            value_sets = [
                sorted(set(relation.column(a)), key=repr) for a in attrs
            ]

            def expand(prefix: dict, depth: int) -> None:
                if depth == len(attrs):
                    out.append(Pattern(dict(prefix)))
                    return
                for v in value_sets[depth]:
                    prefix[attrs[depth]] = v
                    expand(prefix, depth + 1)
                    del prefix[attrs[depth]]

            expand({}, 0)
    return out


def greedy_tableau(
    relation: Relation,
    fd: FD,
    support_target: float = 0.8,
    min_confidence: float = 1.0,
    max_constants: int = 1,
) -> CFDTableau:
    """Golab et al.'s greedy near-optimal tableau for a given FD.

    Repeatedly add the *valid* candidate pattern (confidence >=
    ``min_confidence`` on its matching subset) with the largest
    marginal tuple coverage, until ``support_target`` of the relation
    is covered or no candidate adds coverage.
    """
    tableau = CFDTableau(fd.lhs, fd.rhs)
    n = len(relation)
    if n == 0:
        return tableau
    covered: set[int] = set()
    candidates = candidate_patterns(relation, fd, max_constants)
    scored: list[tuple[Pattern, set[int]]] = []
    for p in candidates:
        cfd = CFD(fd.lhs, fd.rhs, p)
        if pattern_confidence(relation, cfd) >= min_confidence:
            scored.append((p, set(cfd.matching_indices(relation))))
    while len(covered) / n < support_target:
        best: tuple[Pattern, set[int]] | None = None
        best_gain = 0
        for p, matches in scored:
            gain = len(matches - covered)
            if gain > best_gain:
                best, best_gain = (p, matches), gain
        if best is None:
            break
        tableau.add(best[0])
        covered |= best[1]
        scored = [s for s in scored if s[0] is not best[0]]
    return tableau
