"""The survey's own artifacts: Tables 2/3/4 and Figs 1B/2/3, executable."""

from .registry import (
    APPLICATIONS,
    COMPLEXITY,
    NOTATIONS,
    NotationInfo,
    ROOT_YEAR,
    applications_of,
    notations_by_branch,
    tractable_problems,
)
from .figures import (
    fig1a_family_tree,
    fig1b_publications,
    fig2_timeline,
    fig3_complexity,
    render_fig1b,
    render_fig2,
    render_fig3,
    timeline_milestones,
)
from .tables import (
    TABLE4_NOTATIONS,
    consistency_problems,
    render_table2,
    render_table3,
    render_table4,
)

__all__ = [
    "NotationInfo",
    "NOTATIONS",
    "APPLICATIONS",
    "COMPLEXITY",
    "ROOT_YEAR",
    "notations_by_branch",
    "applications_of",
    "tractable_problems",
    "fig1a_family_tree",
    "fig1b_publications",
    "fig2_timeline",
    "fig3_complexity",
    "render_fig1b",
    "render_fig2",
    "render_fig3",
    "timeline_milestones",
    "TABLE4_NOTATIONS",
    "render_table2",
    "render_table3",
    "render_table4",
    "consistency_problems",
]
