"""Rendering the survey's tables from the machine-readable registry."""

from __future__ import annotations

from .registry import APPLICATIONS, NOTATIONS, notations_by_branch

#: Table 4: the paper's notation glossary, verbatim.
TABLE4_NOTATIONS: dict[str, str] = {
    "R": "relation scheme",
    "X, Y": "attribute sets in R",
    "A, B": "single attributes in R",
    "r": "relation instance",
    "t": "tuple in r",
    "t_p": "pattern tuple of conditions",
}


def _grid(rows: list[list[str]]) -> str:
    widths = [
        max(len(r[c]) for r in rows) for c in range(len(rows[0]))
    ]
    lines = []
    for k, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row))
        )
        if k == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_table2() -> str:
    """Table 2: the index of data dependencies."""
    rows = [
        ["type", "abbrev", "name", "year", "#pubs", "definition",
         "discovery", "application"]
    ]
    for branch, infos in notations_by_branch().items():
        for info in infos:
            rows.append(
                [
                    branch,
                    info.abbrev,
                    info.full_name,
                    str(info.year),
                    "-" if info.publications is None
                    else str(info.publications),
                    " ".join(info.definition_refs) or "-",
                    " ".join(info.discovery_refs) or "-",
                    " ".join(info.application_refs) or "-",
                ]
            )
    return "Table 2 — index of data dependencies:\n" + _grid(rows)


def render_table3() -> str:
    """Table 3: applications of data dependencies."""
    rows = [["application", "categorical", "heterogeneous", "numerical"]]
    for app, branches in APPLICATIONS.items():
        rows.append(
            [
                app,
                ", ".join(branches.get("categorical", ())) or "-",
                ", ".join(branches.get("heterogeneous", ())) or "-",
                ", ".join(branches.get("numerical", ())) or "-",
            ]
        )
    return "Table 3 — applications of data dependencies:\n" + _grid(rows)


def render_table4() -> str:
    """Table 4: notations."""
    rows = [["symbol", "description"]]
    rows.extend([s, d] for s, d in TABLE4_NOTATIONS.items())
    return "Table 4 — notations:\n" + _grid(rows)


def consistency_problems() -> list[str]:
    """Cross-check the registry against the implemented family tree.

    Returns human-readable inconsistencies (empty = registry, classes
    and Fig. 1 graph agree).  Run by tests and the bench harness.
    """
    from ..core.familytree import BRANCHES, CLASSES

    problems: list[str] = []
    for abbrev, info in NOTATIONS.items():
        if abbrev not in CLASSES:
            problems.append(f"{abbrev} has no implementing class")
        if BRANCHES.get(abbrev) != info.branch:
            problems.append(
                f"{abbrev}: registry branch {info.branch!r} != tree "
                f"branch {BRANCHES.get(abbrev)!r}"
            )
    for app, branches in APPLICATIONS.items():
        for branch, names in branches.items():
            for name in names:
                if name in ("FD", "OFD"):
                    continue  # roots appear in several branches' rows
                if name not in NOTATIONS:
                    problems.append(
                        f"Table 3 {app!r} mentions unknown {name}"
                    )
    return problems
