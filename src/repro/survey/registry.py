"""Machine-readable Tables 2 and 3 and Fig. 3 of the survey.

:data:`NOTATIONS` transcribes Table 2 — for each dependency notation:
full name, data-type branch, year proposed, reference keys for
definition/discovery/application, and the Google-Scholar publication
count shown in Fig. 1B.

Transcription note: the publication-count column of the source text is
mis-aligned around the CFD/eCFD rows; we assign 471 to CFDs and 76 to
eCFDs, consistent with Fig. 1B's narrative that "the extensions over
the conventional categorical data such as CFDs attract more attention".
AMVDs (2020) have no count in the table and are recorded as None.

:data:`APPLICATIONS` transcribes Table 3 (application -> data type ->
notations).  :data:`COMPLEXITY` transcribes Fig. 3's discovery/
implication complexity landscape.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NotationInfo:
    """One row of Table 2."""

    abbrev: str
    full_name: str
    branch: str
    year: int
    publications: int | None
    definition_refs: tuple[str, ...] = ()
    discovery_refs: tuple[str, ...] = ()
    application_refs: tuple[str, ...] = ()


NOTATIONS: dict[str, NotationInfo] = {
    info.abbrev: info
    for info in [
        # -- categorical (Section 2) ---------------------------------
        NotationInfo(
            "SFD", "Soft Functional Dependencies", "categorical", 2004, 327,
            ("[55]",), ("[55]", "[60]"), ("[55]", "[60]"),
        ),
        NotationInfo(
            "PFD", "Probabilistic Functional Dependencies", "categorical",
            2009, 55, ("[104]",), ("[104]",), ("[104]",),
        ),
        NotationInfo(
            "AFD", "Approximate Functional Dependencies", "categorical",
            1995, 248, ("[61]",), ("[53]", "[54]"), ("[111]",),
        ),
        NotationInfo(
            "NUD", "Numerical Dependencies", "categorical", 1981, 404,
            ("[50]",), (), ("[22]",),
        ),
        NotationInfo(
            "CFD", "Conditional Functional Dependencies", "categorical",
            2007, 471, ("[11]", "[34]"),
            ("[18]", "[35]", "[36]", "[49]", "[113]"), ("[25]", "[40]"),
        ),
        NotationInfo(
            "eCFD", "extended CFDs", "categorical", 2008, 76,
            ("[14]",), ("[114]",), ("[14]",),
        ),
        NotationInfo(
            "MVD", "Multivalued Dependencies", "categorical", 1977, 191,
            ("[30]",), ("[82]",), ("[80]",),
        ),
        NotationInfo(
            "FHD", "Full Hierarchical Dependencies", "categorical", 1978, 1,
            ("[27]", "[52]"), (), (),
        ),
        NotationInfo(
            "AMVD", "Approximate MVDs", "categorical", 2020, None,
            ("[59]",), ("[59]",), ("[59]",),
        ),
        # -- heterogeneous (Section 3) ------------------------------------
        NotationInfo(
            "MFD", "Metric Functional Dependencies", "heterogeneous", 2009,
            86, ("[64]",), ("[64]",), ("[64]",),
        ),
        NotationInfo(
            "NED", "Neighborhood Dependencies", "heterogeneous", 2001, 15,
            ("[4]",), ("[4]",), ("[4]",),
        ),
        NotationInfo(
            "DD", "Differential Dependencies", "heterogeneous", 2011, 109,
            ("[86]",), ("[65]", "[86]", "[88]", "[89]"),
            ("[86]", "[93]", "[94]", "[95]", "[96]"),
        ),
        NotationInfo(
            "CDD", "Conditional Differential Dependencies", "heterogeneous",
            2015, 3, ("[66]",), ("[66]",), ("[66]",),
        ),
        NotationInfo(
            "CD", "Comparable Dependencies", "heterogeneous", 2011, 18,
            ("[91]", "[92]"), ("[92]",), ("[92]",),
        ),
        NotationInfo(
            "PAC", "Probabilistic Approximate Constraints", "heterogeneous",
            2003, 39, ("[63]",), ("[63]",), ("[63]",),
        ),
        NotationInfo(
            "FFD", "Fuzzy Functional Dependencies", "heterogeneous", 1988,
            496, ("[79]",), ("[109]", "[108]"), ("[13]", "[56]", "[71]"),
        ),
        NotationInfo(
            "MD", "Matching Dependencies", "heterogeneous", 2009, 197,
            ("[33]", "[37]"), ("[85]", "[87]", "[90]"),
            ("[37]", "[38]", "[41]"),
        ),
        NotationInfo(
            "CMD", "Conditional Matching Dependencies", "heterogeneous",
            2017, 15, ("[110]",), ("[110]",), ("[110]",),
        ),
        # -- numerical (Section 4) ------------------------------------------
        NotationInfo(
            "OFD", "Ordered Functional Dependencies", "numerical", 1999, 27,
            ("[76]", "[77]"), (), ("[75]",),
        ),
        NotationInfo(
            "OD", "Order Dependencies", "numerical", 1982, 27,
            ("[28]",), ("[67]", "[99]"), ("[28]", "[100]"),
        ),
        NotationInfo(
            "DC", "Denial Constraints", "numerical", 2005, 52,
            ("[8]", "[9]"), ("[10]", "[19]", "[21]", "[78]"),
            ("[8]", "[9]", "[20]", "[70]", "[98]"),
        ),
        NotationInfo(
            "SD", "Sequential Dependencies", "numerical", 2009, 97,
            ("[48]",), ("[48]",), ("[48]",),
        ),
        NotationInfo(
            "CSD", "Conditional Sequential Dependencies", "numerical", 2009,
            97, ("[48]",), ("[48]",), ("[48]",),
        ),
    ]
}

#: FD itself (the root; not a Table 2 row but needed for Figs 1-2).
ROOT_YEAR = 1971  # Codd's further-normalization report [24]

#: Table 3: application -> data-type branch -> notations.
APPLICATIONS: dict[str, dict[str, tuple[str, ...]]] = {
    "violation detection": {
        "categorical": ("FD", "PFD", "CFD", "eCFD"),
        "heterogeneous": ("MFD", "CD", "CDD", "PAC"),
        "numerical": ("OD", "DC", "SD", "CSD"),
    },
    "data repairing": {
        "categorical": ("FD", "CFD", "eCFD", "MVD"),
        "heterogeneous": ("NED", "DD", "CDD", "MD", "CMD"),
        "numerical": ("DC", "OD"),
    },
    "query optimization": {
        "categorical": ("SFD", "AFD", "NUD", "AMVD"),
        "heterogeneous": ("DD", "CD", "PAC", "FFD"),
        "numerical": ("OD",),
    },
    "consistent query answering": {
        "categorical": ("FD",),
        "heterogeneous": ("OFD", "DC"),
        "numerical": (),
    },
    "data deduplication": {
        "categorical": ("CFD",),
        "heterogeneous": ("DD", "CD", "FFD", "MD", "CMD"),
        "numerical": (),
    },
    "data partition": {
        "categorical": (),
        "heterogeneous": ("DD", "MD"),
        "numerical": (),
    },
    "schema normalization": {
        "categorical": ("FD", "PFD", "MVD", "FHD"),
        "heterogeneous": (),
        "numerical": (),
    },
    "model fairness": {
        "categorical": ("MVD",),
        "heterogeneous": (),
        "numerical": (),
    },
}

#: Fig. 3: discovery/implication problems and their complexity classes.
#: ``demo`` names the module/function here that exhibits the tractable
#: cases live (the benchmark harness runs them).
COMPLEXITY: dict[str, dict[str, str]] = {
    "FD minimal-cover discovery": {
        "class": "output exponential",
        "source": "[72], [73], [83]",
        "demo": "repro.discovery.tane",
    },
    "minimum key (size < k)": {
        "class": "NP-complete",
        "source": "[5]",
        "demo": "",
    },
    "CFD optimal tableau generation": {
        "class": "NP-complete",
        "source": "[49]",
        "demo": "repro.discovery.cfd_discovery.greedy_tableau (heuristic)",
    },
    "CFD implication": {
        "class": "coNP-complete",
        "source": "[11]",
        "demo": "",
    },
    "eCFD implication": {
        "class": "coNP-complete",
        "source": "[14]",
        "demo": "",
    },
    "NED discovery": {
        "class": "NP-hard",
        "source": "[4]",
        "demo": "",
    },
    "DD implication": {
        "class": "coNP-complete",
        "source": "[86]",
        "demo": "",
    },
    "CDD discovery": {
        "class": "NP-hard (no easier than CFDs)",
        "source": "[66], Section 3.3.5",
        "demo": "",
    },
    "CD error/confidence validation": {
        "class": "NP-complete",
        "source": "[91]",
        "demo": "repro.core.heterogeneous.cd.CD.g3_error (greedy)",
    },
    "MD concise matching keys": {
        "class": "NP-complete",
        "source": "[90]",
        "demo": "repro.discovery.md_discovery.concise_matching_keys (greedy)",
    },
    "CMD g3 validation": {
        "class": "NP-complete",
        "source": "[110]",
        "demo": "repro.core.heterogeneous.md.CMD.g3_error (greedy)",
    },
    "OD implication": {
        "class": "coNP-complete",
        "source": "[101]",
        "demo": "",
    },
    "DC discovery": {
        "class": "NP-hard (subsumes CFDs)",
        "source": "Section 1.4.2",
        "demo": "repro.discovery.dc_discovery (bounded width)",
    },
    "MFD verification": {
        "class": "PTIME (O(n^2))",
        "source": "[64]",
        "demo": "repro.discovery.mfd_verify",
    },
    "SD confidence computation": {
        "class": "PTIME",
        "source": "[48]",
        "demo": "repro.discovery.sd_discovery.sd_confidence",
    },
    "CSD tableau discovery": {
        "class": "PTIME (quadratic DP)",
        "source": "[48]",
        "demo": "repro.discovery.sd_discovery.discover_csd_tableau",
    },
}


def notations_by_branch() -> dict[str, list[NotationInfo]]:
    """Table 2 rows grouped by data-type branch, original order."""
    out: dict[str, list[NotationInfo]] = {}
    for info in NOTATIONS.values():
        out.setdefault(info.branch, []).append(info)
    return out


def applications_of(notation: str) -> list[str]:
    """Which Table 3 application rows mention a notation."""
    return [
        app
        for app, branches in APPLICATIONS.items()
        if any(notation in names for names in branches.values())
    ]


def tractable_problems() -> list[str]:
    """Fig. 3's PTIME problems (the family tree's tractable frontier)."""
    return sorted(
        name
        for name, meta in COMPLEXITY.items()
        if meta["class"].startswith("PTIME")
    )
