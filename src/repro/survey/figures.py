"""Regenerating the survey's figures as data series + ASCII renderings.

* :func:`fig1a_family_tree` — the extension graph (delegates to
  :mod:`repro.core.familytree`);
* :func:`fig1b_publications` — publications per notation (bar series);
* :func:`fig2_timeline` — proposal timeline 1977-2020;
* :func:`fig3_complexity` — the discovery-complexity landscape.

Each returns structured data (for the benchmark harness to print and
the tests to assert) plus a ``render_*`` companion producing the ASCII
figure.
"""

from __future__ import annotations

from ..core.familytree import DEFAULT_TREE, FamilyTree
from .registry import COMPLEXITY, NOTATIONS


def fig1a_family_tree() -> FamilyTree:
    """Fig. 1A: the family tree of extensions."""
    return DEFAULT_TREE


def fig1b_publications() -> list[tuple[str, int]]:
    """Fig. 1B series: (notation, #publications), descending.

    Notations without a recorded count (AMVDs) are omitted, as in the
    source figure.
    """
    pairs = [
        (info.abbrev, info.publications)
        for info in NOTATIONS.values()
        if info.publications is not None
    ]
    return sorted(pairs, key=lambda p: (-p[1], p[0]))


def render_fig1b(width: int = 50) -> str:
    """ASCII bar chart of Fig. 1B."""
    series = fig1b_publications()
    top = series[0][1]
    lines = ["Fig. 1B — publications using each data dependency:"]
    for name, count in series:
        bar = "#" * max(1, round(count / top * width))
        lines.append(f"{name:>5} {bar} {count}")
    return "\n".join(lines)


def fig2_timeline() -> list[tuple[int, list[str]]]:
    """Fig. 2 series: (year, notations proposed that year), ascending."""
    by_year: dict[int, list[str]] = {}
    for info in NOTATIONS.values():
        by_year.setdefault(info.year, []).append(info.abbrev)
    return sorted((y, sorted(names)) for y, names in by_year.items())


def render_fig2() -> str:
    """ASCII timeline of Fig. 2."""
    lines = ["Fig. 2 — timeline of data dependency proposals:"]
    for year, names in fig2_timeline():
        lines.append(f"  {year}: {', '.join(names)}")
    return "\n".join(lines)


def timeline_milestones() -> dict[str, int]:
    """The milestones the paper calls out in Section 1.4.1."""
    return {
        "AFDs (first approximate extensions)": NOTATIONS["AFD"].year,
        "SFDs (statistical line continues)": NOTATIONS["SFD"].year,
        "PFDs (statistical line continues)": NOTATIONS["PFD"].year,
        "CFDs (conditional line starts)": NOTATIONS["CFD"].year,
        "CDDs (conditional line continues)": NOTATIONS["CDD"].year,
        "CMDs (conditional line continues)": NOTATIONS["CMD"].year,
    }


def fig3_complexity() -> dict[str, str]:
    """Fig. 3 series: problem -> complexity class."""
    return {name: meta["class"] for name, meta in COMPLEXITY.items()}


def render_fig3() -> str:
    """ASCII rendering of Fig. 3, grouped by complexity class."""
    groups: dict[str, list[str]] = {}
    for name, meta in COMPLEXITY.items():
        key = meta["class"]
        groups.setdefault(key, []).append(f"{name} ({meta['source']})")
    lines = ["Fig. 3 — difficulties of dependency discovery problems:"]
    order = sorted(
        groups,
        key=lambda k: (not k.startswith("PTIME"), k),
    )
    for key in order:
        lines.append(f"\n[{key}]")
        for item in sorted(groups[key]):
            lines.append(f"  {item}")
    return "\n".join(lines)
