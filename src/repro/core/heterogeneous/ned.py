"""Neighborhood dependencies (NEDs) — Section 3.2.

An NED ``A1^α1 ... An^αn -> B1^β1 ... Bm^βm`` states: any two tuples
within distance ``αi`` on every LHS attribute must be within ``βj`` on
every RHS attribute.  MFDs are the special case with all LHS thresholds
0 (Section 3.2.2).

Worked example (Table 6): ``ned1: name^1 address^5 -> street^5`` —
t2 and t6 have name distance 0 <= 1 and address distance 1 <= 5, so
their street distance 3 must be (and is) <= 5.

The P-neighborhood prediction method of [4] (Section 3.2.4) lives in
:mod:`repro.quality.imputation`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ...metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ...relation.relation import Relation
from ..base import DependencyError, PairwiseDependency
from ..categorical.fd import FD
from .constraints import SimilarityPredicate, coerce_predicates
from .mfd import MFD


class NED(PairwiseDependency):
    """A neighborhood dependency between two neighborhood predicates."""

    kind = "NED"

    def __init__(
        self,
        lhs: Mapping[str, float] | Sequence[SimilarityPredicate],
        rhs: Mapping[str, float] | Sequence[SimilarityPredicate],
        *,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.lhs = coerce_predicates(lhs)
        self.rhs = coerce_predicates(rhs)
        if not self.lhs or not self.rhs:
            raise DependencyError("NED needs predicates on both sides")
        self.registry = registry

    def __str__(self) -> str:
        left = " ".join(str(p) for p in self.lhs)
        right = " ".join(str(p) for p in self.rhs)
        return f"{left} -> {right}"

    def __repr__(self) -> str:
        return f"NED({self.lhs!r}, {self.rhs!r})"

    def attributes(self) -> tuple[str, ...]:
        return tuple(
            dict.fromkeys(
                [p.attribute for p in self.lhs]
                + [p.attribute for p in self.rhs]
            )
        )

    # -- semantics ------------------------------------------------------

    def lhs_agrees(self, relation: Relation, i: int, j: int) -> bool:
        """Whether a pair agrees on the LHS neighborhood predicate."""
        return all(
            p.satisfied(relation, i, j, self.registry) for p in self.lhs
        )

    def rhs_agrees(self, relation: Relation, i: int, j: int) -> bool:
        return all(
            p.satisfied(relation, i, j, self.registry) for p in self.rhs
        )

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        if not self.lhs_agrees(relation, i, j):
            return None
        for p in self.rhs:
            if not p.satisfied(relation, i, j, self.registry):
                metric = p.resolve_metric(relation, self.registry)
                d = metric.distance(
                    relation.value_at(i, p.attribute),
                    relation.value_at(j, p.attribute),
                )
                return (
                    f"LHS neighborhood agrees but {p.attribute} distance "
                    f"{d:g} > {p.threshold:g}"
                )
        return None

    # -- support/confidence (discovery objectives, Section 3.2.3) ----------

    def support_and_confidence(self, relation: Relation) -> tuple[int, float]:
        """(#pairs agreeing on LHS, fraction of those also meeting RHS)."""
        from ...plan import guard_pairs, plan_enabled

        if plan_enabled():
            agreeing = guard_pairs(self, relation, self.lhs_agrees)
            good = sum(
                1 for i, j in agreeing if self.rhs_agrees(relation, i, j)
            )
            agree = len(agreeing)
            return agree, (good / agree if agree else 1.0)
        agree = 0
        good = 0
        for i, j in relation.tuple_pairs():
            if self.lhs_agrees(relation, i, j):
                agree += 1
                if self.rhs_agrees(relation, i, j):
                    good += 1
        confidence = good / agree if agree else 1.0
        return agree, confidence

    # -- family tree ----------------------------------------------------------

    @classmethod
    def from_mfd(cls, dep: MFD) -> "NED":
        """Embed an MFD as the NED with LHS thresholds 0 (Fig. 1 edge).

        Threshold 0 under the *discrete* metric makes "within 0" mean
        exactly "equal", mirroring the MFD's equality test on X.
        """
        from ...metrics.numeric import DISCRETE

        lhs = [SimilarityPredicate(a, 0.0, DISCRETE) for a in dep.lhs]
        # RHS predicates leave the metric unset so it resolves through the
        # MFD's registry against the relation's typed schema at check time.
        rhs = [SimilarityPredicate(a, dep.delta) for a in dep.rhs]
        return cls(lhs, rhs, registry=dep.registry)

    @classmethod
    def from_fd(cls, dep: FD) -> "NED":
        """Embed an FD via the MFD edge (FD -> MFD -> NED)."""
        return cls.from_mfd(MFD.from_fd(dep))
