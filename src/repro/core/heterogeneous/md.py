"""Matching dependencies (MDs) — Section 3.7 — and conditional MDs.

An MD ``X≈ -> Y⇌`` states: tuples *similar* on the determinant
attributes ``X`` (per-attribute similarity operators with thresholds)
should be *identified* (matched) on ``Y``.  MDs are the constraint
language of record matching; on a single relation, "identified" means
the ``Y``-values agree (the matching operator ⇌ asserts they refer to
the same value and directs dynamic identification).

Worked example (Table 6): ``md1: street≈, region≈ -> zip⇌`` with edit
distance <= 5 on street and <= 2 on region identifies t5/t6's zips.

:class:`CMD` (Section 3.7.5) conditions an MD on a categorical pattern,
like CFDs condition FDs.  :class:`RelativeCandidateKey` captures the
minimal matching keys of [90].
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ...metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ...relation.relation import Relation
from ..base import DependencyError, PairwiseDependency, format_attrs
from ..categorical.fd import FD
from ..categorical.pattern import Pattern
from .constraints import SimilarityPredicate, coerce_predicates


class MD(PairwiseDependency):
    """A matching dependency ``X≈ -> Y⇌``."""

    kind = "MD"

    def __init__(
        self,
        lhs: Mapping[str, float] | Sequence[SimilarityPredicate],
        rhs: Sequence[str] | str,
        *,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.lhs = coerce_predicates(lhs)
        if not self.lhs:
            raise DependencyError("MD left-hand side must be non-empty")
        if isinstance(rhs, str):
            rhs = [rhs]
        self.rhs = tuple(rhs)
        if not self.rhs:
            raise DependencyError("MD right-hand side must be non-empty")
        self.registry = registry

    def __str__(self) -> str:
        left = ", ".join(f"{p.attribute}≈{p.threshold:g}" for p in self.lhs)
        right = ", ".join(f"{a}⇌" for a in self.rhs)
        return f"{left} -> {right}"

    def __repr__(self) -> str:
        return f"MD({self.lhs!r}, {self.rhs!r})"

    def attributes(self) -> tuple[str, ...]:
        return tuple(
            dict.fromkeys([p.attribute for p in self.lhs] + list(self.rhs))
        )

    # -- semantics ----------------------------------------------------------

    def similar_on_lhs(self, relation: Relation, i: int, j: int) -> bool:
        return all(
            p.satisfied(relation, i, j, self.registry) for p in self.lhs
        )

    def identified_on_rhs(self, relation: Relation, i: int, j: int) -> bool:
        return relation.values_at(i, self.rhs) == relation.values_at(
            j, self.rhs
        )

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        if not self.similar_on_lhs(relation, i, j):
            return None
        if self.identified_on_rhs(relation, i, j):
            return None
        return (
            f"similar on {format_attrs(p.attribute for p in self.lhs)} "
            f"but not identified on {format_attrs(self.rhs)}"
        )

    def matches(self, relation: Relation) -> list[tuple[int, int]]:
        """All pairs the MD asserts should be identified (LHS-similar)."""
        from ...plan import guard_pairs, plan_enabled

        if plan_enabled():
            return guard_pairs(self, relation, self.similar_on_lhs)
        return [
            (i, j)
            for i, j in relation.tuple_pairs()
            if self.similar_on_lhs(relation, i, j)
        ]

    # -- evaluation measures (discovery objectives, Section 3.7.3) -----------

    def support(self, relation: Relation) -> float:
        """Fraction of tuple pairs that are LHS-similar."""
        n = len(relation)
        total = n * (n - 1) // 2
        if total == 0:
            return 0.0
        return len(self.matches(relation)) / total

    def confidence(self, relation: Relation) -> float:
        """Fraction of LHS-similar pairs already identified on RHS."""
        matched = self.matches(relation)
        if not matched:
            return 1.0
        good = sum(
            1 for i, j in matched if self.identified_on_rhs(relation, i, j)
        )
        return good / len(matched)

    # -- family tree -----------------------------------------------------------

    @classmethod
    def from_fd(cls, dep: FD) -> "MD":
        """Embed an FD as the MD with exact-match similarity (Fig. 1).

        Threshold 0 under the discrete metric means "similar iff
        equal", and the matching operator over a single relation means
        value equality — together exactly the FD semantics.
        """
        from ...metrics.numeric import DISCRETE

        lhs = [SimilarityPredicate(a, 0.0, DISCRETE) for a in dep.lhs]
        return cls(lhs, list(dep.rhs))


class CMD(MD):
    """A conditional matching dependency — an MD plus a condition.

    The matching rule applies only to pairs whose tuples both match the
    categorical condition pattern (Section 3.7.5).
    """

    kind = "CMD"

    def __init__(
        self,
        lhs: Mapping[str, float] | Sequence[SimilarityPredicate],
        rhs: Sequence[str] | str,
        condition: Pattern | Mapping[str, object] | None = None,
        *,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        super().__init__(lhs, rhs, registry=registry)
        self.condition = (
            condition if isinstance(condition, Pattern) else Pattern(condition)
        )

    def __str__(self) -> str:
        cond = ", ".join(
            f"{a}={e}" for a, e in self.condition.entries().items()
        )
        base = super().__str__()
        return f"[{cond}] {base}" if cond else base

    def __repr__(self) -> str:
        return f"CMD({self.lhs!r}, {self.rhs!r}, {self.condition!r})"

    def attributes(self) -> tuple[str, ...]:
        return tuple(
            dict.fromkeys(
                super().attributes() + tuple(self.condition.entries())
            )
        )

    def matches_condition(self, relation: Relation, i: int) -> bool:
        # Targeted reads: only the condition's own columns, so column
        # routing by attributes() stays faithful.
        attrs = tuple(self.condition.entries())
        record = {a: relation.value_at(i, a) for a in attrs}
        return self.condition.matches(record, attrs)

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        if not (
            self.matches_condition(relation, i)
            and self.matches_condition(relation, j)
        ):
            return None
        return super().pair_violation(relation, i, j)

    def g3_error(self, relation: Relation) -> float:
        """Greedy bound on the removal fraction making the CMD hold.

        Deciding ``g3 <= e`` exactly is NP-complete [110]; the greedy
        max-degree vertex cover gives the standard upper bound.
        """
        pairs = self.violating_pairs(relation)
        if not pairs:
            return 0.0
        removed: set[int] = set()
        remaining = set(pairs)
        while remaining:
            counts: dict[int, int] = {}
            for a, b in remaining:
                counts[a] = counts.get(a, 0) + 1
                counts[b] = counts.get(b, 0) + 1
            worst = max(counts, key=counts.get)
            removed.add(worst)
            remaining = {p for p in remaining if worst not in p}
        return len(removed) / len(relation)

    @classmethod
    def from_md(cls, dep: MD) -> "CMD":
        """Embed an MD as the CMD with the match-all condition."""
        return cls(dep.lhs, list(dep.rhs), None, registry=dep.registry)


def md_implies(general: MD, specific: MD) -> bool:
    """Sound implication test between two MDs ([37]'s deduction core).

    ``general`` implies ``specific`` when every pair that fires
    ``specific``'s LHS also fires ``general``'s LHS (so the matching
    conclusion transfers) and ``general`` identifies at least the
    attributes ``specific`` identifies.  LHS containment holds when
    every predicate of ``general`` is dominated by a *tighter* one of
    ``specific`` on the same attribute (assuming matching metrics).

    Sound but not complete: genuine MD deduction also uses similarity-
    metric properties; this covers the threshold-dominance fragment.
    """
    if not set(specific.rhs) <= set(general.rhs):
        return False
    specific_thresholds = {
        p.attribute: p.threshold for p in specific.lhs
    }
    for p in general.lhs:
        tight = specific_thresholds.get(p.attribute)
        if tight is None or tight > p.threshold:
            return False
    return True


def minimal_md_cover(mds: Sequence[MD]) -> list[MD]:
    """Drop MDs implied (by threshold dominance) by another in the set.

    The redundancy-reduction step of concise matching keys [90].
    """
    out: list[MD] = []
    for md in mds:
        if not any(
            other is not md and md_implies(other, md) for other in mds
        ):
            out.append(md)
    return out


class RelativeCandidateKey:
    """A relative candidate key (RCK): a minimal LHS of matching rules.

    Song & Chen [90]: a concise set of matching keys reduces redundancy
    while retaining coverage and validity.  An RCK here is a set of
    similarity predicates minimal w.r.t. still identifying the target.
    """

    def __init__(
        self,
        predicates: Mapping[str, float] | Sequence[SimilarityPredicate],
        target: Sequence[str] | str,
        *,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.predicates = coerce_predicates(predicates)
        self.md = MD(self.predicates, target, registry=registry)

    def covers(self, relation: Relation, pair: tuple[int, int]) -> bool:
        """Whether this key identifies the given pair."""
        return self.md.similar_on_lhs(relation, pair[0], pair[1])

    def coverage(
        self, relation: Relation, pairs: Sequence[tuple[int, int]]
    ) -> float:
        """Fraction of target pairs this key identifies."""
        if not pairs:
            return 1.0
        return sum(self.covers(relation, p) for p in pairs) / len(pairs)

    def __str__(self) -> str:
        return "RCK(" + ", ".join(str(p) for p in self.predicates) + ")"
