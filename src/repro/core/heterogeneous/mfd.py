"""Metric functional dependencies (MFDs) — Section 3.1.

An MFD ``X ->^δ Y`` keeps the equality test on the determinant ``X``
but relaxes the dependent side: two tuples with equal ``X``-values must
be within metric distance ``δ`` on ``Y``.  ``δ = 0`` recovers an FD
(Section 3.1.2).

Worked example (Table 6): ``mfd1: name, region ->^500 price`` — tuples
t2 and t6 share name/region and differ by 0 <= 500 on price.

Verification (Section 3.1.3) groups tuples by ``X`` and computes each
group's *diameter*; the MFD holds iff every diameter is <= δ.  That
exact check is O(n²) in the worst case; :meth:`MFD.holds_approximate`
implements the cheap 2-approximation via per-group eccentricity from a
pivot.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...metrics.base import Metric
from ...metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import DependencyError, PairwiseDependency, format_attrs
from ..categorical.fd import FD


class MFD(PairwiseDependency):
    """A metric functional dependency ``X ->^δ Y``.

    With multiple dependent attributes, each attribute's distance must
    individually be within ``δ`` (the max-combine of per-attribute
    metrics — the natural product-metric choice).
    """

    kind = "MFD"

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        delta: float = 0.0,
        *,
        registry: MetricRegistry = DEFAULT_REGISTRY,
        metric: Metric | None = None,
    ) -> None:
        if delta < 0:
            raise DependencyError(f"MFD delta must be >= 0, got {delta}")
        self.embedded = FD(lhs, rhs)
        self.lhs = self.embedded.lhs
        self.rhs = self.embedded.rhs
        self.delta = float(delta)
        self.registry = registry if metric is None else MetricRegistry(
            {a: metric for a in self.rhs}
        )

    def __str__(self) -> str:
        return (
            f"{format_attrs(self.lhs)} ->^{self.delta:g} "
            f"{format_attrs(self.rhs)}"
        )

    def __repr__(self) -> str:
        return f"MFD({self.lhs!r}, {self.rhs!r}, delta={self.delta})"

    def attributes(self) -> tuple[str, ...]:
        return self.embedded.attributes()

    # -- semantics --------------------------------------------------------

    def _rhs_distance(self, relation: Relation, i: int, j: int) -> float:
        """Max per-attribute distance over the dependent side."""
        worst = 0.0
        for a in self.rhs:
            metric = self.registry.metric_for(relation.schema[a])
            d = metric.distance(
                relation.value_at(i, a), relation.value_at(j, a)
            )
            worst = max(worst, d)
        return worst

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        if relation.values_at(i, self.lhs) != relation.values_at(j, self.lhs):
            return None
        d = self._rhs_distance(relation, i, j)
        if d <= self.delta:
            return None
        return (
            f"equal {format_attrs(self.lhs)} but {format_attrs(self.rhs)} "
            f"distance {d:g} > {self.delta:g}"
        )

    def holds(self, relation: Relation) -> bool:
        """Exact group-diameter verification ([64], Section 3.1.3)."""
        for diameter in self.group_diameters(relation).values():
            if diameter > self.delta:
                return False
        return True

    def group_diameters(self, relation: Relation) -> dict[tuple, float]:
        """Max pairwise dependent-side distance per equal-X group."""
        out: dict[tuple, float] = {}
        for x_value, indices in relation.group_by(self.lhs).items():
            diameter = 0.0
            for a, i in enumerate(indices):
                for j in indices[a + 1:]:
                    diameter = max(
                        diameter, self._rhs_distance(relation, i, j)
                    )
            out[x_value] = diameter
        return out

    def holds_approximate(self, relation: Relation) -> bool:
        """One-pivot eccentricity check — a linear-time 2-approximation.

        Per group, distances from the first tuple bound the diameter:
        ecc <= diameter <= 2·ecc (triangle inequality).  Accepting when
        ``ecc <= δ/2`` guarantees no false accepts at δ; rejecting when
        ``ecc > δ`` guarantees no false rejects.  In between, fall back
        to the exact check for that group only.
        """
        for indices in relation.group_by(self.lhs).values():
            if len(indices) < 2:
                continue
            pivot = indices[0]
            ecc = max(
                self._rhs_distance(relation, pivot, t) for t in indices[1:]
            )
            if ecc > self.delta:
                return False
            if 2 * ecc <= self.delta:
                continue
            # Uncertain band: exact diameter for this group.
            for a, i in enumerate(indices):
                for j in indices[a + 1:]:
                    if self._rhs_distance(relation, i, j) > self.delta:
                        return False
        return True

    # -- family tree ----------------------------------------------------------

    @classmethod
    def from_fd(cls, dep: FD) -> "MFD":
        """Embed an FD as the MFD with δ = 0 under the discrete metric.

        δ = 0 under *any* metric satisfying identity of indiscernibles
        makes "within distance 0" mean "equal", so the default registry
        works too; the discrete metric makes the equivalence obvious.
        """
        from ...metrics.numeric import DISCRETE

        return cls(dep.lhs, dep.rhs, delta=0.0, metric=DISCRETE)
