"""Probabilistic approximate constraints (PACs) — Section 3.5.

A PAC ``X_Δ ->^δ Y_ε`` combines distance tolerance with probability:
among tuple pairs within ``Δ`` on every ``X``-attribute, at least a
fraction ``δ`` must be within ``ε`` on every ``Y``-attribute.

Worked example (Table 6): ``pac1: price_100 ->^0.9 tax_10`` — 11 pairs
are within 100 on price, 8 of them within 10 on tax, confidence
8/11 ≈ 0.727 < 0.9, so r6 does **not** satisfy pac1.  Asserted in tests.

NEDs are PACs with δ = 1 (Section 3.5.2).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ...metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ...relation.relation import Relation
from ..base import DependencyError, MeasuredDependency
from ..violation import Violation, ViolationSet
from .constraints import SimilarityPredicate, coerce_predicates
from .ned import NED


class PAC(MeasuredDependency):
    """A probabilistic approximate constraint ``X_Δ ->^δ Y_ε``."""

    kind = "PAC"
    measure_direction = ">="

    def __init__(
        self,
        lhs: Mapping[str, float] | Sequence[SimilarityPredicate],
        rhs: Mapping[str, float] | Sequence[SimilarityPredicate],
        confidence: float = 1.0,
        *,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        if not 0.0 < confidence <= 1.0:
            raise DependencyError(
                f"PAC confidence must be in (0, 1], got {confidence}"
            )
        self.lhs = coerce_predicates(lhs)
        self.rhs = coerce_predicates(rhs)
        if not self.lhs or not self.rhs:
            raise DependencyError("PAC needs predicates on both sides")
        self.confidence = confidence
        self.registry = registry

    @property
    def threshold(self) -> float:
        return self.confidence

    def __str__(self) -> str:
        left = " ".join(f"{p.attribute}_{p.threshold:g}" for p in self.lhs)
        right = " ".join(f"{p.attribute}_{p.threshold:g}" for p in self.rhs)
        return f"{left} ->^{self.confidence:g} {right}"

    def __repr__(self) -> str:
        return (
            f"PAC({self.lhs!r}, {self.rhs!r}, confidence={self.confidence})"
        )

    def attributes(self) -> tuple[str, ...]:
        return tuple(
            dict.fromkeys(
                [p.attribute for p in self.lhs]
                + [p.attribute for p in self.rhs]
            )
        )

    # -- semantics -----------------------------------------------------------

    def _lhs_close(self, relation: Relation, i: int, j: int) -> bool:
        return all(
            p.satisfied(relation, i, j, self.registry) for p in self.lhs
        )

    def _rhs_close(self, relation: Relation, i: int, j: int) -> bool:
        return all(
            p.satisfied(relation, i, j, self.registry) for p in self.rhs
        )

    def pair_counts(self, relation: Relation) -> tuple[int, int]:
        """(#pairs within Δ on X, #of those also within ε on Y)."""
        from ...plan import guard_pairs, plan_enabled

        if plan_enabled():
            close_pairs = guard_pairs(self, relation, self._lhs_close)
            good = sum(
                1
                for i, j in close_pairs
                if self._rhs_close(relation, i, j)
            )
            return len(close_pairs), good
        close = 0
        good = 0
        for i, j in relation.tuple_pairs():
            if self._lhs_close(relation, i, j):
                close += 1
                if self._rhs_close(relation, i, j):
                    good += 1
        return close, good

    def measure(self, relation: Relation) -> float:
        """Pr(Y within ε | X within Δ); 1.0 when no pair qualifies."""
        close, good = self.pair_counts(relation)
        return good / close if close else 1.0

    def violations(self, relation: Relation) -> ViolationSet:
        """The X-close pairs exceeding the Y tolerance."""
        from ...plan import context_for, execute_pairs, plan_enabled, plan_for

        label = self.label()

        def _verify(i: int, j: int):
            if self._lhs_close(relation, i, j) and not self._rhs_close(
                relation, i, j
            ):
                return (
                    (i, j),
                    Violation(label, (i, j), "within Δ on X but beyond ε on Y"),
                )
            return None

        if plan_enabled():
            return ViolationSet(
                execute_pairs(plan_for(self), context_for(relation), _verify)
            )
        vs = ViolationSet()
        for i, j in relation.tuple_pairs():
            hit = _verify(i, j)
            if hit is not None:
                vs.add(hit[1])
        return vs

    # -- family tree --------------------------------------------------------

    @classmethod
    def from_ned(cls, dep: NED) -> "PAC":
        """Embed an NED as the PAC with δ = 1 (Fig. 1 edge)."""
        return cls(dep.lhs, dep.rhs, confidence=1.0, registry=dep.registry)
