"""Dependencies over heterogeneous data (Section 3 of the survey).

Equality gives way to distance/similarity metrics: on the dependent
side only (MFDs), on both sides (NEDs, DDs), across synonym attributes
(CDs), with probability (PACs), with fuzzy resemblance (FFDs), and as
record-matching rules (MDs, CMDs).
"""

from .constraints import (
    DifferentialFunction,
    Interval,
    SimilarityPredicate,
    coerce_predicates,
)
from .mfd import MFD
from .ned import NED
from .dd import CDD, DD
from .cd import CD, SimilarityFunction
from .pac import PAC
from .ffd import FFD
from .md import CMD, MD, RelativeCandidateKey, md_implies, minimal_md_cover

__all__ = [
    "Interval",
    "DifferentialFunction",
    "SimilarityPredicate",
    "coerce_predicates",
    "MFD",
    "NED",
    "DD",
    "CDD",
    "CD",
    "SimilarityFunction",
    "PAC",
    "FFD",
    "MD",
    "CMD",
    "RelativeCandidateKey",
    "md_implies",
    "minimal_md_cover",
]
