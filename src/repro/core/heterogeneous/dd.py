"""Differential dependencies (DDs) — Section 3.3 — and conditional DDs.

A DD ``φ[X] -> φ[Y]`` states that any two tuples compatible with the
differential function ``φ[X]`` (per-attribute distance *ranges*, which
can express "similar" ``<= b`` as well as "dissimilar" ``>= b``) must
be compatible with ``φ[Y]``.  DDs extend NEDs, whose predicates only
express the "similar" side (Section 3.3.2).

Worked examples (Table 6)::

    dd1: name(<=1), street(<=5) -> address(<=5)
    dd2: street(>=10) -> address(>5)     # "dissimilar implies dissimilar"

:class:`CDD` (Section 3.3.5) adds a categorical condition pattern: the
DD needs to hold only among tuples matching the pattern — extending
both DDs (heterogeneous) and CFDs (categorical).
"""

from __future__ import annotations

from collections.abc import Mapping

from ...metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ...relation.relation import Relation
from ..base import DependencyError, PairwiseDependency
from ..categorical.pattern import Pattern
from .constraints import DifferentialFunction, Interval
from .ned import NED


def _as_function(
    spec: DifferentialFunction | Mapping[str, object],
) -> DifferentialFunction:
    if isinstance(spec, DifferentialFunction):
        return spec
    return DifferentialFunction(spec)


class DD(PairwiseDependency):
    """A differential dependency ``φ[X] -> φ[Y]``."""

    kind = "DD"

    def __init__(
        self,
        lhs: DifferentialFunction | Mapping[str, object],
        rhs: DifferentialFunction | Mapping[str, object],
        *,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.lhs = _as_function(lhs)
        self.rhs = _as_function(rhs)
        self.registry = registry

    def __str__(self) -> str:
        return f"{self.lhs} -> {self.rhs}"

    def __repr__(self) -> str:
        return f"DD({self.lhs!r}, {self.rhs!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DD):
            return NotImplemented
        return (
            type(self) is type(other)
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.lhs, self.rhs))

    def attributes(self) -> tuple[str, ...]:
        return tuple(
            dict.fromkeys(self.lhs.attributes() + self.rhs.attributes())
        )

    # -- semantics ----------------------------------------------------------

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        if not self.lhs.compatible(relation, i, j, self.registry):
            return None
        if self.rhs.compatible(relation, i, j, self.registry):
            return None
        dists = self.rhs.distances(relation, i, j, self.registry)
        detail = ", ".join(
            f"{a}: d={d:g} ∉ {self.rhs.ranges[a]}" for a, d in dists.items()
            if not self.rhs.ranges[a].contains(d)
        )
        return f"compatible with φ[X] but violates φ[Y] ({detail})"

    # -- structure (minimality, Section 3.3.3) ---------------------------------

    def subsumes(self, other: "DD") -> bool:
        """Logical subsumption test for minimal-DD pruning.

        ``self`` subsumes ``other`` when self's LHS is *looser* (matches
        at least the pairs other's LHS matches) and self's RHS is
        *tighter* — then ``self`` implies ``other``.
        """
        return self._lhs_looser(other) and self._rhs_tighter(other)

    def _lhs_looser(self, other: "DD") -> bool:
        # self.lhs matches ⊇ pairs of other.lhs: every self constraint
        # must be implied by other's constraints.
        return self.lhs.subsumes(other.lhs)

    def _rhs_tighter(self, other: "DD") -> bool:
        return other.rhs.subsumes(self.rhs)

    # -- family tree ----------------------------------------------------------

    @classmethod
    def from_ned(cls, dep: NED) -> "DD":
        """Embed an NED as the similar-ranges-only DD (Fig. 1 edge)."""
        lhs = DifferentialFunction(
            {p.attribute: Interval.at_most(p.threshold) for p in dep.lhs}
        )
        rhs = DifferentialFunction(
            {p.attribute: Interval.at_most(p.threshold) for p in dep.rhs}
        )
        registry = dep.registry
        for p in list(dep.lhs) + list(dep.rhs):
            if p.metric is not None:
                registry = registry.bind(p.attribute, p.metric)
        return cls(lhs, rhs, registry=registry)


class CDD(DD):
    """A conditional differential dependency — a DD plus a condition.

    The DD applies only to tuple pairs in which *both* tuples match the
    categorical condition pattern (Section 3.3.5's example: "in the
    region of Chicago, similar names imply similar addresses").  CDDs
    thereby extend DDs (condition = match-all) and CFDs (distance
    ranges = equality, i.e. ``<= 0`` under the discrete metric).
    """

    kind = "CDD"

    def __init__(
        self,
        lhs: DifferentialFunction | Mapping[str, object],
        rhs: DifferentialFunction | Mapping[str, object],
        condition: Pattern | Mapping[str, object] | None = None,
        *,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        super().__init__(lhs, rhs, registry=registry)
        self.condition = (
            condition if isinstance(condition, Pattern) else Pattern(condition)
        )

    def __str__(self) -> str:
        cond = ", ".join(
            f"{a}={e}" for a, e in self.condition.entries().items()
        )
        return f"[{cond}] {self.lhs} -> {self.rhs}" if cond else super().__str__()

    def __repr__(self) -> str:
        return f"CDD({self.lhs!r}, {self.rhs!r}, {self.condition!r})"

    def attributes(self) -> tuple[str, ...]:
        return tuple(
            dict.fromkeys(
                super().attributes() + tuple(self.condition.entries())
            )
        )

    def matches_condition(self, relation: Relation, i: int) -> bool:
        # Targeted reads: only the condition's own columns, so column
        # routing by attributes() stays faithful.
        attrs = tuple(self.condition.entries())
        record = {a: relation.value_at(i, a) for a in attrs}
        return self.condition.matches(record, attrs)

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        if not (
            self.matches_condition(relation, i)
            and self.matches_condition(relation, j)
        ):
            return None
        return super().pair_violation(relation, i, j)

    # -- family tree -----------------------------------------------------------

    @classmethod
    def from_dd(cls, dep: DD) -> "CDD":
        """Embed a DD as the CDD with the empty (match-all) condition."""
        return cls(dep.lhs, dep.rhs, None, registry=dep.registry)

    @classmethod
    def from_cfd(cls, dep) -> "CDD":
        """Embed a (variable) CFD as a CDD (Fig. 1 edge).

        The CFD's constants become the CDD condition; the embedded FD's
        equality tests become zero-distance ranges under the discrete
        metric.  Only constant-or-wildcard CFD patterns are supported
        (eCFD operator predicates are not CDD conditions).
        """
        from ...metrics.numeric import DISCRETE
        from ..categorical.cfd import CFD

        if not isinstance(dep, CFD):
            raise DependencyError(f"expected a CFD, got {type(dep).__name__}")
        rhs_constants = {
            a
            for a in dep.rhs
            if not dep.pattern.entry(a).is_wildcard
        }
        if rhs_constants:
            raise DependencyError(
                "CDD embedding supports variable CFDs (wildcard RHS); "
                f"constant RHS cells on {sorted(rhs_constants)}"
            )
        condition = Pattern(
            {
                a: dep.pattern.entry(a)
                for a in dep.lhs
                if not dep.pattern.entry(a).is_wildcard
            }
        )
        lhs = DifferentialFunction(
            {a: Interval.at_most(0.0) for a in dep.lhs}
        )
        rhs = DifferentialFunction(
            {a: Interval.at_most(0.0) for a in dep.rhs}
        )
        registry = MetricRegistry(
            {a: DISCRETE for a in dep.lhs + dep.rhs}
        )
        return cls(lhs, rhs, condition, registry=registry)
