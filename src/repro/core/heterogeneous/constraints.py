"""Distance-constraint primitives shared by the heterogeneous branch.

Section 3 notations constrain *metric distances* rather than equality:

* :class:`Interval` — a (half-)open or closed range of distances, the
  ``{=, <, >, <=, >=}``-specified ranges of DD differential functions;
* :class:`DifferentialFunction` — the paper's ``φ[X]``: a pattern of
  distance ranges over an attribute set, evaluated on tuple pairs;
* :class:`SimilarityPredicate` — one attribute's "similar within α"
  check, the building block of NEDs and MDs.

Metrics are resolved through a :class:`~repro.metrics.MetricRegistry`
so the same dependency object can be checked under different metric
choices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from ...metrics.base import Metric
from ...metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ...relation.relation import Relation

INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A distance range with individually open/closed endpoints."""

    low: float = 0.0
    high: float = INF
    low_open: bool = False
    high_open: bool = False

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty interval: [{self.low}, {self.high}]")

    def contains(self, value: float) -> bool:
        if value < self.low or (self.low_open and value == self.low):
            return False
        if value > self.high or (self.high_open and value == self.high):
            return False
        return True

    # -- constructors mirroring the DD operator notation ------------------

    @classmethod
    def at_most(cls, bound: float) -> "Interval":
        """``<= bound`` — the "similar" range [0, bound]."""
        return cls(0.0, bound)

    @classmethod
    def less_than(cls, bound: float) -> "Interval":
        return cls(0.0, bound, high_open=True)

    @classmethod
    def at_least(cls, bound: float) -> "Interval":
        """``>= bound`` — the "dissimilar" range [bound, inf)."""
        return cls(bound, INF)

    @classmethod
    def greater_than(cls, bound: float) -> "Interval":
        return cls(bound, INF, low_open=True)

    @classmethod
    def exactly(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def between(cls, low: float, high: float) -> "Interval":
        return cls(low, high)

    @classmethod
    def everything(cls) -> "Interval":
        return cls(0.0, INF)

    @classmethod
    def parse(cls, spec: object) -> "Interval":
        """Lenient conversion used by the DD/SD constructors.

        Accepts an :class:`Interval`, a number ``b`` (meaning ``<= b``),
        an ``(op, bound)`` pair, or a ``(low, high)`` numeric pair.
        """
        if isinstance(spec, Interval):
            return spec
        if isinstance(spec, (int, float)):
            return cls.at_most(float(spec))
        if isinstance(spec, tuple) and len(spec) == 2:
            a, b = spec
            if isinstance(a, str):
                op = {"≤": "<=", "≥": ">="}.get(a, a)
                factory = {
                    "<=": cls.at_most,
                    "<": cls.less_than,
                    ">=": cls.at_least,
                    ">": cls.greater_than,
                    "=": cls.exactly,
                }.get(op)
                if factory is None:
                    raise ValueError(f"unknown interval operator {a!r}")
                return factory(float(b))
            return cls.between(float(a), float(b))
        raise ValueError(f"cannot interpret interval spec {spec!r}")

    def is_similarity_range(self) -> bool:
        """True for ranges of the form [0, b] — the NED-expressible case."""
        return self.low == 0.0 and not self.low_open and self.high < INF

    def subsumes(self, other: "Interval") -> bool:
        """True iff every value in ``other`` is also in ``self``."""
        low_ok = self.low < other.low or (
            self.low == other.low and (not self.low_open or other.low_open)
        )
        high_ok = self.high > other.high or (
            self.high == other.high and (not self.high_open or other.high_open)
        )
        return low_ok and high_ok

    def __str__(self) -> str:
        if self.high == INF and self.low == 0.0 and not self.low_open:
            return "[0, inf)"
        if self.high == INF:
            op = ">" if self.low_open else ">="
            return f"{op}{self.low:g}"
        if self.low == 0.0 and not self.low_open:
            op = "<" if self.high_open else "<="
            return f"{op}{self.high:g}"
        if self.low == self.high:
            return f"={self.low:g}"
        lo = "(" if self.low_open else "["
        hi = ")" if self.high_open else "]"
        return f"{lo}{self.low:g}, {self.high:g}{hi}"


class DifferentialFunction:
    """``φ[X]``: per-attribute distance ranges evaluated on tuple pairs.

    A pair of tuples is *compatible* with ``φ[X]`` iff for every
    attribute ``A`` in the function, ``d_A(t1[A], t2[A])`` falls in the
    declared range.
    """

    __slots__ = ("ranges",)

    def __init__(self, ranges: Mapping[str, object]) -> None:
        if not ranges:
            raise ValueError("differential function needs >= 1 attribute")
        self.ranges: dict[str, Interval] = {
            a: Interval.parse(spec) for a, spec in ranges.items()
        }

    def attributes(self) -> tuple[str, ...]:
        return tuple(self.ranges)

    def compatible(
        self,
        relation: Relation,
        i: int,
        j: int,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> bool:
        """Whether tuples ``i, j`` satisfy every distance range."""
        for a, interval in self.ranges.items():
            metric = registry.metric_for(relation.schema[a])
            d = metric.distance(relation.value_at(i, a), relation.value_at(j, a))
            if not interval.contains(d):
                return False
        return True

    def distances(
        self,
        relation: Relation,
        i: int,
        j: int,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> dict[str, float]:
        """The per-attribute distances of a pair (for violation reasons)."""
        out: dict[str, float] = {}
        for a in self.ranges:
            metric = registry.metric_for(relation.schema[a])
            out[a] = metric.distance(
                relation.value_at(i, a), relation.value_at(j, a)
            )
        return out

    def is_similarity_only(self) -> bool:
        """True iff every range is of the form [0, b] (NED-expressible)."""
        return all(iv.is_similarity_range() for iv in self.ranges.values())

    def subsumes(self, other: "DifferentialFunction") -> bool:
        """φ subsumes φ' iff compatible(φ') implies compatible(φ).

        Requires φ's attributes ⊆ φ'-attributes with each φ-range
        containing the corresponding φ'-range.
        """
        for a, interval in self.ranges.items():
            if a not in other.ranges:
                return False
            if not interval.subsumes(other.ranges[a]):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DifferentialFunction):
            return NotImplemented
        return self.ranges == other.ranges

    def __hash__(self) -> int:
        return hash(frozenset(self.ranges.items()))

    def __str__(self) -> str:
        return ", ".join(f"{a}({iv})" for a, iv in self.ranges.items())

    def __repr__(self) -> str:
        return f"DifferentialFunction({{{self}}})"


@dataclass(frozen=True)
class SimilarityPredicate:
    """One attribute's "similar within threshold" test.

    ``threshold`` is a *distance* upper bound (the paper's NED
    definition notes it uses similarity originally but adopts distance
    "for convenience"; we follow the paper).
    """

    attribute: str
    threshold: float
    metric: Metric | None = None

    def resolve_metric(
        self, relation: Relation, registry: MetricRegistry
    ) -> Metric:
        if self.metric is not None:
            return self.metric
        return registry.metric_for(relation.schema[self.attribute])

    def satisfied(
        self,
        relation: Relation,
        i: int,
        j: int,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> bool:
        metric = self.resolve_metric(relation, registry)
        return metric.within(
            relation.value_at(i, self.attribute),
            relation.value_at(j, self.attribute),
            self.threshold,
        )

    def __str__(self) -> str:
        return f"{self.attribute}^{self.threshold:g}"


def coerce_predicates(
    spec: Mapping[str, float] | Sequence[SimilarityPredicate],
) -> tuple[SimilarityPredicate, ...]:
    """Accept ``{attr: threshold}`` or explicit predicate sequences."""
    if isinstance(spec, Mapping):
        return tuple(
            SimilarityPredicate(a, float(t)) for a, t in spec.items()
        )
    return tuple(spec)
