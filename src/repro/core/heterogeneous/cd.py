"""Comparable dependencies (CDs) — Section 3.4.

CDs declare constraints across *heterogeneous attribute names*: a
similarity function ``θ(Ai, Aj)`` carries three similarity operators —
within-``Ai``, cross ``Ai``/``Aj``, and within-``Aj`` — and two tuples
are similar w.r.t. θ when **at least one** of the three evaluates true.
A CD ``∧ θ(Ai, Aj) -> θ(Bi, Bj)`` requires RHS similarity whenever all
LHS similarity functions agree.

Worked example (Section 3.4.1): a dataspace with synonym attributes
(region/city, addr/post); ``cd1: θ(region, city) -> θ(addr, post)``.

NEDs are the special case where each θ is defined over a single
attribute (Section 3.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ...metrics.base import Metric
from ...metrics.registry import DEFAULT_REGISTRY, MetricRegistry
from ...relation.relation import Relation
from ..base import DependencyError, PairwiseDependency
from .ned import NED


@dataclass(frozen=True)
class SimilarityFunction:
    """``θ(Ai, Aj)``: three thresholded comparisons over two attributes.

    Thresholds are *distance* upper bounds; ``None`` disables a
    comparison (the paper's θ may omit operators).  ``attr_j`` may equal
    ``attr_i`` for the single-attribute (NED-compatible) case.
    """

    attr_i: str
    attr_j: str
    threshold_ii: float | None = None
    threshold_ij: float | None = None
    threshold_jj: float | None = None
    metric: Metric | None = None

    def __post_init__(self) -> None:
        if (
            self.threshold_ii is None
            and self.threshold_ij is None
            and self.threshold_jj is None
        ):
            raise DependencyError(
                f"θ({self.attr_i}, {self.attr_j}) needs >= 1 operator"
            )

    def _metric(self, relation: Relation, registry: MetricRegistry) -> Metric:
        if self.metric is not None:
            return self.metric
        return registry.metric_for(relation.schema[self.attr_i])

    def similar(
        self,
        relation: Relation,
        i: int,
        j: int,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> bool:
        """At least one of the three comparisons within its threshold.

        Missing values (``None``) make a comparison fail, never succeed,
        so dataspace tuples lacking an attribute fall through to the
        other comparisons — the tolerance CDs were designed for.
        """
        metric = self._metric(relation, registry)
        vi_i = relation.value_at(i, self.attr_i)
        vj_i = relation.value_at(j, self.attr_i)
        vi_j = relation.value_at(i, self.attr_j) if self.attr_j in relation.schema else None
        vj_j = relation.value_at(j, self.attr_j) if self.attr_j in relation.schema else None

        checks: list[bool] = []
        if self.threshold_ii is not None and vi_i is not None and vj_i is not None:
            checks.append(metric.within(vi_i, vj_i, self.threshold_ii))
        if self.threshold_ij is not None:
            # Cross comparison: i's Ai against j's Aj, and symmetrically.
            if vi_i is not None and vj_j is not None:
                checks.append(metric.within(vi_i, vj_j, self.threshold_ij))
            if vi_j is not None and vj_i is not None:
                checks.append(metric.within(vi_j, vj_i, self.threshold_ij))
        if self.threshold_jj is not None and vi_j is not None and vj_j is not None:
            checks.append(metric.within(vi_j, vj_j, self.threshold_jj))
        return any(checks)

    def __str__(self) -> str:
        parts = []
        if self.threshold_ii is not None:
            parts.append(f"{self.attr_i} ≈_{self.threshold_ii:g} {self.attr_i}")
        if self.threshold_ij is not None:
            parts.append(f"{self.attr_i} ≈_{self.threshold_ij:g} {self.attr_j}")
        if self.threshold_jj is not None:
            parts.append(f"{self.attr_j} ≈_{self.threshold_jj:g} {self.attr_j}")
        return f"θ({self.attr_i}, {self.attr_j}): [{', '.join(parts)}]"


class CD(PairwiseDependency):
    """A comparable dependency ``∧ θ(Ai, Aj) -> θ(Bi, Bj)``."""

    kind = "CD"

    def __init__(
        self,
        lhs: Sequence[SimilarityFunction],
        rhs: SimilarityFunction,
        *,
        registry: MetricRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.lhs = tuple(lhs)
        if not self.lhs:
            raise DependencyError("CD left-hand side must be non-empty")
        self.rhs = rhs
        self.registry = registry

    def __str__(self) -> str:
        left = " ∧ ".join(
            f"θ({f.attr_i}, {f.attr_j})" for f in self.lhs
        )
        return f"{left} -> θ({self.rhs.attr_i}, {self.rhs.attr_j})"

    def __repr__(self) -> str:
        return f"CD({self.lhs!r}, {self.rhs!r})"

    def attributes(self) -> tuple[str, ...]:
        names: list[str] = []
        for f in list(self.lhs) + [self.rhs]:
            names.extend([f.attr_i, f.attr_j])
        return tuple(dict.fromkeys(names))

    def validate_schema(self, schema) -> None:
        # CDs reference synonym attributes that may be absent from a
        # given source's schema; only the primary attribute must exist.
        primary = [f.attr_i for f in list(self.lhs) + [self.rhs]]
        schema.resolve(tuple(dict.fromkeys(primary)))

    # -- semantics ----------------------------------------------------------

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        for f in self.lhs:
            if not f.similar(relation, i, j, self.registry):
                return None
        if self.rhs.similar(relation, i, j, self.registry):
            return None
        return (
            f"all LHS similarity functions agree but "
            f"θ({self.rhs.attr_i}, {self.rhs.attr_j}) fails"
        )

    # -- measures (Section 3.4.3: g3-error and confidence are NP-complete
    #    to optimize; these evaluate a *given* CD, which is polynomial) -----

    def g3_error(self, relation: Relation) -> float:
        """Greedy upper bound on the removal fraction to satisfy the CD.

        Exact minimization is NP-complete [91]; we greedily drop the
        tuple participating in most violations until none remain — the
        standard vertex-cover-style heuristic.
        """
        pairs = self.violating_pairs(relation)
        if not pairs:
            return 0.0
        removed: set[int] = set()
        remaining = set(pairs)
        while remaining:
            counts: dict[int, int] = {}
            for a, b in remaining:
                counts[a] = counts.get(a, 0) + 1
                counts[b] = counts.get(b, 0) + 1
            worst = max(counts, key=counts.get)
            removed.add(worst)
            remaining = {
                p for p in remaining if worst not in p
            }
        return len(removed) / len(relation)

    def _lhs_agrees(self, relation: Relation, i: int, j: int) -> bool:
        return all(
            f.similar(relation, i, j, self.registry) for f in self.lhs
        )

    def confidence(self, relation: Relation) -> float:
        """Fraction of LHS-agreeing pairs that also satisfy the RHS."""
        from ...plan import guard_pairs, plan_enabled

        if plan_enabled():
            agreeing = guard_pairs(self, relation, self._lhs_agrees)
            good = sum(
                1
                for i, j in agreeing
                if self.rhs.similar(relation, i, j, self.registry)
            )
            return good / len(agreeing) if agreeing else 1.0
        agree = 0
        good = 0
        for i, j in relation.tuple_pairs():
            if self._lhs_agrees(relation, i, j):
                agree += 1
                if self.rhs.similar(relation, i, j, self.registry):
                    good += 1
        return good / agree if agree else 1.0

    # -- family tree ----------------------------------------------------------

    @classmethod
    def from_ned(cls, dep: NED) -> "CD":
        """Embed an NED as the single-attribute-θ CD (Fig. 1 edge).

        Each NED predicate ``A^α`` becomes ``θ(A, A): [A ≈_α A]``.  A CD
        has exactly one RHS similarity function, so NEDs with several
        RHS predicates must be split into one CD per RHS attribute
        (their conjunction is equivalent to the original NED).
        """
        if len(dep.rhs) != 1:
            raise DependencyError(
                "CD embedding expects a single-RHS NED; split the NED"
            )
        lhs = [
            SimilarityFunction(
                p.attribute,
                p.attribute,
                threshold_ii=p.threshold,
                metric=p.metric,
            )
            for p in dep.lhs
        ]
        p = dep.rhs[0]
        rhs = SimilarityFunction(
            p.attribute, p.attribute, threshold_ii=p.threshold, metric=p.metric
        )
        return cls(lhs, rhs, registry=dep.registry)
