"""Fuzzy functional dependencies (FFDs) — Section 3.6.

An FFD ``X ~> Y`` holds in a fuzzy relation when, for all tuple pairs,

    mu_EQ(t1[X], t2[X]) <= mu_EQ(t1[Y], t2[Y])

where ``mu_EQ`` over an attribute set is the minimum of the
per-attribute fuzzy resemblance relations — the values on ``Y`` must be
at least as "equal" as those on ``X``.  With crisp (0/1) resemblances
this recovers a classical FD (Section 3.6.2).

Worked example (Table 6): ``ffd1: name, price ~> tax`` with crisp
equality on name and reciprocal resemblances (beta 1 on price, 10 on
tax) is violated by (t1, t2): min(1, 1/2) > 1/91.  Asserted in tests.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ...metrics.fuzzy import Resemblance, crisp_equal
from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import DependencyError, PairwiseDependency, format_attrs
from ..categorical.fd import FD, _names


class FFD(PairwiseDependency):
    """A fuzzy functional dependency ``X ~> Y``.

    ``resemblances`` maps attribute names to fuzzy EQUAL relations;
    attributes not mapped use crisp equality — "appropriately selected
    during database creation" per the paper, so it is part of the
    dependency declaration here.
    """

    kind = "FFD"

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        resemblances: Mapping[str, Resemblance] | None = None,
    ) -> None:
        self.lhs = _names(lhs)
        self.rhs = _names(rhs)
        if not self.lhs or not self.rhs:
            raise DependencyError("FFD needs attributes on both sides")
        self.resemblances: dict[str, Resemblance] = dict(resemblances or {})

    def __str__(self) -> str:
        return f"{format_attrs(self.lhs)} ~> {format_attrs(self.rhs)}"

    def __repr__(self) -> str:
        return f"FFD({self.lhs!r}, {self.rhs!r})"

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    # -- semantics --------------------------------------------------------

    def mu(self, attribute: str, a: object, b: object) -> float:
        """The resemblance mu_EQ for one attribute (crisp by default)."""
        fn = self.resemblances.get(attribute, crisp_equal)
        return fn(a, b)

    def mu_set(
        self, relation: Relation, i: int, j: int, attrs: Sequence[str]
    ) -> float:
        """mu_EQ over an attribute set: the minimum over attributes."""
        return min(
            self.mu(a, relation.value_at(i, a), relation.value_at(j, a))
            for a in attrs
        )

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        mu_x = self.mu_set(relation, i, j, self.lhs)
        mu_y = self.mu_set(relation, i, j, self.rhs)
        if mu_x <= mu_y:
            return None
        return (
            f"mu_EQ(X) = {mu_x:.4g} > mu_EQ(Y) = {mu_y:.4g}: "
            f"Y values less 'equal' than X values"
        )

    # -- family tree -----------------------------------------------------------

    @classmethod
    def from_fd(cls, dep: FD) -> "FFD":
        """Embed an FD as the crisp-resemblance FFD (Fig. 1 edge).

        With mu in {0, 1} everywhere, ``mu(X) <= mu(Y)`` fails exactly
        when X-values are equal (mu 1) and Y-values differ (mu 0) — the
        FD's violation condition.
        """
        resemblances = {a: crisp_equal for a in dep.lhs + dep.rhs}
        return cls(dep.lhs, dep.rhs, resemblances)
