"""The family tree of extensions (Fig. 1A) — executable.

Each arrow of the paper's Fig. 1, e.g. FDs -> SFDs, claims that the
target notation *subsumes* the source: every source dependency can be
written as a special target dependency.  This module makes each arrow a
first-class :class:`ExtensionEdge` carrying

* the **embedding** — a function rewriting a source dependency instance
  into the target formalism (``SFD.from_fd``, ``DC.from_od_all``, ...);
* the **paper section** justifying the arrow;
* whether the embedding is a semantic **equivalence** (``embed(d)``
  holds iff ``d`` holds, the usual case: FD = SFD with s = 1) or a
  one-way **implication** (``d`` holds ⇒ ``embed(d)`` holds — the
  FD -> MVD arrow, where FDs are a strict special case, and the
  OD -> SD arrow, where ties on the ordered attribute are invisible to
  the sequence semantics).

:func:`verify_edge` checks the claimed relationship empirically on any
relations you hand it — the property-based tests drive it with random
relations, which is this reproduction's evidence for Fig. 1A.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

import networkx as nx

from ..relation.relation import Relation
from .base import Conjunction, Dependency
from .categorical import AFD, AMVD, CFD, ECFD, FD, FHD, MVD, NUD, PFD, SFD
from .heterogeneous import CD, CDD, DD, FFD, MD, MFD, NED, PAC
from .heterogeneous.md import CMD
from .numerical import CSD, DC, OD, OFD, SD

Embedding = Callable[[Dependency], Dependency]


@dataclass(frozen=True)
class ExtensionEdge:
    """One arrow of Fig. 1A: ``target`` extends/generalizes ``source``."""

    source: str
    target: str
    section: str
    embed: Embedding
    equivalence: bool = True
    note: str = ""

    def __str__(self) -> str:
        rel = "≡" if self.equivalence else "⇒"
        return f"{self.source} -> {self.target} ({rel}, §{self.section})"


def _embed_od_to_dc(dep: OD) -> Dependency:
    dcs = DC.from_od_all(dep)
    return dcs[0] if len(dcs) == 1 else Conjunction(dcs)


def _embed_ecfd_to_dc(dep: ECFD) -> Dependency:
    dcs = DC.from_ecfd_all(dep)
    return dcs[0] if len(dcs) == 1 else Conjunction(dcs)


#: All arrows of Fig. 1A.  Node names follow the survey's abbreviations.
EDGES: tuple[ExtensionEdge, ...] = (
    # Categorical branch
    ExtensionEdge("FD", "SFD", "2.1.2", SFD.from_fd,
                  note="FDs are SFDs with strength 1"),
    ExtensionEdge("FD", "PFD", "2.2.2", PFD.from_fd,
                  note="FDs are PFDs with probability 1"),
    ExtensionEdge("FD", "AFD", "2.3.2", AFD.from_fd,
                  note="FDs are AFDs with g3 error 0"),
    ExtensionEdge("FD", "NUD", "2.4.2", NUD.from_fd,
                  note="FDs are NUDs with weight 1"),
    ExtensionEdge("FD", "CFD", "2.5.2", CFD.from_fd,
                  note="FDs are CFDs with all-wildcard pattern"),
    ExtensionEdge("CFD", "eCFD", "2.5.5", ECFD.from_cfd,
                  note="eCFD patterns add operator predicates"),
    ExtensionEdge("FD", "MVD", "2.6.2", MVD.from_fd, equivalence=False,
                  note="every FD is an MVD (strictly weaker semantics)"),
    ExtensionEdge("MVD", "FHD", "2.6.5", FHD.from_mvd,
                  note="MVDs are FHDs with a single branch"),
    ExtensionEdge("MVD", "AMVD", "2.6.6", AMVD.from_mvd,
                  note="MVDs are AMVDs with epsilon 0"),
    # Heterogeneous branch
    ExtensionEdge("FD", "MFD", "3.1.2", MFD.from_fd,
                  note="FDs are MFDs with delta 0"),
    ExtensionEdge("MFD", "NED", "3.2.2", NED.from_mfd,
                  note="MFDs are NEDs with LHS thresholds 0"),
    ExtensionEdge("NED", "DD", "3.3.2", DD.from_ned,
                  note="NEDs are DDs with similar-only ranges"),
    ExtensionEdge("DD", "CDD", "3.3.5", CDD.from_dd,
                  note="DDs are CDDs with the match-all condition"),
    ExtensionEdge("CFD", "CDD", "3.3.5", CDD.from_cfd,
                  note="CFD constants become the CDD condition "
                       "(variable CFDs)"),
    ExtensionEdge("NED", "CD", "3.4.2", CD.from_ned,
                  note="NEDs are CDs with single-attribute θ "
                       "(single-RHS NEDs)"),
    ExtensionEdge("NED", "PAC", "3.5.2", PAC.from_ned,
                  note="NEDs are PACs with confidence 1"),
    ExtensionEdge("FD", "FFD", "3.6.2", FFD.from_fd,
                  note="FDs are FFDs with crisp resemblance"),
    ExtensionEdge("FD", "MD", "3.7.2", MD.from_fd,
                  note="FDs are MDs with exact-match similarity"),
    ExtensionEdge("MD", "CMD", "3.7.5", CMD.from_md,
                  note="MDs are CMDs with the match-all condition"),
    # Numerical branch
    ExtensionEdge("OFD", "OD", "4.2.2", OD.from_ofd,
                  note="pointwise OFDs are all-ascending ODs"),
    ExtensionEdge("OD", "DC", "4.3.2", _embed_od_to_dc,
                  note="OD marks become DC order atoms"),
    ExtensionEdge("eCFD", "DC", "4.3.3", _embed_ecfd_to_dc,
                  note="eCFD patterns become DC constant atoms"),
    ExtensionEdge("OD", "SD", "4.4.2", SD.from_od, equivalence=False,
                  note="order marks become (-inf,0] / [0,inf) gaps; "
                       "ties on X are invisible to the sequence"),
    ExtensionEdge("SD", "CSD", "4.4.5", CSD.from_sd,
                  note="SDs are CSDs conditioned on the full range"),
)

#: Node -> the survey's data-type branch (for Fig. 1's three groups).
BRANCHES: dict[str, str] = {
    "FD": "categorical", "SFD": "categorical", "PFD": "categorical",
    "AFD": "categorical", "NUD": "categorical", "CFD": "categorical",
    "eCFD": "categorical", "MVD": "categorical", "FHD": "categorical",
    "AMVD": "categorical",
    "MFD": "heterogeneous", "NED": "heterogeneous", "DD": "heterogeneous",
    "CDD": "heterogeneous", "CD": "heterogeneous", "PAC": "heterogeneous",
    "FFD": "heterogeneous", "MD": "heterogeneous", "CMD": "heterogeneous",
    "OFD": "numerical", "OD": "numerical", "DC": "numerical",
    "SD": "numerical", "CSD": "numerical",
}

#: Notation name -> implementing class (the survey's Table 2 rows).
CLASSES: dict[str, type] = {
    "FD": FD, "SFD": SFD, "PFD": PFD, "AFD": AFD, "NUD": NUD,
    "CFD": CFD, "eCFD": ECFD, "MVD": MVD, "FHD": FHD, "AMVD": AMVD,
    "MFD": MFD, "NED": NED, "DD": DD, "CDD": CDD, "CD": CD,
    "PAC": PAC, "FFD": FFD, "MD": MD, "CMD": CMD,
    "OFD": OFD, "OD": OD, "DC": DC, "SD": SD, "CSD": CSD,
}


class FamilyTree:
    """The extension graph of Fig. 1A, queryable and verifiable."""

    def __init__(self, edges: Sequence[ExtensionEdge] = EDGES) -> None:
        self.edges = tuple(edges)
        self.graph = nx.DiGraph()
        for name, branch in BRANCHES.items():
            self.graph.add_node(name, branch=branch)
        for e in self.edges:
            self.graph.add_edge(e.source, e.target, edge=e)

    # -- queries -----------------------------------------------------------

    def edge(self, source: str, target: str) -> ExtensionEdge:
        data = self.graph.get_edge_data(source, target)
        if data is None:
            raise KeyError(f"no extension edge {source} -> {target}")
        return data["edge"]

    def extends(self, target: str, source: str) -> bool:
        """Does ``target`` (transitively) subsume ``source``?"""
        return nx.has_path(self.graph, source, target)

    def generalizations(self, notation: str) -> list[str]:
        """All notations subsuming ``notation`` (its ancestors' closure)."""
        return sorted(nx.descendants(self.graph, notation))

    def specializations(self, notation: str) -> list[str]:
        """All notations that ``notation`` subsumes."""
        return sorted(nx.ancestors(self.graph, notation))

    def roots(self) -> list[str]:
        """Notations with no incoming extension arrow (FD and OFD)."""
        return sorted(
            n for n in self.graph.nodes if self.graph.in_degree(n) == 0
        )

    def maximal(self) -> list[str]:
        """Notations nothing further extends (the most expressive)."""
        return sorted(
            n for n in self.graph.nodes if self.graph.out_degree(n) == 0
        )

    def extension_path(self, source: str, target: str) -> list[str]:
        """One chain of arrows from ``source`` up to ``target``."""
        return nx.shortest_path(self.graph, source, target)

    def embed_along_path(
        self, dep: Dependency, path: Sequence[str]
    ) -> Dependency:
        """Rewrite ``dep`` through consecutive embeddings along ``path``."""
        current = dep
        for a, b in zip(path, path[1:], strict=False):
            current = self.edge(a, b).embed(current)
        return current

    def by_branch(self) -> dict[str, list[str]]:
        """Fig. 1's three groups: data type -> notations."""
        out: dict[str, list[str]] = {}
        for name, branch in BRANCHES.items():
            out.setdefault(branch, []).append(name)
        return out

    def is_dag(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)

    def to_text(self) -> str:
        """ASCII rendering of the tree (used by the bench harness)."""
        lines = ["Family tree of extensions (arrow = generalizes):"]
        for branch, names in sorted(self.by_branch().items()):
            lines.append(f"\n[{branch}]")
            for e in self.edges:
                if BRANCHES[e.target] == branch:
                    rel = "≡" if e.equivalence else "⇒"
                    lines.append(
                        f"  {e.source:>5} --{rel}--> {e.target:<5} "
                        f"(§{e.section}) {e.note}"
                    )
        return "\n".join(lines)


@dataclass
class EdgeVerification:
    """Outcome of empirically checking one arrow on concrete relations."""

    edge: ExtensionEdge
    checked: int
    agreements: int
    counterexamples: list[tuple[int, bool, bool]]

    @property
    def passed(self) -> bool:
        return not self.counterexamples


def verify_edge(
    edge: ExtensionEdge,
    dep: Dependency,
    relations: Iterable[Relation],
) -> EdgeVerification:
    """Check the arrow's semantic claim for ``dep`` on each relation.

    For equivalence edges, ``dep.holds(r) == embed(dep).holds(r)`` must
    agree everywhere; for implication edges, ``dep.holds(r)`` must imply
    ``embed(dep).holds(r)``.
    """
    embedded = edge.embed(dep)
    checked = 0
    agreements = 0
    bad: list[tuple[int, bool, bool]] = []
    for k, r in enumerate(relations):
        child = dep.holds(r)
        parent = embedded.holds(r)
        ok = (child == parent) if edge.equivalence else (not child or parent)
        checked += 1
        if ok:
            agreements += 1
        else:
            bad.append((k, child, parent))
    return EdgeVerification(edge, checked, agreements, bad)


DEFAULT_TREE = FamilyTree()
