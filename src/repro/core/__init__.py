"""The paper's contribution: the dependency family and its family tree."""

from .base import (
    Conjunction,
    Dependency,
    DependencyError,
    MeasuredDependency,
    PairwiseDependency,
)
from .violation import Violation, ViolationSet
from .categorical import (
    AFD,
    AMVD,
    CFD,
    CFDTableau,
    ECFD,
    FD,
    FHD,
    MVD,
    NUD,
    PFD,
    SFD,
    Pattern,
    PatternEntry,
    const,
    ecfd,
    fd,
    g3_error,
    pred,
    wildcard,
)
from .heterogeneous import (
    CD,
    CDD,
    CMD,
    DD,
    FFD,
    MD,
    MFD,
    NED,
    PAC,
    DifferentialFunction,
    Interval,
    RelativeCandidateKey,
    md_implies,
    minimal_md_cover,
    SimilarityFunction,
    SimilarityPredicate,
)
from .numerical import (
    ALPHA,
    BETA,
    CSD,
    DC,
    OD,
    OFD,
    SD,
    MarkedAttribute,
    Predicate,
    pred2,
    predc,
)
from .implication import (
    armstrong_relation,
    closed_sets,
    equivalent,
    implies,
    minimal_cover,
)
from .familytree import (
    BRANCHES,
    CLASSES,
    DEFAULT_TREE,
    EDGES,
    EdgeVerification,
    ExtensionEdge,
    FamilyTree,
    verify_edge,
)

__all__ = [
    # framework
    "Dependency", "DependencyError", "PairwiseDependency",
    "MeasuredDependency", "Conjunction", "Violation", "ViolationSet",
    # categorical
    "FD", "fd", "SFD", "PFD", "AFD", "g3_error", "NUD",
    "Pattern", "PatternEntry", "wildcard", "const", "pred",
    "CFD", "CFDTableau", "ECFD", "ecfd", "MVD", "FHD", "AMVD",
    # heterogeneous
    "Interval", "DifferentialFunction", "SimilarityPredicate",
    "MFD", "NED", "DD", "CDD", "CD", "SimilarityFunction", "PAC",
    "FFD", "MD", "CMD", "RelativeCandidateKey",
    "md_implies", "minimal_md_cover",
    # numerical
    "OFD", "OD", "MarkedAttribute", "DC", "Predicate", "pred2", "predc",
    "ALPHA", "BETA", "SD", "CSD",
    # implication reasoning
    "implies", "equivalent", "minimal_cover", "closed_sets",
    "armstrong_relation",
    # family tree
    "FamilyTree", "ExtensionEdge", "EdgeVerification", "verify_edge",
    "EDGES", "BRANCHES", "CLASSES", "DEFAULT_TREE",
]
