"""The uniform dependency interface shared by the whole family tree.

Every notation surveyed by the paper — from plain FDs to DCs — is a
:class:`Dependency`:

* :meth:`~Dependency.holds` — does the constraint hold on a relation?
* :meth:`~Dependency.violations` — evidence of why not;
* :attr:`~Dependency.kind` — the notation's short name ("FD", "CFD", …),
  matching the survey's Table 2 vocabulary.

Two structured sub-bases cover the recurring shapes:

* :class:`PairwiseDependency` — constraints universally quantified over
  tuple *pairs* (FDs, MFDs, NEDs, DDs, CDs, FFDs, MDs, OFDs, ODs,
  two-tuple DCs, …).  Subclasses implement one method,
  :meth:`~PairwiseDependency.pair_violation`, and inherit a generic
  O(n²) checker; performance-critical subclasses (FD) override
  :meth:`violations` with group-based algorithms.
* :class:`MeasuredDependency` — statistical extensions that hold when a
  satisfaction *measure* clears a threshold (SFDs, PFDs, AFDs, PACs,
  AMVDs, approximate DCs).  Subclasses implement
  :meth:`~MeasuredDependency.measure` and declare the comparison
  direction.
"""

from __future__ import annotations

import abc
import itertools
from collections.abc import Iterable, Iterator

from ..relation.relation import Relation
from ..relation.schema import Schema
from .violation import Violation, ViolationSet


class DependencyError(ValueError):
    """Raised for ill-formed dependencies (bad thresholds, empty sides)."""


class Dependency(abc.ABC):
    """Base class of every dependency notation in the family tree."""

    #: Short notation name as used in the survey's Table 2 ("FD", "SFD", ...).
    kind: str = "dependency"

    #: True when evaluation inherently reads every column (MVD-style
    #: complements over the rest of the schema), so column routing by
    #: :meth:`attributes` is not applicable to this notation.
    reads_whole_relation: bool = False

    @abc.abstractmethod
    def violations(self, relation: Relation) -> ViolationSet:
        """All violation evidence for this dependency on ``relation``."""

    def holds(self, relation: Relation) -> bool:
        """True iff the dependency is satisfied by ``relation``.

        Default: no violations.  Measured dependencies override this to
        compare their measure against the threshold instead.
        """
        return not self.violations(relation)

    def attributes(self) -> tuple[str, ...]:
        """Names of all attributes the dependency mentions (for routing)."""
        return ()

    def validate_schema(self, schema: Schema) -> None:
        """Raise if the dependency mentions attributes outside ``schema``."""
        schema.resolve(self.attributes())

    def label(self) -> str:
        """Display label, e.g. ``FD: address -> region``."""
        return f"{self.kind}: {self}"


class PairwiseDependency(Dependency):
    """A dependency universally quantified over unordered tuple pairs."""

    @abc.abstractmethod
    def pair_violation(
        self, relation: Relation, i: int, j: int
    ) -> str | None:
        """A violation reason if tuples ``i, j`` jointly violate, else None.

        ``i < j`` is guaranteed by the generic scanner; implementations
        that are order-sensitive (ODs, DCs) must check both orientations.
        """

    def iter_violations(self, relation: Relation) -> Iterator[Violation]:
        """Lazily yield violations pair by pair (the naive scan).

        This is the reference O(n²) path; :meth:`violations` and
        :meth:`holds` normally route through the compiled plan kernels
        instead (same results, pruned candidate pairs — see
        :mod:`repro.plan`).
        """
        label = self.label()
        for i, j in relation.tuple_pairs():
            reason = self.pair_violation(relation, i, j)
            if reason is not None:
                yield Violation(label, (i, j), reason)

    def violations(self, relation: Relation) -> ViolationSet:
        from ..plan import pairwise_violations, plan_enabled

        if plan_enabled():
            return ViolationSet(pairwise_violations(self, relation))
        return ViolationSet(self.iter_violations(relation))

    def holds(self, relation: Relation) -> bool:
        # Short-circuit on first violation rather than materializing all.
        from ..plan import pairwise_violations, plan_enabled

        if plan_enabled():
            return not pairwise_violations(self, relation, first_only=True)
        return next(iter(self.iter_violations(relation)), None) is None

    def violating_pairs(self, relation: Relation) -> set[tuple[int, int]]:
        """The set of violating (i, j) pairs, i < j."""
        return {
            (v.tuples[0], v.tuples[1]) for v in self.violations(relation)
        }


class MeasuredDependency(Dependency):
    """A dependency that holds when a measure clears a threshold.

    Subclasses define :meth:`measure` plus the class attribute
    ``measure_direction``: ``">="`` means "holds iff measure >= threshold"
    (SFD strength, PFD probability, PAC confidence), ``"<="`` means
    "holds iff measure <= threshold" (AFD g3 error, AMVD epsilon).
    """

    measure_direction: str = ">="

    @property
    @abc.abstractmethod
    def threshold(self) -> float:
        """The declared threshold (s, p, epsilon, delta, ...)."""

    @abc.abstractmethod
    def measure(self, relation: Relation) -> float:
        """The satisfaction measure evaluated on ``relation``."""

    def holds(self, relation: Relation) -> bool:
        value = self.measure(relation)
        if self.measure_direction == ">=":
            return value >= self.threshold
        if self.measure_direction == "<=":
            return value <= self.threshold
        raise DependencyError(
            f"bad measure_direction {self.measure_direction!r}"
        )


class Conjunction(Dependency):
    """A conjunction of dependencies, itself a dependency.

    Some family-tree embeddings produce several constraints in the
    target formalism whose *conjunction* equals the source (an OD with
    several RHS marks becomes one DC per mark; an eCFD with a constant
    RHS cell becomes a pairwise DC plus a single-tuple DC).
    """

    kind = "AND"

    def __init__(self, parts: Iterable[Dependency]) -> None:
        self.parts: tuple[Dependency, ...] = tuple(parts)
        if not self.parts:
            raise DependencyError("conjunction of zero dependencies")

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.parts)

    def violations(self, relation: Relation) -> ViolationSet:
        vs = ViolationSet()
        for p in self.parts:
            vs.extend(p.violations(relation))
        return vs

    def holds(self, relation: Relation) -> bool:
        return all(p.holds(relation) for p in self.parts)

    def attributes(self) -> tuple[str, ...]:
        names: list[str] = []
        for p in self.parts:
            names.extend(p.attributes())
        return tuple(dict.fromkeys(names))


def ensure_nonempty(side: Iterable[str], what: str) -> tuple[str, ...]:
    """Validate a dependency side is non-empty; return it as a tuple."""
    out = tuple(side)
    if not out:
        raise DependencyError(f"{what} must be non-empty")
    return out


def format_attrs(attrs: Iterable[str]) -> str:
    """Comma-join attribute names for labels."""
    return ", ".join(attrs)


def brute_force_pairs(n: int) -> Iterator[tuple[int, int]]:
    """All index pairs i < j below n (testing helper)."""
    return itertools.combinations(range(n), 2)
