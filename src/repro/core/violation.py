"""Violation evidence produced by dependency checking.

Every dependency in the family tree reports *why* it fails on a relation
as a set of :class:`Violation` records — the tuple indices involved plus
a human-readable reason.  Downstream consumers:

* the detection engine scores violations against injected ground truth;
* the repair engines turn violations into a conflict (hyper)graph;
* tests assert the exact violating tuples of the paper's examples
  (e.g. fd1 flags (t3, t4) and (t5, t6) but not (t7, t8) on Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator


@dataclass(frozen=True)
class Violation:
    """One piece of violation evidence.

    ``tuples`` holds the 0-based indices of the tuples jointly violating
    the constraint — a pair for pairwise notations (FDs, DCs, ...), one
    index for single-tuple constant constraints (constant CFDs, constant
    DCs), possibly more for tuple-generating dependencies (MVDs report
    the group whose required tuple is missing).
    """

    dependency: str
    tuples: tuple[int, ...]
    reason: str = ""

    def __post_init__(self) -> None:
        # Normalize ordering so {(i, j)} and {(j, i)} dedupe.
        object.__setattr__(self, "tuples", tuple(sorted(self.tuples)))

    def involves(self, index: int) -> bool:
        return index in self.tuples

    def __str__(self) -> str:
        ts = ", ".join(f"t{i}" for i in self.tuples)
        msg = f" — {self.reason}" if self.reason else ""
        return f"[{self.dependency}] ({ts}){msg}"


class ViolationSet:
    """An ordered, duplicate-free collection of violations."""

    __slots__ = ("_items", "_seen")

    def __init__(self, items: Iterable[Violation] = ()) -> None:
        self._items: list[Violation] = []
        self._seen: set[tuple[str, tuple[int, ...]]] = set()
        for v in items:
            self.add(v)

    def add(self, violation: Violation) -> None:
        key = (violation.dependency, violation.tuples)
        if key not in self._seen:
            self._seen.add(key)
            self._items.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        for v in violations:
            self.add(v)

    def __iter__(self) -> Iterator[Violation]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __getitem__(self, i: int) -> Violation:
        return self._items[i]

    def tuple_indices(self) -> set[int]:
        """All tuple indices implicated in at least one violation."""
        out: set[int] = set()
        for v in self._items:
            out.update(v.tuples)
        return out

    def pairs(self) -> set[tuple[int, int]]:
        """All violating pairs (for pairwise dependencies)."""
        return {
            (v.tuples[0], v.tuples[1]) for v in self._items if len(v.tuples) == 2
        }

    def by_dependency(self) -> dict[str, list[Violation]]:
        out: dict[str, list[Violation]] = {}
        for v in self._items:
            out.setdefault(v.dependency, []).append(v)
        return out

    def __repr__(self) -> str:
        return f"ViolationSet({len(self._items)} violations)"

    def summary(self, limit: int = 10) -> str:
        lines = [str(v) for v in self._items[:limit]]
        if len(self._items) > limit:
            lines.append(f"... and {len(self._items) - limit} more")
        return "\n".join(lines) if lines else "(no violations)"
