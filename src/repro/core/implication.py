"""Implication reasoning for FDs (Armstrong axioms) and friends.

The survey repeatedly leans on implication problems (Fig. 3 lists their
complexities); for plain FDs implication is tractable via attribute-set
closure, and this module provides the classical toolkit:

* :func:`implies` — does a set of FDs imply another FD? (linear-time
  closure test);
* :func:`equivalent` — are two FD sets equivalent covers?
* :func:`minimal_cover` — the canonical cover (singleton RHS, no
  extraneous LHS attributes, no redundant FDs);
* :func:`armstrong_relation` — a witness relation satisfying exactly
  the implied FDs (Beeri et al. [5] guarantee existence); the standard
  agree-set construction over closed attribute sets;
* :func:`closed_sets` — the lattice of closed attribute sets of an FD
  set (the structure Armstrong relations are built from).

For the NP-/coNP-complete implication problems of the extensions
(CFDs, DDs, ODs) the library intentionally ships *checkers* on data,
not deciders — mirroring Fig. 3's message.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from ..relation.relation import Relation
from ..relation.schema import Schema
from .categorical.fd import FD


def closure(attributes: Iterable[str], fds: Sequence[FD]) -> frozenset[str]:
    """Attribute-set closure X+ under ``fds`` (Armstrong axioms)."""
    out = set(attributes)
    changed = True
    while changed:
        changed = False
        for dep in fds:
            if set(dep.lhs) <= out and not set(dep.rhs) <= out:
                out |= set(dep.rhs)
                changed = True
    return frozenset(out)


def implies(fds: Sequence[FD], candidate: FD) -> bool:
    """Whether ``fds ⊨ candidate`` (closure membership test)."""
    return set(candidate.rhs) <= closure(candidate.lhs, fds)


def equivalent(a: Sequence[FD], b: Sequence[FD]) -> bool:
    """Whether two FD sets are covers of each other."""
    return all(implies(b, dep) for dep in a) and all(
        implies(a, dep) for dep in b
    )


def _split_rhs(fds: Sequence[FD]) -> list[FD]:
    """Decompose every FD to singleton RHS (Armstrong decomposition)."""
    out: list[FD] = []
    for dep in fds:
        for a in dep.rhs:
            if a not in dep.lhs:  # drop trivial parts
                out.append(FD(dep.lhs, (a,)))
    return out


def minimal_cover(fds: Sequence[FD]) -> list[FD]:
    """The canonical (minimal) cover of an FD set.

    1. singleton right-hand sides;
    2. remove extraneous LHS attributes (left-reduction);
    3. remove redundant FDs (implied by the rest).

    Deterministic given input order; the result is equivalent to the
    input (verified in tests via :func:`equivalent`).
    """
    work = _split_rhs(fds)

    # Left-reduce each FD.
    reduced: list[FD] = []
    for k, dep in enumerate(work):
        lhs = list(dep.lhs)
        for a in list(lhs):
            if len(lhs) == 1:
                break
            trial = [x for x in lhs if x != a]
            # a is extraneous iff trial -> rhs still follows from the
            # *current* whole set.
            current = reduced + [FD(tuple(lhs), dep.rhs)] + work[k + 1:]
            if implies(current, FD(tuple(trial), dep.rhs)):
                lhs = trial
        reduced.append(FD(tuple(lhs), dep.rhs))

    # Drop redundant FDs.
    result = list(dict.fromkeys(reduced))
    changed = True
    while changed:
        changed = False
        for dep in list(result):
            rest = [d for d in result if d is not dep]
            if implies(rest, dep):
                result.remove(dep)
                changed = True
                break
    return result


def closed_sets(
    attributes: Sequence[str], fds: Sequence[FD]
) -> list[frozenset[str]]:
    """All closed attribute sets ``X = X+`` (the closure lattice).

    Exponential in ``|attributes|``; intended for design-time schemas.
    """
    names = sorted(attributes)
    out: set[frozenset[str]] = set()
    for size in range(len(names) + 1):
        for combo in itertools.combinations(names, size):
            out.add(closure(combo, fds))
    return sorted(out, key=lambda s: (len(s), sorted(s)))


def armstrong_relation(
    attributes: Sequence[str], fds: Sequence[FD]
) -> Relation:
    """A relation satisfying exactly the FDs implied by ``fds``.

    Classical agree-set construction: one base tuple of zeros, plus one
    tuple per *meet-irreducible* closed set C agreeing with the base
    exactly on C.  The resulting relation satisfies X -> A iff
    ``A ∈ closure(X)`` — asserted exhaustively in tests.
    """
    names = sorted(attributes)
    closed = [set(c) for c in closed_sets(names, fds)]
    # Meet-irreducible closed sets suffice, but using all closed sets
    # (minus the full set, which adds a duplicate row) stays correct
    # and keeps the construction simple.
    witnesses = [c for c in closed if c != set(names)]
    rows: list[tuple] = [tuple(0 for __ in names)]
    for k, agree in enumerate(witnesses, start=1):
        rows.append(
            tuple(0 if a in agree else k for a in names)
        )
    return Relation.from_rows(Schema(names), rows)


def satisfied_fds(relation: Relation) -> list[FD]:
    """All minimal single-RHS FDs holding on a relation (via TANE)."""
    from ..discovery.tane import tane

    return list(tane(relation).dependencies)
