"""Extended conditional functional dependencies (eCFDs) — Section 2.5.5.

eCFDs extend CFD pattern cells from constants to predicates ``op a``
with ``op ∈ {=, ≠, <, <=, >, >=}``, substantially increasing expressive
power at unchanged implication complexity (coNP-complete).

Worked example (Table 5)::

    ecfd1: rate <= 200, name = _  ->  address = _

"if two tuples have the same rate value <= 200, then their name
determines address".  Note the embedded FD of ecfd1 is
``rate, name -> address``; the predicate conditions the rate column.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ...relation.schema import Attribute
from .cfd import CFD
from .fd import FD
from .pattern import Pattern


class ECFD(CFD):
    """An extended CFD: CFD semantics with operator pattern entries."""

    kind = "eCFD"
    _allow_operators = True

    # Semantics are inherited unchanged from CFD: `Pattern.matches`
    # already evaluates operator entries, and the pairwise/single-tuple
    # split is identical.  Only construction differs (operators allowed).

    @classmethod
    def from_cfd(cls, dep: CFD) -> "ECFD":
        """Embed a CFD as an eCFD with the same pattern (Fig. 1 edge)."""
        return cls(dep.lhs, dep.rhs, dep.pattern)

    @classmethod
    def from_fd(cls, dep: FD) -> "ECFD":
        """Embed an FD as the all-wildcard eCFD (via the CFD edge)."""
        return cls(dep.lhs, dep.rhs, Pattern())


def ecfd(
    lhs: Sequence[Attribute | str] | Attribute | str,
    rhs: Sequence[Attribute | str] | Attribute | str,
    pattern: Pattern | Mapping[str, object] | None = None,
) -> ECFD:
    """Shorthand constructor mirroring the paper's inline notation.

    >>> ecfd(["rate", "name"], "address", {"rate": ("<=", 200)})
    """
    return ECFD(lhs, rhs, pattern)
