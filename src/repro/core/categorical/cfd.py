"""Conditional functional dependencies (CFDs) — Section 2.5.

A CFD ``(X -> Y, t_p)`` embeds a standard FD that holds only on the
subset of tuples matching the pattern tuple ``t_p``.  Pattern cells are
constants or the unnamed variable ``'_'``.  An all-wildcard pattern
recovers a plain FD (Section 2.5.2).

Semantics (Fan et al. [34]): for tuples ``t1, t2`` *matching t_p on X*
and agreeing on ``X``, they must agree on ``Y`` and both match ``t_p``
on ``Y``.  With constants on the right-hand side this also constrains
single tuples (a tuple matching the LHS pattern whose Y-value differs
from the RHS constant violates on its own).

Worked example (Table 5): ``cfd1: region = "Jackson", name = _ ->
address = _`` is satisfied by t1, t2.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Mapping, Sequence

from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import Dependency, DependencyError, format_attrs
from ..violation import Violation, ViolationSet
from .fd import FD
from .pattern import Pattern


class CFD(Dependency):
    """A conditional functional dependency ``(X -> Y, t_p)``."""

    kind = "CFD"

    #: eCFD subclass flips this to allow operator entries.
    _allow_operators = False

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        pattern: Pattern | Mapping[str, object] | None = None,
    ) -> None:
        self.embedded = FD(lhs, rhs)
        self.lhs = self.embedded.lhs
        self.rhs = self.embedded.rhs
        self.pattern = pattern if isinstance(pattern, Pattern) else Pattern(pattern)
        scope = set(self.lhs) | set(self.rhs)
        stray = [a for a in self.pattern.entries() if a not in scope]
        if stray:
            raise DependencyError(
                f"pattern mentions attributes outside X ∪ Y: {sorted(stray)}"
            )
        if not self._allow_operators and not self.pattern.uses_only_constants(
            scope
        ):
            raise DependencyError(
                "CFD patterns allow only constants and wildcards; "
                "use ECFD for operator predicates"
            )

    def __str__(self) -> str:
        return (
            f"{format_attrs(self.lhs)} -> {format_attrs(self.rhs)}, "
            f"{self.pattern.render(self.lhs, self.rhs)}"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.lhs!r}, {self.rhs!r}, {self.pattern!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFD):
            return NotImplemented
        return (
            type(self) is type(other)
            and self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.pattern == other.pattern
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.lhs, self.rhs, self.pattern))

    def attributes(self) -> tuple[str, ...]:
        return self.embedded.attributes()

    # -- structure ------------------------------------------------------------

    def is_constant_cfd(self) -> bool:
        """True iff every pattern cell (over X and Y) is a constant."""
        return all(
            not self.pattern.entry(a).is_wildcard
            for a in self.lhs + self.rhs
        )

    def is_variable_cfd(self) -> bool:
        """True iff the RHS pattern is a wildcard (variable CFD)."""
        return all(self.pattern.entry(a).is_wildcard for a in self.rhs)

    def matching_indices(self, relation: Relation) -> list[int]:
        """Tuples matching ``t_p`` on the LHS — the conditioned subset."""
        return [
            i for i in range(len(relation)) if self.matches_lhs(relation, i)
        ]

    def support(self, relation: Relation) -> float:
        """Fraction of tuples the condition covers (Section 2.5.3)."""
        if len(relation) == 0:
            return 0.0
        return len(self.matching_indices(relation)) / len(relation)

    # -- semantics ------------------------------------------------------------

    def matches_lhs(self, relation: Relation, i: int) -> bool:
        """Does tuple ``i`` match ``t_p`` on the LHS (is it conditioned)?"""
        # Targeted reads: only the LHS columns, so column routing by
        # attributes() stays faithful.
        record = {a: relation.value_at(i, a) for a in self.lhs}
        return self.pattern.matches(record, self.lhs)

    def single_violations(
        self, relation: Relation, i: int, label: str | None = None
    ) -> list[Violation]:
        """RHS-constant violations of one LHS-matching tuple.

        The incremental checker re-derives only changed tuples through
        this hook; reasons match the full :meth:`violations` scan.
        """
        if label is None:
            label = self.label()
        out: list[Violation] = []
        for a in self.rhs:
            entry = self.pattern.entry(a)
            if entry.is_wildcard:
                continue
            value = relation.value_at(i, a)
            if not entry.matches(value):
                out.append(
                    Violation(
                        label,
                        (i,),
                        f"{a} = {value!r} fails pattern {entry}",
                    )
                )
        return out

    def group_violations(
        self,
        relation: Relation,
        x_value: tuple,
        indices: Sequence[int],
        label: str | None = None,
    ) -> list[Violation]:
        """Embedded-FD violations among one equal-``X`` matching group."""
        if label is None:
            label = self.label()
        out: list[Violation] = []
        if len(indices) < 2:
            return out
        by_y: dict[tuple, list[int]] = {}
        for t in indices:
            by_y.setdefault(relation.values_at(t, self.rhs), []).append(t)
        if len(by_y) < 2:
            return out
        for (ya, ta), (yb, tb) in combinations(list(by_y.items()), 2):
            for i in ta:
                for j in tb:
                    out.append(
                        Violation(
                            label,
                            (i, j),
                            f"X={x_value!r} (matching pattern): "
                            f"{ya!r} vs {yb!r}",
                        )
                    )
        return out

    def violations(self, relation: Relation) -> ViolationSet:
        vs = ViolationSet()
        label = self.label()
        matching = self.matching_indices(relation)

        # Single-tuple part: RHS constants must be met by each matching tuple.
        for i in matching:
            vs.extend(self.single_violations(relation, i, label))

        # Pairwise part: the embedded FD on the matching subset.
        groups: dict[tuple, list[int]] = {}
        for i in matching:
            groups.setdefault(relation.values_at(i, self.lhs), []).append(i)
        for x_value, indices in groups.items():
            vs.extend(self.group_violations(relation, x_value, indices, label))
        return vs

    def holds(self, relation: Relation) -> bool:
        matching = self.matching_indices(relation)
        rhs_conditioned = [
            a for a in self.rhs if not self.pattern.entry(a).is_wildcard
        ]
        groups: dict[tuple, tuple] = {}
        for i in matching:
            for a in rhs_conditioned:
                if not self.pattern.entry(a).matches(
                    relation.value_at(i, a)
                ):
                    return False
            x = relation.values_at(i, self.lhs)
            y = relation.values_at(i, self.rhs)
            if x in groups:
                if groups[x] != y:
                    return False
            else:
                groups[x] = y
        return True

    # -- family tree -------------------------------------------------------------

    @classmethod
    def from_fd(cls, dep: FD) -> "CFD":
        """Embed an FD as the CFD with the all-wildcard pattern (Fig. 1)."""
        return cls(dep.lhs, dep.rhs, Pattern())


class CFDTableau:
    """A set of pattern tuples sharing one embedded FD.

    CFD practice (and CFD discovery, Section 2.5.3) treats the rule as
    an embedded FD plus a *tableau* of pattern rows; the constraint is
    the conjunction of the per-row CFDs.
    """

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        patterns: Sequence[Pattern | Mapping[str, object]] = (),
    ) -> None:
        self.embedded = FD(lhs, rhs)
        self.rows: list[CFD] = [
            CFD(self.embedded.lhs, self.embedded.rhs, p) for p in patterns
        ]

    def add(self, pattern: Pattern | Mapping[str, object]) -> None:
        self.rows.append(CFD(self.embedded.lhs, self.embedded.rhs, pattern))

    def holds(self, relation: Relation) -> bool:
        return all(row.holds(relation) for row in self.rows)

    def violations(self, relation: Relation) -> ViolationSet:
        vs = ViolationSet()
        for row in self.rows:
            vs.extend(row.violations(relation))
        return vs

    def support(self, relation: Relation) -> float:
        """Fraction of tuples covered by at least one tableau row."""
        if len(relation) == 0:
            return 0.0
        covered: set[int] = set()
        for row in self.rows:
            covered.update(row.matching_indices(relation))
        return len(covered) / len(relation)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __str__(self) -> str:
        header = f"{format_attrs(self.embedded.lhs)} -> {format_attrs(self.embedded.rhs)}"
        rows = "; ".join(
            r.pattern.render(self.embedded.lhs, self.embedded.rhs)
            for r in self.rows
        )
        return f"{header} with tableau [{rows}]"
