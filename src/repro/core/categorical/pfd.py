"""Probabilistic functional dependencies (PFDs) — Section 2.2.

A PFD ``X ->_p Y`` holds when the per-value likelihood of the embedded
FD, averaged over the distinct ``X``-values, is at least ``p``:

    P(X -> Y, V_X) = |V_Y, V_X| / |V_X|   (V_Y the modal Y for V_X)
    P(X -> Y, r)   = mean over distinct V_X of P(X -> Y, V_X)

Worked example (Table 5): P(address -> region, r5) = (1 + 1/2)/2 = 3/4
and P(name -> address, r5) = 1/2 — asserted in tests.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import DependencyError, MeasuredDependency, format_attrs
from ..violation import Violation, ViolationSet
from .fd import FD


class PFD(MeasuredDependency):
    """A probabilistic functional dependency ``X ->_p Y``."""

    kind = "PFD"
    measure_direction = ">="

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        probability: float = 1.0,
    ) -> None:
        if not 0.0 < probability <= 1.0:
            raise DependencyError(
                f"PFD probability must be in (0, 1], got {probability}"
            )
        self.embedded = FD(lhs, rhs)
        self.lhs = self.embedded.lhs
        self.rhs = self.embedded.rhs
        self.probability = probability

    @property
    def threshold(self) -> float:
        return self.probability

    def __str__(self) -> str:
        return (
            f"{format_attrs(self.lhs)} ->_{self.probability:g} "
            f"{format_attrs(self.rhs)}"
        )

    def __repr__(self) -> str:
        return f"PFD({self.lhs!r}, {self.rhs!r}, probability={self.probability})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PFD):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.probability == other.probability
        )

    def __hash__(self) -> int:
        return hash(("PFD", self.lhs, self.rhs, self.probability))

    def attributes(self) -> tuple[str, ...]:
        return self.embedded.attributes()

    # -- semantics ------------------------------------------------------------

    def per_value_probability(self, relation: Relation) -> dict[tuple, float]:
        """``P(X -> Y, V_X)`` for each distinct X-value."""
        out: dict[tuple, float] = {}
        for x_value, indices in relation.group_by(self.lhs).items():
            counts = Counter(
                relation.values_at(t, self.rhs) for t in indices
            )
            modal = counts.most_common(1)[0][1]
            out[x_value] = modal / len(indices)
        return out

    def measure(self, relation: Relation) -> float:
        """Average per-value probability (1.0 on empty input)."""
        per_value = self.per_value_probability(relation)
        if not per_value:
            return 1.0
        return sum(per_value.values()) / len(per_value)

    def violations(self, relation: Relation) -> ViolationSet:
        """Tuples deviating from the modal Y of their X-group.

        This is the PFD-native evidence used to "pinpoint data sources
        with low quality data" (Section 2.2.4): each non-modal tuple is a
        single-tuple violation, rather than the pairwise FD evidence.
        """
        vs = ViolationSet()
        label = self.label()
        for x_value, indices in relation.group_by(self.lhs).items():
            by_y: dict[tuple, list[int]] = {}
            for t in indices:
                by_y.setdefault(relation.values_at(t, self.rhs), []).append(t)
            if len(by_y) < 2:
                continue
            modal_y = max(by_y, key=lambda y: len(by_y[y]))
            for y_value, ts in by_y.items():
                if y_value == modal_y:
                    continue
                for t in ts:
                    vs.add(
                        Violation(
                            label,
                            (t,),
                            f"X={x_value!r}: {y_value!r} deviates from "
                            f"modal {modal_y!r}",
                        )
                    )
        return vs

    # -- family tree --------------------------------------------------------

    @classmethod
    def from_fd(cls, dep: FD) -> "PFD":
        """Embed an FD as the special PFD with p = 1 (Fig. 1 edge)."""
        return cls(dep.lhs, dep.rhs, probability=1.0)
