"""Pattern tuples ``t_p`` for conditional dependencies (CFDs, eCFDs, ...).

Table 4 of the paper introduces the pattern tuple notation: for each
attribute ``B`` of the embedded FD, ``t_p[B]`` is either a constant from
``dom(B)`` or the unnamed variable ``'_'``.  eCFDs (Section 2.5.5)
generalize entries to ``op a`` with ``op ∈ {=, ≠, <, <=, >, >=}``.

:class:`PatternEntry` covers both: a wildcard, or an operator-constant
predicate; :class:`Pattern` is the mapping attribute -> entry.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Mapping
from typing import Any

Value = Any

WILDCARD = "_"

_OPERATORS: dict[str, Callable[[Value, Value], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Unicode aliases accepted on input for readability.
_ALIASES = {"==": "=", "≠": "!=", "≤": "<=", "≥": ">="}


@dataclass(frozen=True)
class PatternEntry:
    """One cell of a pattern tuple: wildcard, or ``op constant``."""

    op: str
    constant: Value = None

    def __post_init__(self) -> None:
        op = _ALIASES.get(self.op, self.op)
        object.__setattr__(self, "op", op)
        if op != WILDCARD and op not in _OPERATORS:
            raise ValueError(f"unknown pattern operator {self.op!r}")

    @property
    def is_wildcard(self) -> bool:
        return self.op == WILDCARD

    @property
    def is_constant(self) -> bool:
        """True for plain equality constants (the CFD case)."""
        return self.op == "="

    def matches(self, value: Value) -> bool:
        """Whether a tuple value matches this entry.

        Wildcards match anything (including ``None``); predicates never
        match ``None`` (SQL-style: comparisons with missing data are
        not satisfied).
        """
        if self.is_wildcard:
            return True
        if value is None:
            return False
        try:
            return _OPERATORS[self.op](value, self.constant)
        except TypeError:
            # Incomparable types (e.g. '<' between str and int) don't match.
            return False

    def __str__(self) -> str:
        if self.is_wildcard:
            return "_"
        if self.op == "=":
            return repr(self.constant)
        return f"{self.op} {self.constant!r}"


def wildcard() -> PatternEntry:
    return PatternEntry(WILDCARD)


def const(value: Value) -> PatternEntry:
    """Equality constant entry — the only non-wildcard CFDs allow."""
    return PatternEntry("=", value)


def pred(op: str, value: Value) -> PatternEntry:
    """Operator entry for eCFDs, e.g. ``pred("<=", 200)``."""
    return PatternEntry(op, value)


def coerce_entry(raw: object) -> PatternEntry:
    """Lenient conversion used by the CFD/eCFD constructors.

    Accepts a :class:`PatternEntry`, the literal ``'_'``, an
    ``(op, constant)`` pair, or any other value treated as an equality
    constant.
    """
    if isinstance(raw, PatternEntry):
        return raw
    if raw == WILDCARD:
        return wildcard()
    if (
        isinstance(raw, tuple)
        and len(raw) == 2
        and isinstance(raw[0], str)
        and (_ALIASES.get(raw[0], raw[0]) in _OPERATORS)
    ):
        return pred(raw[0], raw[1])
    return const(raw)


class Pattern:
    """A pattern tuple ``t_p``: attribute name -> :class:`PatternEntry`.

    Attributes not mentioned default to wildcards, so a pattern may be
    declared sparsely (only the conditioned attributes).
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Mapping[str, object] | None = None) -> None:
        self._entries: dict[str, PatternEntry] = {
            name: coerce_entry(e) for name, e in (entries or {}).items()
        }

    def entry(self, attribute: str) -> PatternEntry:
        return self._entries.get(attribute, wildcard())

    def entries(self) -> dict[str, PatternEntry]:
        return dict(self._entries)

    def constants(self) -> dict[str, Value]:
        """The equality-constant bindings (CFD tableau cell values)."""
        return {
            a: e.constant for a, e in self._entries.items() if e.is_constant
        }

    def matches(self, record: Mapping[str, Value], attributes: Iterable[str]) -> bool:
        """Whether a tuple (as dict) matches the pattern on ``attributes``."""
        return all(self.entry(a).matches(record.get(a)) for a in attributes)

    def is_pure_wildcard(self, attributes: Iterable[str]) -> bool:
        """True iff every entry over ``attributes`` is a wildcard."""
        return all(self.entry(a).is_wildcard for a in attributes)

    def uses_only_constants(self, attributes: Iterable[str]) -> bool:
        """True iff no entry uses an eCFD operator (only ``=`` / ``_``)."""
        return all(
            self.entry(a).is_wildcard or self.entry(a).is_constant
            for a in attributes
        )

    def generality_key(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """1 per wildcard position — used to order tableau rows."""
        return tuple(
            1 if self.entry(a).is_wildcard else 0 for a in attributes
        )

    def render(self, lhs: Iterable[str], rhs: Iterable[str]) -> str:
        """The paper's ``(a, b || c)`` tableau-row rendering."""
        left = ", ".join(str(self.entry(a)) for a in lhs)
        right = ", ".join(str(self.entry(a)) for a in rhs)
        return f"({left} || {right})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        # Wildcards are defaults, so drop them before comparing.
        mine = {a: e for a, e in self._entries.items() if not e.is_wildcard}
        theirs = {a: e for a, e in other._entries.items() if not e.is_wildcard}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(
            frozenset(
                (a, e) for a, e in self._entries.items() if not e.is_wildcard
            )
        )

    def __repr__(self) -> str:
        return f"Pattern({{{', '.join(f'{a}: {e}' for a, e in self._entries.items())}}})"
