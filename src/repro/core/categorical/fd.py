"""Functional dependencies (FDs) — the root of the family tree.

Section 1.1: an FD ``X -> Y`` over relation ``R`` states that any two
tuples with equal ``X``-values must have identical ``Y``-values.  The
paper's running example is ``fd1: address -> region`` over the hotel
relation of Table 1, where (t3, t4) are a true violation, (t5, t6) are a
false positive caused by format variety, and (t7, t8) are a missed true
violation — the motivating gap the rest of the family tree fills.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Iterator, Sequence

from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import PairwiseDependency, ensure_nonempty, format_attrs
from ..violation import Violation, ViolationSet


def _names(attrs: Iterable[Attribute | str] | Attribute | str) -> tuple[str, ...]:
    if isinstance(attrs, (Attribute, str)):
        attrs = [attrs]
    return tuple(a.name if isinstance(a, Attribute) else a for a in attrs)


class FD(PairwiseDependency):
    """A functional dependency ``X -> Y``.

    ``lhs`` (determinant) and ``rhs`` (dependent) are attribute-name
    tuples; single names are accepted for convenience.
    """

    kind = "FD"

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
    ) -> None:
        self.lhs = ensure_nonempty(_names(lhs), "FD left-hand side")
        self.rhs = ensure_nonempty(_names(rhs), "FD right-hand side")

    # -- identity -----------------------------------------------------------

    def __str__(self) -> str:
        return f"{format_attrs(self.lhs)} -> {format_attrs(self.rhs)}"

    def __repr__(self) -> str:
        return f"FD({self.lhs!r}, {self.rhs!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FD):
            return NotImplemented
        return (
            type(self) is type(other)
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.lhs, self.rhs))

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def is_trivial(self) -> bool:
        """True iff ``Y ⊆ X`` (implied by reflexivity, always holds)."""
        return set(self.rhs) <= set(self.lhs)

    # -- semantics -----------------------------------------------------------

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        if relation.values_at(i, self.lhs) != relation.values_at(j, self.lhs):
            return None
        yi = relation.values_at(i, self.rhs)
        yj = relation.values_at(j, self.rhs)
        if yi == yj:
            return None
        return (
            f"equal {format_attrs(self.lhs)} but "
            f"{format_attrs(self.rhs)}: {yi!r} vs {yj!r}"
        )

    def _rhs_columns(self, relation: Relation) -> list[tuple]:
        """The RHS columns, resolved once per scan (not once per cell)."""
        return [relation.column(a) for a in self.rhs]

    def _split_by_y(
        self, indices: Sequence[int], rhs_cols: list[tuple]
    ) -> dict[tuple, list[int]]:
        """Members of one equal-``X`` group split by their ``Y``-value."""
        by_y: dict[tuple, list[int]] = {}
        for t in indices:
            key = tuple(col[t] for col in rhs_cols)
            by_y.setdefault(key, []).append(t)
        return by_y

    def _group_violations(
        self,
        label: str,
        x_value: tuple,
        indices: Sequence[int],
        rhs_cols: list[tuple],
    ) -> Iterator[Violation]:
        """Violations within one equal-``X`` group (the scan kernel)."""
        if len(indices) < 2:
            return
        by_y = self._split_by_y(indices, rhs_cols)
        if len(by_y) < 2:
            return
        subgroups = list(by_y.items())
        for (ya, ta), (yb, tb) in combinations(subgroups, 2):
            for i in ta:
                for j in tb:
                    yield Violation(
                        label,
                        (i, j),
                        f"X={x_value!r}: {ya!r} vs {yb!r}",
                    )

    def group_violations(
        self, relation: Relation, x_value: tuple, indices: Sequence[int]
    ) -> list[Violation]:
        """Violations within one equal-``X`` group — the incremental
        checkers re-examine only touched groups through this hook, with
        reasons identical to a full :meth:`iter_violations` scan."""
        return list(
            self._group_violations(
                self.label(), x_value, indices, self._rhs_columns(relation)
            )
        )

    def group_kept_count(
        self, relation: Relation, indices: Sequence[int]
    ) -> int:
        """Size of the largest single-``Y`` subgroup (the g3 'keep')."""
        if not indices:
            return 0
        by_y = self._split_by_y(indices, self._rhs_columns(relation))
        return max(len(members) for members in by_y.values())

    def iter_violations(self, relation: Relation) -> Iterator[Violation]:
        """Group-based violation scan — O(n + violations), not O(n²).

        Within each equal-``X`` group, tuples split by their ``Y``-value;
        every cross pair between different ``Y``-subgroups violates.
        The ``X``-groups come from the relation's shared cache, so a
        detector running many rules over one relation groups each LHS
        only once.
        """
        label = self.label()
        rhs_cols = self._rhs_columns(relation)
        for x_value, indices in relation.cached_group_by(self.lhs).items():
            yield from self._group_violations(
                label, x_value, indices, rhs_cols
            )

    def violations(self, relation: Relation) -> ViolationSet:
        return ViolationSet(self.iter_violations(relation))

    def holds(self, relation: Relation) -> bool:
        """Linear-time check: every X-group has a single Y-value."""
        rhs_cols = self._rhs_columns(relation)
        for indices in relation.cached_group_by(self.lhs).values():
            if len(indices) < 2:
                continue
            first = tuple(col[indices[0]] for col in rhs_cols)
            for t in indices[1:]:
                if tuple(col[t] for col in rhs_cols) != first:
                    return False
        return True

    # -- derived quantities ---------------------------------------------------

    def violating_groups(
        self, relation: Relation
    ) -> dict[tuple, list[int]]:
        """Equal-``X`` groups containing more than one ``Y``-value."""
        out: dict[tuple, list[int]] = {}
        rhs_cols = self._rhs_columns(relation)
        for x_value, indices in relation.cached_group_by(self.lhs).items():
            y_values = {
                tuple(col[t] for col in rhs_cols) for t in indices
            }
            if len(y_values) > 1:
                out[x_value] = list(indices)
        return out

    def keeps(self, relation: Relation) -> list[int]:
        """A maximum subset of tuple indices on which the FD holds.

        Per X-group, keep the largest single-``Y`` subgroup; this
        realizes the ``max |s|`` of the AFD g3 definition.
        """
        kept: list[int] = []
        rhs_cols = self._rhs_columns(relation)
        for indices in relation.cached_group_by(self.lhs).values():
            by_y: dict[tuple, list[int]] = {}
            for t in indices:
                key = tuple(col[t] for col in rhs_cols)
                by_y.setdefault(key, []).append(t)
            kept.extend(max(by_y.values(), key=len))
        return sorted(kept)


def fd(lhs, rhs) -> FD:
    """Shorthand constructor: ``fd("address", "region")``."""
    return FD(lhs, rhs)
