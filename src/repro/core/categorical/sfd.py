"""Soft functional dependencies (SFDs) — Section 2.1.

An SFD ``X ->_s Y`` holds when the *strength*

    S(X -> Y, r) = |dom(X)|_r / |dom(X, Y)|_r

is at least ``s``: the value of X determines that of Y "not with
certainty, but with high probability", measured by counting domain
values.  Strength 1 recovers an exact FD (Section 2.1.2).

Worked example (Table 5): S(address -> region, r5) = 2/3 and
S(name -> address, r5) = 1/2 — both asserted in the test suite.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import DependencyError, MeasuredDependency, format_attrs
from ..violation import ViolationSet
from .fd import FD


class SFD(MeasuredDependency):
    """A soft functional dependency ``X ->_s Y``."""

    kind = "SFD"
    measure_direction = ">="

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        strength: float = 1.0,
    ) -> None:
        if not 0.0 < strength <= 1.0:
            raise DependencyError(
                f"SFD strength must be in (0, 1], got {strength}"
            )
        self.embedded = FD(lhs, rhs)
        self.lhs = self.embedded.lhs
        self.rhs = self.embedded.rhs
        self.strength = strength

    @property
    def threshold(self) -> float:
        return self.strength

    def __str__(self) -> str:
        return (
            f"{format_attrs(self.lhs)} ->_{self.strength:g} "
            f"{format_attrs(self.rhs)}"
        )

    def __repr__(self) -> str:
        return f"SFD({self.lhs!r}, {self.rhs!r}, strength={self.strength})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SFD):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.strength == other.strength
        )

    def __hash__(self) -> int:
        return hash(("SFD", self.lhs, self.rhs, self.strength))

    def attributes(self) -> tuple[str, ...]:
        return self.embedded.attributes()

    # -- semantics ---------------------------------------------------------

    def measure(self, relation: Relation) -> float:
        """The strength ``S = |dom(X)| / |dom(XY)|`` (1.0 on empty input).

        Since each distinct XY-value projects onto a distinct X-value or
        shares one, ``|dom(X)| <= |dom(XY)|`` and S is in (0, 1].
        """
        if len(relation) == 0:
            return 1.0
        dom_x = relation.distinct_count(self.lhs)
        dom_xy = relation.distinct_count(
            tuple(dict.fromkeys(self.lhs + self.rhs))
        )
        return dom_x / dom_xy

    def violations(self, relation: Relation) -> ViolationSet:
        """Evidence = the embedded FD's violations.

        Note the SFD may still *hold* despite non-empty evidence when the
        strength clears the threshold; ``holds`` uses the measure.
        """
        vs = ViolationSet()
        for v in self.embedded.iter_violations(relation):
            vs.add(v)
        return vs

    # -- family tree --------------------------------------------------------

    @classmethod
    def from_fd(cls, dep: FD) -> "SFD":
        """Embed an FD as the special SFD with strength 1 (Fig. 1 edge)."""
        return cls(dep.lhs, dep.rhs, strength=1.0)
