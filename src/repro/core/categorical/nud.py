"""Numerical dependencies (NUDs) — Section 2.4.

A NUD ``X ->_k Y`` (weight ``k >= 1``) states that each ``X``-value is
associated with at most ``k`` distinct ``Y``-values.  Despite the name
(historical, from Grant & Minker 1981), NUDs constrain *cardinality*,
not numeric domains.  ``k = 1`` recovers exact FDs (Section 2.4.2).

Worked example (Table 5): ``nud1: address ->_2 region`` holds — "El
Paso" has two representation variants, no address has three.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import Dependency, DependencyError, format_attrs
from ..violation import Violation, ViolationSet
from .fd import FD


class NUD(Dependency):
    """A numerical dependency ``X ->_k Y``."""

    kind = "NUD"

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        weight: int = 1,
    ) -> None:
        if weight < 1:
            raise DependencyError(f"NUD weight must be >= 1, got {weight}")
        self.embedded = FD(lhs, rhs)
        self.lhs = self.embedded.lhs
        self.rhs = self.embedded.rhs
        self.weight = int(weight)

    def __str__(self) -> str:
        return (
            f"{format_attrs(self.lhs)} ->_{self.weight} "
            f"{format_attrs(self.rhs)}"
        )

    def __repr__(self) -> str:
        return f"NUD({self.lhs!r}, {self.rhs!r}, weight={self.weight})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NUD):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.weight == other.weight
        )

    def __hash__(self) -> int:
        return hash(("NUD", self.lhs, self.rhs, self.weight))

    def attributes(self) -> tuple[str, ...]:
        return self.embedded.attributes()

    # -- semantics -----------------------------------------------------------

    def fanout(self, relation: Relation) -> dict[tuple, int]:
        """Number of distinct Y-values per X-value."""
        return {
            x: len({relation.values_at(t, self.rhs) for t in indices})
            for x, indices in relation.group_by(self.lhs).items()
        }

    def max_fanout(self, relation: Relation) -> int:
        """The smallest weight k for which the NUD would hold (0 if empty)."""
        fanout = self.fanout(relation)
        return max(fanout.values(), default=0)

    def holds(self, relation: Relation) -> bool:
        return self.max_fanout(relation) <= self.weight

    def violations(self, relation: Relation) -> ViolationSet:
        """One violation per over-weight X-group, citing all its tuples."""
        vs = ViolationSet()
        label = self.label()
        for x_value, indices in relation.group_by(self.lhs).items():
            distinct = {relation.values_at(t, self.rhs) for t in indices}
            if len(distinct) > self.weight:
                vs.add(
                    Violation(
                        label,
                        tuple(indices),
                        f"X={x_value!r} maps to {len(distinct)} distinct "
                        f"{format_attrs(self.rhs)} values (> {self.weight})",
                    )
                )
        return vs

    # -- applications (Section 2.4.3) ------------------------------------------

    def projection_size_bound(self, relation: Relation) -> int:
        """Upper bound on ``|π_XY(r)|`` implied by the NUD: |dom(X)| * k."""
        return relation.distinct_count(self.lhs) * self.weight

    # -- family tree ---------------------------------------------------------

    @classmethod
    def from_fd(cls, dep: FD) -> "NUD":
        """Embed an FD as the special NUD with weight 1 (Fig. 1 edge)."""
        return cls(dep.lhs, dep.rhs, weight=1)
