"""Approximate functional dependencies (AFDs) — Section 2.3.

An AFD ``X ->_e Y`` holds when the ``g3`` error — the minimum fraction
of tuples whose removal makes the embedded FD hold exactly — is at most
``e``:

    g3(X -> Y, r) = (|r| - max{|s| : s ⊆ r, s |= X -> Y}) / |r|

Computed by grouping on ``X`` and keeping, per group, the largest
single-``Y`` subgroup.  g3 = 0 recovers exact FDs (Section 2.3.2).

Worked example (Table 5): g3(address -> region, r5) = 1/4 and
g3(name -> address, r5) = 1/2 — asserted in tests.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import DependencyError, MeasuredDependency, format_attrs
from ..violation import ViolationSet
from .fd import FD


class AFD(MeasuredDependency):
    """An approximate functional dependency ``X ->_e Y`` (g3 error)."""

    kind = "AFD"
    measure_direction = "<="

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        max_error: float = 0.0,
    ) -> None:
        if not 0.0 <= max_error < 1.0:
            raise DependencyError(
                f"AFD error threshold must be in [0, 1), got {max_error}"
            )
        self.embedded = FD(lhs, rhs)
        self.lhs = self.embedded.lhs
        self.rhs = self.embedded.rhs
        self.max_error = max_error

    @property
    def threshold(self) -> float:
        return self.max_error

    def __str__(self) -> str:
        return (
            f"{format_attrs(self.lhs)} ->_{self.max_error:g} "
            f"{format_attrs(self.rhs)} (g3)"
        )

    def __repr__(self) -> str:
        return f"AFD({self.lhs!r}, {self.rhs!r}, max_error={self.max_error})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AFD):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.max_error == other.max_error
        )

    def __hash__(self) -> int:
        return hash(("AFD", self.lhs, self.rhs, self.max_error))

    def attributes(self) -> tuple[str, ...]:
        return self.embedded.attributes()

    # -- semantics ---------------------------------------------------------

    def measure(self, relation: Relation) -> float:
        """The g3 error in [0, 1] (0 on the empty relation)."""
        return g3_error(self.embedded, relation)

    def removal_set(self, relation: Relation) -> list[int]:
        """A minimum set of tuple indices whose removal satisfies the FD."""
        kept = set(self.embedded.keeps(relation))
        return [i for i in range(len(relation)) if i not in kept]

    def violations(self, relation: Relation) -> ViolationSet:
        """Evidence = the embedded FD's pairwise violations."""
        return self.embedded.violations(relation)

    # -- family tree -----------------------------------------------------------

    @classmethod
    def from_fd(cls, dep: FD) -> "AFD":
        """Embed an FD as the special AFD with error 0 (Fig. 1 edge)."""
        return cls(dep.lhs, dep.rhs, max_error=0.0)


def g3_error(dep: FD, relation: Relation) -> float:
    """``g3`` of an FD: fraction of tuples to delete for exact satisfaction.

    Exact and linear-time: per equal-``X`` group, every tuple outside the
    largest single-``Y`` subgroup must go.
    """
    n = len(relation)
    if n == 0:
        return 0.0
    kept = len(dep.keeps(relation))
    return (n - kept) / n
