"""Multivalued dependencies (MVDs) — Section 2.6 — plus FHDs and AMVDs.

An MVD ``X ->> Y`` over ``R`` (with ``Z = R - X - Y``) is a
*tuple-generating* dependency: a relation satisfies it iff
``r = π_XY(r) ⋈ π_XZ(r)`` — for each ``X``-value, the set of
``Y``-values is independent of the ``Z``-values.  Every FD ``X -> Y``
is an MVD (Section 2.6.2).

Also here, because the paper presents them as MVD refinements:

* :class:`FHD` (Section 2.6.5) — full hierarchical dependencies
  ``X : {Y1, ..., Yk}``, lossless decomposition into k+1 projections;
  ``k = 1`` recovers an MVD.
* :class:`AMVD` (Section 2.6.6) — approximate MVDs that tolerate a
  fraction ``epsilon`` of spurious tuples in the re-join;
  ``epsilon = 0`` recovers an exact MVD.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import (
    Dependency,
    DependencyError,
    MeasuredDependency,
    ensure_nonempty,
    format_attrs,
)
from ..violation import Violation, ViolationSet
from .fd import FD, _names


class MVD(Dependency):
    """A multivalued dependency ``X ->> Y``.

    ``Z`` is implicit: all attributes of the relation not in ``X ∪ Y``.
    """

    kind = "MVD"
    #: Z is the complement of X ∪ Y, so evaluation reads every column.
    reads_whole_relation = True

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
    ) -> None:
        self.lhs = ensure_nonempty(_names(lhs), "MVD left-hand side")
        self.rhs = ensure_nonempty(_names(rhs), "MVD right-hand side")
        overlap = set(self.lhs) & set(self.rhs)
        if overlap:
            # Overlapping X/Y is definable but the paper partitions R;
            # normalize by removing X from Y.
            self.rhs = tuple(a for a in self.rhs if a not in overlap)
            if not self.rhs:
                raise DependencyError("MVD right-hand side is contained in X")

    def __str__(self) -> str:
        return f"{format_attrs(self.lhs)} ->> {format_attrs(self.rhs)}"

    def __repr__(self) -> str:
        return f"MVD({self.lhs!r}, {self.rhs!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MVD):
            return NotImplemented
        return self.lhs == other.lhs and set(self.rhs) == set(other.rhs)

    def __hash__(self) -> int:
        return hash(("MVD", self.lhs, frozenset(self.rhs)))

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def complement_attributes(self, relation: Relation) -> tuple[str, ...]:
        """``Z = R - X - Y`` for a concrete relation."""
        used = set(self.lhs) | set(self.rhs)
        return tuple(
            n for n in relation.schema.names() if n not in used
        )

    # -- semantics -----------------------------------------------------------

    def holds(self, relation: Relation) -> bool:
        """Check ``r = π_XY(r) ⋈ π_XZ(r)`` group-wise in linear space.

        Per X-group the observed (Y, Z) combinations must be the full
        cross product of observed Y-values and observed Z-values.  When
        ``Z`` is empty the MVD is trivial.
        """
        z = self.complement_attributes(relation)
        if not z:
            return True
        for indices in relation.group_by(self.lhs).values():
            ys = {relation.values_at(t, self.rhs) for t in indices}
            zs = {relation.values_at(t, z) for t in indices}
            combos = {
                (relation.values_at(t, self.rhs), relation.values_at(t, z))
                for t in indices
            }
            if len(combos) != len(ys) * len(zs):
                return False
        return True

    def violations(self, relation: Relation) -> ViolationSet:
        """Pairs (t1, t2) with equal X whose swap tuple is missing.

        The MVD requires that for any t1, t2 agreeing on X, the tuple
        built from (X, t1[Y], t2[Z]) also appears; each absence is one
        violation — the classical chase-style evidence.
        """
        vs = ViolationSet()
        label = self.label()
        z = self.complement_attributes(relation)
        if not z:
            return vs
        for indices in relation.group_by(self.lhs).values():
            if len(indices) < 2:
                continue
            combos = {
                (relation.values_at(t, self.rhs), relation.values_at(t, z))
                for t in indices
            }
            for t1 in indices:
                y1 = relation.values_at(t1, self.rhs)
                for t2 in indices:
                    if t1 == t2:
                        continue
                    z2 = relation.values_at(t2, z)
                    if (y1, z2) not in combos:
                        vs.add(
                            Violation(
                                label,
                                (t1, t2),
                                f"missing tuple with {format_attrs(self.rhs)}"
                                f"={y1!r} and {format_attrs(z)}={z2!r}",
                            )
                        )
        return vs

    def decompose(self, relation: Relation) -> tuple[Relation, Relation]:
        """The 4NF decomposition ``(π_XY(r), π_XZ(r))``."""
        z = self.complement_attributes(relation)
        return (
            relation.project(list(self.lhs + self.rhs)),
            relation.project(list(self.lhs + z)),
        )

    def join_of_decomposition(self, relation: Relation) -> Relation:
        """``π_XY(r) ⋈ π_XZ(r)`` reprojected to the original column order."""
        left, right = self.decompose(relation)
        joined = left.natural_join(right)
        return joined.project(list(relation.schema.names()))

    def spurious_fraction(self, relation: Relation) -> float:
        """Fraction of the re-join that is spurious (AMVD's accuracy).

        0 iff the MVD holds exactly.
        """
        joined = self.join_of_decomposition(relation)
        if len(joined) == 0:
            return 0.0
        original = {tuple(row) for row in relation.rows()}
        spurious = sum(
            1 for row in joined.rows() if tuple(row) not in original
        )
        return spurious / len(joined)

    # -- family tree ---------------------------------------------------------

    @classmethod
    def from_fd(cls, dep: FD) -> "MVD":
        """Embed an FD as an MVD (every FD is an MVD, Section 2.6.2)."""
        return cls(dep.lhs, dep.rhs)


class FHD(Dependency):
    """A full hierarchical dependency ``X : {Y1, ..., Yk}``.

    Satisfied iff ``r = π_XY1(r) ⋈ ... ⋈ π_XYk(r) ⋈ π_X(R - X Y1..Yk)(r)``.
    """

    kind = "FHD"
    #: The residual branch covers R minus X and the Yi: every column.
    reads_whole_relation = True

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        branches: Sequence[Sequence[Attribute | str] | Attribute | str],
    ) -> None:
        self.lhs = ensure_nonempty(_names(lhs), "FHD left-hand side")
        self.branches: tuple[tuple[str, ...], ...] = tuple(
            ensure_nonempty(_names(b), "FHD branch") for b in branches
        )
        if not self.branches:
            raise DependencyError("FHD needs at least one branch")
        seen: set[str] = set(self.lhs)
        for b in self.branches:
            for a in b:
                if a in seen:
                    raise DependencyError(
                        f"FHD branches must partition attributes; {a!r} repeats"
                    )
                seen.add(a)

    def __str__(self) -> str:
        branches = ", ".join("{" + format_attrs(b) + "}" for b in self.branches)
        return f"{format_attrs(self.lhs)} : {branches}"

    def __repr__(self) -> str:
        return f"FHD({self.lhs!r}, {self.branches!r})"

    def attributes(self) -> tuple[str, ...]:
        out = list(self.lhs)
        for b in self.branches:
            out.extend(b)
        return tuple(dict.fromkeys(out))

    def rest(self, relation: Relation) -> tuple[str, ...]:
        """``R - X - Y1 - ... - Yk`` for a concrete relation."""
        used = set(self.attributes())
        return tuple(n for n in relation.schema.names() if n not in used)

    def projections(self, relation: Relation) -> list[Relation]:
        parts = [
            relation.project(list(self.lhs + b)) for b in self.branches
        ]
        rest = self.rest(relation)
        if rest:
            parts.append(relation.project(list(self.lhs + rest)))
        return parts

    def holds(self, relation: Relation) -> bool:
        parts = self.projections(relation)
        joined = parts[0]
        for p in parts[1:]:
            joined = joined.natural_join(p)
        joined = joined.project(list(relation.schema.names()))
        return set(joined.rows()) == set(relation.distinct().rows())

    def violations(self, relation: Relation) -> ViolationSet:
        """One violation naming each spurious joined tuple's X-group."""
        vs = ViolationSet()
        label = self.label()
        parts = self.projections(relation)
        joined = parts[0]
        for p in parts[1:]:
            joined = joined.natural_join(p)
        joined = joined.project(list(relation.schema.names()))
        original = set(relation.rows())
        groups = relation.group_by(self.lhs)
        for row in joined.rows():
            if tuple(row) not in original:
                x_value = tuple(
                    row[relation.schema.index_of(a)] for a in self.lhs
                )
                indices = tuple(groups.get(x_value, ()))
                vs.add(
                    Violation(
                        label,
                        indices,
                        f"decomposition join generates spurious tuple {row!r}",
                    )
                )
        return vs

    def as_mvds(self) -> list[MVD]:
        """The MVDs implied branch-wise: ``X ->> Yi`` for each branch."""
        return [MVD(self.lhs, b) for b in self.branches]

    @classmethod
    def from_mvd(cls, dep: MVD) -> "FHD":
        """Embed an MVD as the single-branch FHD (k = 1, Section 2.6.5)."""
        return cls(dep.lhs, [dep.rhs])


class AMVD(MeasuredDependency):
    """An approximate MVD: spurious-join fraction at most ``epsilon``.

    Section 2.6.6: "the accuracy relates to the percentage of spurious
    tuples that will be introduced by joining the relations decomposed
    referring to the MVDs"; ``epsilon = 0`` is the exact MVD.
    """

    kind = "AMVD"
    #: Same join semantics as the exact MVD: reads every column.
    reads_whole_relation = True
    measure_direction = "<="

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        epsilon: float = 0.0,
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise DependencyError(
                f"AMVD epsilon must be in [0, 1), got {epsilon}"
            )
        self.embedded = MVD(lhs, rhs)
        self.lhs = self.embedded.lhs
        self.rhs = self.embedded.rhs
        self.epsilon = epsilon

    @property
    def threshold(self) -> float:
        return self.epsilon

    def __str__(self) -> str:
        return (
            f"{format_attrs(self.lhs)} ->>_{self.epsilon:g} "
            f"{format_attrs(self.rhs)}"
        )

    def __repr__(self) -> str:
        return f"AMVD({self.lhs!r}, {self.rhs!r}, epsilon={self.epsilon})"

    def attributes(self) -> tuple[str, ...]:
        return self.embedded.attributes()

    def measure(self, relation: Relation) -> float:
        return self.embedded.spurious_fraction(relation)

    def violations(self, relation: Relation) -> ViolationSet:
        return self.embedded.violations(relation)

    @classmethod
    def from_mvd(cls, dep: MVD) -> "AMVD":
        """Embed an MVD as the AMVD with epsilon 0 (Fig. 1 edge)."""
        return cls(dep.lhs, dep.rhs, epsilon=0.0)
