"""Dependencies over categorical data (Section 2 of the survey).

Statistical extensions (SFD, PFD, AFD, NUD) relax *how strictly* an FD
must hold over the whole relation; conditional extensions (CFD, eCFD)
restrict *where* it must hold; tuple-generating extensions (MVD, FHD,
AMVD) require the presence of tuples rather than ruling them out.
"""

from .fd import FD, fd
from .sfd import SFD
from .pfd import PFD
from .afd import AFD, g3_error
from .nud import NUD
from .pattern import Pattern, PatternEntry, const, pred, wildcard
from .cfd import CFD, CFDTableau
from .ecfd import ECFD, ecfd
from .mvd import AMVD, FHD, MVD

__all__ = [
    "FD",
    "fd",
    "SFD",
    "PFD",
    "AFD",
    "g3_error",
    "NUD",
    "Pattern",
    "PatternEntry",
    "wildcard",
    "const",
    "pred",
    "CFD",
    "CFDTableau",
    "ECFD",
    "ecfd",
    "MVD",
    "FHD",
    "AMVD",
]
