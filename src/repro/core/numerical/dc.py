"""Denial constraints (DCs) — Section 4.3.

A DC ``∀ t_α, t_β: ¬(P1 ∧ ... ∧ Pm)`` forbids any assignment of tuples
to the variables making every predicate true.  Predicates compare a
tuple attribute against another tuple attribute or a constant with an
operator from ``{=, !=, <, <=, >, >=}``.  DCs subsume ODs (Section
4.3.2) and eCFDs (Section 4.3.3), making them the most expressive
notation in the family tree's numerical branch.

Worked example (Table 7)::

    dc1: ∀ tα, tβ ¬(tα.subtotal < tβ.subtotal ∧ tα.taxes > tβ.taxes)

Single-variable DCs (mentioning only ``t_α``) constrain individual
tuples, e.g. ``¬(t.region = "Chicago" ∧ t.price < 200)`` from the
paper's Section 1.6 discussion.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any

from ...relation.relation import Relation
from ..base import Dependency, DependencyError
from ..violation import Violation, ViolationSet

Value = Any

_OPS: dict[str, Callable[[Value, Value], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_NEGATION = {
    "=": "!=",
    "==": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

#: Tuple variable names, matching the paper's t_alpha / t_beta.
ALPHA = "a"
BETA = "b"


@dataclass(frozen=True)
class Predicate:
    """One DC atom: ``var1.attr1 op (var2.attr2 | constant)``.

    ``rhs_attribute is None`` makes it a constant predicate with
    ``constant`` as the comparison value.
    """

    lhs_var: str
    lhs_attribute: str
    op: str
    rhs_var: str | None = None
    rhs_attribute: str | None = None
    constant: Value = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise DependencyError(f"unknown DC operator {self.op!r}")
        if self.lhs_var not in (ALPHA, BETA):
            raise DependencyError(
                f"tuple variable must be {ALPHA!r} or {BETA!r}"
            )
        if self.rhs_attribute is not None and self.rhs_var not in (ALPHA, BETA):
            raise DependencyError(
                "attribute comparisons need a tuple variable on the right"
            )

    @property
    def is_constant(self) -> bool:
        return self.rhs_attribute is None

    def variables(self) -> set[str]:
        out = {self.lhs_var}
        if self.rhs_var is not None:
            out.add(self.rhs_var)
        return out

    def evaluate(self, relation: Relation, assignment: dict[str, int]) -> bool:
        """Evaluate under a variable -> tuple-index assignment.

        Comparisons involving ``None`` or incomparable types are false
        (SQL-style), so missing data never triggers a denial.
        """
        left = relation.value_at(
            assignment[self.lhs_var], self.lhs_attribute
        )
        if self.is_constant:
            right = self.constant
        else:
            right = relation.value_at(
                assignment[self.rhs_var], self.rhs_attribute
            )
        if left is None or right is None:
            return False
        try:
            return _OPS[self.op](left, right)
        except TypeError:
            return False

    def negated(self) -> "Predicate":
        """The complement predicate (used by FASTDC's evidence covers)."""
        return Predicate(
            self.lhs_var,
            self.lhs_attribute,
            _NEGATION[self.op],
            self.rhs_var,
            self.rhs_attribute,
            self.constant,
        )

    def attributes(self) -> tuple[str, ...]:
        if self.rhs_attribute is not None and self.rhs_attribute != self.lhs_attribute:
            return (self.lhs_attribute, self.rhs_attribute)
        return (self.lhs_attribute,)

    def __str__(self) -> str:
        left = f"t{self.lhs_var}.{self.lhs_attribute}"
        if self.is_constant:
            return f"{left} {self.op} {self.constant!r}"
        return f"{left} {self.op} t{self.rhs_var}.{self.rhs_attribute}"


def pred2(attr1: str, op: str, attr2: str | None = None) -> Predicate:
    """Two-tuple predicate ``tα.attr1 op tβ.attr2`` (attr2 defaults attr1)."""
    return Predicate(ALPHA, attr1, op, BETA, attr2 if attr2 else attr1)


def predc(attr: str, op: str, constant: Value, var: str = ALPHA) -> Predicate:
    """Constant predicate ``t.attr op c``."""
    return Predicate(var, attr, op, None, None, constant)


class DC(Dependency):
    """A denial constraint ``¬(P1 ∧ ... ∧ Pm)``."""

    kind = "DC"

    def __init__(self, predicates: Sequence[Predicate]) -> None:
        self.predicates = tuple(predicates)
        if not self.predicates:
            raise DependencyError("DC needs at least one predicate")
        self._variables = sorted(
            set().union(*(p.variables() for p in self.predicates))
        )

    def __str__(self) -> str:
        body = " ∧ ".join(str(p) for p in self.predicates)
        return f"¬({body})"

    def __repr__(self) -> str:
        return f"DC({list(self.predicates)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DC):
            return NotImplemented
        return set(self.predicates) == set(other.predicates)

    def __hash__(self) -> int:
        return hash(frozenset(self.predicates))

    def attributes(self) -> tuple[str, ...]:
        names: list[str] = []
        for p in self.predicates:
            names.extend(p.attributes())
        return tuple(dict.fromkeys(names))

    @property
    def is_single_tuple(self) -> bool:
        return self._variables in (["a"], ["b"])

    def width(self) -> int:
        """Number of predicates (the DC's size, used for minimality)."""
        return len(self.predicates)

    # -- semantics ---------------------------------------------------------

    def _assignment_denied(
        self, relation: Relation, assignment: dict[str, int]
    ) -> bool:
        """All predicates true ⇒ the assignment is a violation."""
        return all(p.evaluate(relation, assignment) for p in self.predicates)

    def violations(self, relation: Relation) -> ViolationSet:
        from ...plan import denial_violations, plan_enabled

        if plan_enabled():
            return ViolationSet(denial_violations(self, relation))
        return self._naive_violations(relation)

    def _naive_violations(self, relation: Relation) -> ViolationSet:
        """Reference ordered scan (the plan kernels must match this)."""
        vs = ViolationSet()
        label = self.label()
        n = len(relation)
        if self.is_single_tuple:
            var = self._variables[0]
            for i in range(n):
                if self._assignment_denied(relation, {var: i}):
                    vs.add(
                        Violation(label, (i,), "tuple satisfies all atoms")
                    )
            return vs
        # Two-variable DCs quantify over ordered pairs with α != β.
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                if self._assignment_denied(relation, {ALPHA: i, BETA: j}):
                    vs.add(
                        Violation(
                            label,
                            (i, j),
                            f"(tα=t{i}, tβ=t{j}) satisfies all atoms",
                        )
                    )
        return vs

    def holds(self, relation: Relation) -> bool:
        from ...plan import denial_violations, plan_enabled

        if plan_enabled():
            return not denial_violations(self, relation, first_only=True)
        n = len(relation)
        if self.is_single_tuple:
            var = self._variables[0]
            return not any(
                self._assignment_denied(relation, {var: i}) for i in range(n)
            )
        for i in range(n):
            for j in range(n):
                if i != j and self._assignment_denied(
                    relation, {ALPHA: i, BETA: j}
                ):
                    return False
        return True

    def g3_error(self, relation: Relation) -> float:
        """Greedy fraction of tuples to drop so the DC holds (A-FASTDC)."""
        pairs = {
            tuple(sorted(v.tuples)) for v in self.violations(relation)
        }
        if not pairs:
            return 0.0
        singles = {p[0] for p in pairs if len(p) == 1}
        duos = {p for p in pairs if len(p) == 2}
        removed = set(singles)
        duos = {p for p in duos if not (set(p) & removed)}
        while duos:
            counts: dict[int, int] = {}
            for x, y in duos:
                counts[x] = counts.get(x, 0) + 1
                counts[y] = counts.get(y, 0) + 1
            worst = max(counts, key=counts.get)
            removed.add(worst)
            duos = {p for p in duos if worst not in p}
        return len(removed) / len(relation)

    # -- family tree ---------------------------------------------------------

    @classmethod
    def from_fd(cls, dep) -> "DC":
        """Embed an FD ``X -> Y`` as ``¬(⋀ tα.X = tβ.X ∧ tα.A != tβ.A)``.

        One DC per dependent attribute would be minimal; for a
        multi-attribute RHS this builds the disjunction-free safe form
        over the first attribute only when |Y| = 1, else raises.
        """
        from ..categorical.fd import FD

        if not isinstance(dep, FD):
            raise DependencyError(f"expected an FD, got {type(dep).__name__}")
        if len(dep.rhs) != 1:
            raise DependencyError(
                "embed multi-RHS FDs one attribute at a time"
            )
        atoms = [pred2(a, "=") for a in dep.lhs]
        atoms.append(pred2(dep.rhs[0], "!="))
        return cls(atoms)

    @classmethod
    def from_od(cls, dep: "object") -> "DC":
        """Embed an OD as a DC (Fig. 1 edge, Section 4.3.2).

        The OD ``X -> Y`` (marked) is violated by a pair satisfying the
        X-marks whose Y-marks fail for some attribute.  For a
        single-mark RHS this is exactly one DC:
        ``¬(tα.X mark tβ.X ∧ tα.Y ¬mark tβ.Y)``.  Multi-mark RHS ODs
        need one DC per RHS attribute (their conjunction); this builds
        that list via :meth:`from_od_all`.
        """
        dcs = cls.from_od_all(dep)
        if len(dcs) != 1:
            raise DependencyError(
                "OD has several RHS marks; use from_od_all"
            )
        return dcs[0]

    @classmethod
    def from_od_all(cls, dep: "object") -> list["DC"]:
        """All DCs jointly equivalent to an OD (one per RHS mark).

        Subtlety: a pair violates the OD when the *conjunction* of RHS
        marks fails, i.e. at least one mark fails, which is precisely
        the union of the per-mark DCs' violations.
        """
        from .od import OD, _NEG_MARK

        if not isinstance(dep, OD):
            raise DependencyError(f"expected an OD, got {type(dep).__name__}")
        lhs_atoms = [
            Predicate(ALPHA, m.attribute, m.mark, BETA, m.attribute)
            for m in dep.lhs
        ]
        out: list[DC] = []
        for m in dep.rhs:
            atoms = list(lhs_atoms)
            atoms.append(
                Predicate(ALPHA, m.attribute, _NEG_MARK[m.mark], BETA, m.attribute)
            )
            out.append(cls(atoms))
        return out

    @classmethod
    def from_ecfd(cls, dep: "object") -> "DC":
        """Embed an eCFD as a DC (Fig. 1 edge, Section 4.3.3).

        Pattern predicates become constant atoms on ``t_α`` (and for
        LHS cells also on ``t_β``), equality on X and inequality on the
        single RHS attribute become two-tuple atoms — exactly the dc3
        construction of the paper.  Constant RHS cells additionally
        yield a single-tuple DC; this method returns the pairwise DC
        and raises for constant-RHS patterns (use
        :meth:`from_ecfd_all`).
        """
        dcs = cls.from_ecfd_all(dep)
        if len(dcs) != 1:
            raise DependencyError(
                "eCFD has RHS pattern predicates; use from_ecfd_all"
            )
        return dcs[0]

    @classmethod
    def from_ecfd_all(cls, dep: "object") -> list["DC"]:
        """All DCs jointly equivalent to an eCFD."""
        from ..categorical.cfd import CFD

        if not isinstance(dep, CFD):
            raise DependencyError(
                f"expected a CFD/eCFD, got {type(dep).__name__}"
            )
        if len(dep.rhs) != 1:
            raise DependencyError("embed multi-RHS eCFDs one RHS at a time")
        rhs_attr = dep.rhs[0]

        lhs_pattern_atoms: list[Predicate] = []
        for a in dep.lhs:
            entry = dep.pattern.entry(a)
            if not entry.is_wildcard:
                lhs_pattern_atoms.append(predc(a, entry.op, entry.constant, ALPHA))
                lhs_pattern_atoms.append(predc(a, entry.op, entry.constant, BETA))

        out: list[DC] = []
        # Pairwise part: matching pattern + equal X + different Y.
        atoms = list(lhs_pattern_atoms)
        atoms.extend(pred2(a, "=") for a in dep.lhs)
        atoms.append(pred2(rhs_attr, "!="))
        out.append(cls(atoms))

        # Single-tuple part for a constant/predicate RHS cell: a tuple
        # matching the LHS pattern must satisfy the RHS predicate.
        rhs_entry = dep.pattern.entry(rhs_attr)
        if not rhs_entry.is_wildcard:
            single_atoms = [
                predc(a, dep.pattern.entry(a).op, dep.pattern.entry(a).constant, ALPHA)
                for a in dep.lhs
                if not dep.pattern.entry(a).is_wildcard
            ]
            negated = Predicate(
                ALPHA, rhs_attr, _NEGATION[rhs_entry.op], None, None,
                rhs_entry.constant,
            )
            single_atoms.append(negated)
            out.append(cls(single_atoms))
        return out
