"""Order dependencies (ODs) — Section 4.2.

ODs generalize OFDs by letting each attribute carry its own *marked*
ordering direction: ``A^<=``, ``A^>=``, ``A^<``, ``A^>``.  An OD
``X -> Y`` over marked attributes states that ``t1[X] t2`` (each marked
comparison holds) implies ``t1[Y] t2``.

Worked example (Table 7): ``od1: nights^<= -> avg/night^>=`` — the more
nights, the lower the per-night average.  OFDs are ODs with all marks
``<=`` (Section 4.2.2).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ...relation.relation import Relation
from ..base import DependencyError, PairwiseDependency
from .ofd import OFD

_MARK_OPS: dict[str, Callable] = {
    "<=": operator.le,
    ">=": operator.ge,
    "<": operator.lt,
    ">": operator.gt,
}

_ALIASES = {"≤": "<=", "≥": ">=", "asc": "<=", "desc": ">="}

#: Logical negation of each mark (used by the OD -> DC embedding).
_NEG_MARK = {"<=": ">", ">=": "<", "<": ">=", ">": "<="}


@dataclass(frozen=True)
class MarkedAttribute:
    """An attribute with an ordering mark, e.g. ``nights^<=``."""

    attribute: str
    mark: str = "<="

    def __post_init__(self) -> None:
        mark = _ALIASES.get(self.mark, self.mark)
        object.__setattr__(self, "mark", mark)
        if mark not in _MARK_OPS:
            raise DependencyError(
                f"unknown ordering mark {self.mark!r}; "
                f"expected one of {sorted(_MARK_OPS)}"
            )

    def compare(self, a: object, b: object) -> bool:
        """``a mark b``; undefined (None/incomparable) returns False."""
        if a is None or b is None:
            return False
        try:
            return _MARK_OPS[self.mark](a, b)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.attribute}^{self.mark}"


def coerce_marked(
    spec: Sequence[MarkedAttribute | tuple[str, str] | str] | str,
) -> tuple[MarkedAttribute, ...]:
    """Accept marked attributes, (attr, mark) pairs, or bare names.

    Bare names default to ascending (``<=``).
    """
    if isinstance(spec, str):
        spec = [spec]
    out: list[MarkedAttribute] = []
    for item in spec:
        if isinstance(item, MarkedAttribute):
            out.append(item)
        elif isinstance(item, tuple):
            out.append(MarkedAttribute(item[0], item[1]))
        else:
            out.append(MarkedAttribute(item))
    return tuple(out)


class OD(PairwiseDependency):
    """An order dependency over marked attribute lists."""

    kind = "OD"

    def __init__(
        self,
        lhs: Sequence[MarkedAttribute | tuple[str, str] | str] | str,
        rhs: Sequence[MarkedAttribute | tuple[str, str] | str] | str,
    ) -> None:
        self.lhs = coerce_marked(lhs)
        self.rhs = coerce_marked(rhs)
        if not self.lhs or not self.rhs:
            raise DependencyError("OD needs marked attributes on both sides")

    def __str__(self) -> str:
        left = ", ".join(str(m) for m in self.lhs)
        right = ", ".join(str(m) for m in self.rhs)
        return f"{left} -> {right}"

    def __repr__(self) -> str:
        return f"OD({self.lhs!r}, {self.rhs!r})"

    def attributes(self) -> tuple[str, ...]:
        return tuple(
            dict.fromkeys(
                [m.attribute for m in self.lhs]
                + [m.attribute for m in self.rhs]
            )
        )

    # -- semantics ------------------------------------------------------------

    def _ordered(
        self, relation: Relation, i: int, j: int, marks: tuple[MarkedAttribute, ...]
    ) -> bool:
        return all(
            m.compare(
                relation.value_at(i, m.attribute),
                relation.value_at(j, m.attribute),
            )
            for m in marks
        )

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        """ODs are direction-sensitive: check both pair orientations."""
        for a, b in ((i, j), (j, i)):
            if self._ordered(relation, a, b, self.lhs) and not self._ordered(
                relation, a, b, self.rhs
            ):
                left = ", ".join(str(m) for m in self.lhs)
                right = ", ".join(str(m) for m in self.rhs)
                return (
                    f"t{a}[{left}]t{b} holds but t{a}[{right}]t{b} fails"
                )
        return None

    # -- family tree -----------------------------------------------------------

    @classmethod
    def from_ofd(cls, dep: OFD) -> "OD":
        """Embed a (pointwise) OFD as the all-ascending OD (Fig. 1)."""
        if dep.ordering != "pointwise":
            raise DependencyError(
                "only pointwise OFDs embed directly into ODs"
            )
        return cls(
            [MarkedAttribute(a, "<=") for a in dep.lhs],
            [MarkedAttribute(a, "<=") for a in dep.rhs],
        )
