"""Sequential dependencies (SDs) — Section 4.4 — and conditional SDs.

An SD ``X ->_g Y`` states: when tuples are sorted on ``X``, the
*directed* difference between the ``Y``-values of consecutive tuples
lies in the interval ``g``.  Intervals like ``[0, ∞)`` or ``(-∞, 0]``
express plain order relationships, which is how SDs subsume ODs
(Section 4.4.2).

Worked example (Table 7): ``sd1: nights ->_[100,200] subtotal`` —
sorted on nights, subtotal increases by 180, 170, 160, all within
[100, 200].

:class:`CSD` (Section 4.4.5) restricts an SD to intervals of the
ordered attribute; its *tableau* of intervals is discovered by an exact
quadratic dynamic program (:mod:`repro.discovery.sd_discovery`).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import Dependency, DependencyError, format_attrs
from ..categorical.fd import _names
from ..heterogeneous.constraints import Interval
from ..violation import Violation, ViolationSet
from .od import OD


def _parse_gap(spec: object) -> Interval:
    """Parse an SD gap interval.

    Accepts an Interval, a (low, high) pair (either may be ±inf), or a
    single number b meaning [b, b].
    """
    if isinstance(spec, Interval):
        return spec
    if isinstance(spec, (int, float)):
        return Interval(float(spec), float(spec))
    if isinstance(spec, tuple) and len(spec) == 2:
        low = -math.inf if spec[0] is None else float(spec[0])
        high = math.inf if spec[1] is None else float(spec[1])
        return Interval(low, high)
    raise DependencyError(f"cannot interpret SD interval {spec!r}")


class SD(Dependency):
    """A sequential dependency ``X ->_g Y``."""

    kind = "SD"

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Attribute | str,
        gap: object = (0.0, None),
    ) -> None:
        self.lhs = _names(lhs)
        if not self.lhs:
            raise DependencyError("SD needs ordered attributes on the left")
        rhs_names = _names(rhs)
        if len(rhs_names) != 1:
            raise DependencyError("SD measures a single dependent attribute")
        self.rhs = rhs_names[0]
        self.gap = _parse_gap(gap)

    def __str__(self) -> str:
        return f"{format_attrs(self.lhs)} ->_{self.gap} {self.rhs}"

    def __repr__(self) -> str:
        return f"SD({self.lhs!r}, {self.rhs!r}, gap={self.gap})"

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + (self.rhs,)))

    # -- ordering ------------------------------------------------------------

    def sorted_indices(self, relation: Relation) -> list[int]:
        """Tuple indices sorted by the ordered attributes ``X``.

        Tuples with missing ``X`` or ``Y`` values are excluded — the
        sequence semantics is undefined for them.
        """
        usable = [
            i
            for i in range(len(relation))
            if all(relation.value_at(i, a) is not None for a in self.lhs)
            and relation.value_at(i, self.rhs) is not None
        ]
        return sorted(usable, key=lambda i: relation.values_at(i, self.lhs))

    def consecutive_gaps(
        self, relation: Relation
    ) -> list[tuple[int, int, float]]:
        """(prev_index, next_index, y_next - y_prev) along the X-order."""
        order = self.sorted_indices(relation)
        out: list[tuple[int, int, float]] = []
        for a, b in zip(order, order[1:], strict=False):
            ya = relation.value_at(a, self.rhs)
            yb = relation.value_at(b, self.rhs)
            out.append((a, b, float(yb) - float(ya)))
        return out

    # -- semantics --------------------------------------------------------------

    def holds(self, relation: Relation) -> bool:
        return all(
            self.gap.contains(delta)
            for __, __, delta in self.consecutive_gaps(relation)
        )

    def violations(self, relation: Relation) -> ViolationSet:
        vs = ViolationSet()
        label = self.label()
        for a, b, delta in self.consecutive_gaps(relation):
            if not self.gap.contains(delta):
                vs.add(
                    Violation(
                        label,
                        (a, b),
                        f"consecutive {self.rhs} gap {delta:g} ∉ {self.gap}",
                    )
                )
        return vs

    def confidence(self, relation: Relation) -> float:
        """Golab et al.'s edit-based confidence, via the longest valid run.

        The confidence of an SD is defined through the minimum number of
        insertions/deletions making it hold; deletions alone suffice for
        an upper-bound sequence, so we compute the longest subsequence
        (in X-order) whose consecutive gaps all fall in ``g`` — an
        O(n²) DP — and report ``|longest| / n``.
        """
        order = self.sorted_indices(relation)
        n = len(order)
        if n == 0:
            return 1.0
        ys = [float(relation.value_at(i, self.rhs)) for i in order]
        best = [1] * n
        for k in range(1, n):
            for m in range(k):
                if self.gap.contains(ys[k] - ys[m]) and best[m] + 1 > best[k]:
                    best[k] = best[m] + 1
        return max(best) / n

    # -- family tree -----------------------------------------------------------

    @classmethod
    def from_od(cls, dep: OD) -> "SD":
        """Embed a single-attribute OD as an SD (Fig. 1, Section 4.4.2).

        ``nights^<= -> price^<=`` becomes ``nights ->_[0,∞) price`` and
        ``... -> price^>=`` becomes ``nights ->_(-∞,0] price``.  Only
        ascending single-mark LHS and single-mark RHS ODs have a direct
        SD form (the paper's od1/sd2 example shape).
        """
        if len(dep.rhs) != 1:
            raise DependencyError("SD embedding expects a single RHS mark")
        if any(m.mark not in ("<=", "<") for m in dep.lhs):
            raise DependencyError(
                "SD embedding expects ascending LHS marks (sort order)"
            )
        rhs = dep.rhs[0]
        if rhs.mark in ("<=", "<"):
            gap = Interval(0.0, math.inf, low_open=(rhs.mark == "<"))
        else:
            gap = Interval(-math.inf, 0.0, high_open=(rhs.mark == ">"))
        return cls([m.attribute for m in dep.lhs], rhs.attribute, gap)


class CSD(Dependency):
    """A conditional sequential dependency: an SD with an interval tableau.

    The embedded SD must hold within each interval of the ordered
    attribute listed in the tableau (Section 4.4.5).
    """

    kind = "CSD"

    def __init__(
        self,
        lhs: Attribute | str,
        rhs: Attribute | str,
        gap: object,
        intervals: Sequence[object],
    ) -> None:
        lhs_names = _names(lhs)
        if len(lhs_names) != 1:
            raise DependencyError(
                "CSD conditions intervals of a single ordered attribute"
            )
        self.sd = SD(lhs_names, rhs, gap)
        self.lhs = self.sd.lhs
        self.rhs = self.sd.rhs
        self.gap = self.sd.gap
        self.intervals: tuple[Interval, ...] = tuple(
            _parse_gap(iv) if not isinstance(iv, Interval) else iv
            for iv in intervals
        )
        if not self.intervals:
            raise DependencyError("CSD tableau must be non-empty")

    def __str__(self) -> str:
        tableau = ", ".join(str(iv) for iv in self.intervals)
        return f"{self.sd} on [{tableau}]"

    def __repr__(self) -> str:
        return (
            f"CSD({self.lhs[0]!r}, {self.rhs!r}, gap={self.gap}, "
            f"intervals={list(self.intervals)!r})"
        )

    def attributes(self) -> tuple[str, ...]:
        return self.sd.attributes()

    def _restrict(self, relation: Relation, interval: Interval) -> Relation:
        attr = self.lhs[0]

        def inside(record: dict) -> bool:
            v = record.get(attr)
            return v is not None and interval.contains(float(v))

        return relation.select(inside)

    def holds(self, relation: Relation) -> bool:
        return all(
            self.sd.holds(self._restrict(relation, iv))
            for iv in self.intervals
        )

    def violations(self, relation: Relation) -> ViolationSet:
        """Violations per tableau interval, re-indexed to the full relation."""
        vs = ViolationSet()
        attr = self.lhs[0]
        label = self.label()
        for iv in self.intervals:
            keep = [
                i
                for i in range(len(relation))
                if relation.value_at(i, attr) is not None
                and iv.contains(float(relation.value_at(i, attr)))
            ]
            sub = relation.take(keep)
            for v in self.sd.violations(sub):
                original = tuple(keep[t] for t in v.tuples)
                vs.add(Violation(label, original, f"in {iv}: {v.reason}"))
        return vs

    def confidence(self, relation: Relation) -> float:
        """Tuple-weighted mean confidence across tableau intervals."""
        total = 0
        weighted = 0.0
        for iv in self.intervals:
            sub = self._restrict(relation, iv)
            if len(sub) == 0:
                continue
            total += len(sub)
            weighted += self.sd.confidence(sub) * len(sub)
        return weighted / total if total else 1.0

    @classmethod
    def from_sd(cls, dep: SD) -> "CSD":
        """Embed an SD as the CSD conditioned on the full range."""
        if len(dep.lhs) != 1:
            raise DependencyError("CSD embedding expects single-attribute X")
        return cls(
            dep.lhs[0],
            dep.rhs,
            dep.gap,
            [Interval(-math.inf, math.inf)],
        )
