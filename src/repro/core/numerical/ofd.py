"""Ordered functional dependencies (OFDs) — Section 4.1.

An OFD ``X ->^P Y`` (pointwise ordering) states: for all tuple pairs,
``t1[X] <=_P t2[X]`` implies ``t1[Y] <=_P t2[Y]``, where ``<=_P`` holds
when *every* attribute value of the left tuple is <= the right tuple's.
The paper also mentions the lexicographical variant [76, 77], provided
here as ``ordering="lex"``.

Worked example (Table 7): ``ofd1: subtotal ->^P taxes`` — higher
subtotal implies higher taxes.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...relation.relation import Relation
from ...relation.schema import Attribute
from ..base import DependencyError, PairwiseDependency, format_attrs
from ..categorical.fd import _names

_ORDERINGS = ("pointwise", "lex")


def pointwise_leq(a: tuple, b: tuple) -> bool:
    """``a <=_P b``: every component of a is <= the matching one of b."""
    try:
        return all(x <= y for x, y in zip(a, b, strict=False))
    except TypeError:
        return False


def lex_leq(a: tuple, b: tuple) -> bool:
    """Lexicographical ``a <= b``."""
    try:
        return a <= b
    except TypeError:
        return False


class OFD(PairwiseDependency):
    """An ordered functional dependency ``X ->^P Y``."""

    kind = "OFD"

    def __init__(
        self,
        lhs: Sequence[Attribute | str] | Attribute | str,
        rhs: Sequence[Attribute | str] | Attribute | str,
        ordering: str = "pointwise",
    ) -> None:
        self.lhs = _names(lhs)
        self.rhs = _names(rhs)
        if not self.lhs or not self.rhs:
            raise DependencyError("OFD needs attributes on both sides")
        if ordering not in _ORDERINGS:
            raise DependencyError(
                f"ordering must be one of {_ORDERINGS}, got {ordering!r}"
            )
        self.ordering = ordering
        self._leq = pointwise_leq if ordering == "pointwise" else lex_leq

    def __str__(self) -> str:
        sup = "P" if self.ordering == "pointwise" else "lex"
        return f"{format_attrs(self.lhs)} ->^{sup} {format_attrs(self.rhs)}"

    def __repr__(self) -> str:
        return f"OFD({self.lhs!r}, {self.rhs!r}, ordering={self.ordering!r})"

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    # -- semantics ---------------------------------------------------------

    def pair_violation(self, relation: Relation, i: int, j: int) -> str | None:
        """Check both orientations of the (unordered) scanner pair.

        ``None`` values make a comparison undefined; such pairs are
        skipped (cannot witness a violation).
        """
        xi = relation.values_at(i, self.lhs)
        xj = relation.values_at(j, self.lhs)
        yi = relation.values_at(i, self.rhs)
        yj = relation.values_at(j, self.rhs)
        if any(v is None for v in xi + xj + yi + yj):
            return None
        if self._leq(xi, xj) and not self._leq(yi, yj):
            return (
                f"{format_attrs(self.lhs)}: {xi!r} <= {xj!r} but "
                f"{format_attrs(self.rhs)}: {yi!r} !<= {yj!r}"
            )
        if self._leq(xj, xi) and not self._leq(yj, yi):
            return (
                f"{format_attrs(self.lhs)}: {xj!r} <= {xi!r} but "
                f"{format_attrs(self.rhs)}: {yj!r} !<= {yi!r}"
            )
        return None
