"""Dependencies over numerical data (Section 4 of the survey).

Order relationships replace equality: pointwise-ordered OFDs, marked
ODs, general denial constraints, and distance-on-consecutive-tuples
SDs/CSDs.
"""

from .ofd import OFD, lex_leq, pointwise_leq
from .od import OD, MarkedAttribute, coerce_marked
from .dc import ALPHA, BETA, DC, Predicate, pred2, predc
from .sd import CSD, SD

__all__ = [
    "OFD",
    "pointwise_leq",
    "lex_leq",
    "OD",
    "MarkedAttribute",
    "coerce_marked",
    "DC",
    "Predicate",
    "pred2",
    "predc",
    "ALPHA",
    "BETA",
    "SD",
    "CSD",
]
