"""repro — an executable reproduction of the data-dependency family tree.

This library makes the survey *Data Dependencies Extended for Variety
and Veracity: A Family Tree* (Song, Gao, Huang, Wang; TKDE 2022 / ICDE
2023) executable:

* :mod:`repro.relation` — the relational substrate (schemas, relations,
  stripped partitions, indexes, CSV I/O);
* :mod:`repro.metrics` — distance/similarity metrics and fuzzy
  resemblance relations;
* :mod:`repro.core` — all 24 dependency notations of the survey with
  uniform ``holds``/``violations`` semantics, and the family tree of
  extensions (Fig. 1A) with executable embeddings;
* :mod:`repro.discovery` — the cited discovery algorithms (TANE,
  FastFD, CORDS, CFD/DC/OD/SD discovery, ...);
* :mod:`repro.quality` — the application engines of Table 3 (violation
  detection, repair, dedup, imputation, CQA, optimizer statistics,
  normalization, fairness);
* :mod:`repro.datasets` — the paper's worked-example tables and
  synthetic workload generators;
* :mod:`repro.survey` — machine-readable Tables 2/3 and Figs 1B/2/3.

Quickstart::

    from repro import FD, hotel_r1
    fd1 = FD("address", "region")
    r1 = hotel_r1()
    print(fd1.holds(r1))            # False
    print(fd1.violations(r1))       # (t3, t4) and (t5, t6), 1-based
"""

from .relation import (
    Attribute,
    AttributeType,
    Relation,
    Schema,
    read_csv,
    read_csv_text,
)
from .metrics import (
    ABS_DIFF,
    DISCRETE,
    EDIT_DISTANCE,
    Metric,
    MetricRegistry,
)
from .core import (
    AFD,
    ALPHA,
    AMVD,
    BETA,
    CD,
    CDD,
    CFD,
    CFDTableau,
    CMD,
    CSD,
    DC,
    DD,
    DEFAULT_TREE,
    ECFD,
    FD,
    FFD,
    FHD,
    MD,
    MFD,
    MVD,
    NED,
    NUD,
    OD,
    OFD,
    PAC,
    PFD,
    SD,
    SFD,
    Conjunction,
    Dependency,
    DependencyError,
    DifferentialFunction,
    ExtensionEdge,
    FamilyTree,
    Interval,
    MarkedAttribute,
    Pattern,
    Predicate,
    SimilarityFunction,
    SimilarityPredicate,
    Violation,
    ViolationSet,
    pred2,
    predc,
    verify_edge,
)
from .incremental import (
    BatchChange,
    Delta,
    DeltaError,
    IncrementalDetector,
    parse_mutation_log,
)
from .datasets import (
    dataspace_person,
    fd_workload,
    heterogeneous_workload,
    hotel_r1,
    hotel_r5,
    hotel_r6,
    hotel_r7,
    ordered_workload,
    random_relation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrate
    "Attribute", "AttributeType", "Relation", "Schema",
    "read_csv", "read_csv_text",
    "Metric", "MetricRegistry", "EDIT_DISTANCE", "ABS_DIFF", "DISCRETE",
    # framework
    "Dependency", "DependencyError", "Conjunction",
    "Violation", "ViolationSet",
    # notations
    "FD", "SFD", "PFD", "AFD", "NUD", "CFD", "CFDTableau", "ECFD",
    "MVD", "FHD", "AMVD",
    "MFD", "NED", "DD", "CDD", "CD", "PAC", "FFD", "MD", "CMD",
    "OFD", "OD", "DC", "SD", "CSD",
    # building blocks
    "Pattern", "Interval", "DifferentialFunction", "SimilarityPredicate",
    "SimilarityFunction", "MarkedAttribute", "Predicate", "pred2", "predc",
    "ALPHA", "BETA",
    # family tree
    "FamilyTree", "ExtensionEdge", "verify_edge", "DEFAULT_TREE",
    # incremental validation
    "BatchChange", "Delta", "DeltaError", "IncrementalDetector",
    "parse_mutation_log",
    # datasets
    "hotel_r1", "hotel_r5", "hotel_r6", "hotel_r7", "dataspace_person",
    "fd_workload", "heterogeneous_workload", "ordered_workload",
    "random_relation",
]
