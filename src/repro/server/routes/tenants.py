"""Tenant registration and lifecycle."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..http import HttpError, Request, Response, json_response
from ..state import parse_schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ReproApp


async def register(app: "ReproApp", request: Request) -> Response:
    """``POST /tenants`` — declare a tenant and its relation schema.

    Body::

        {"tenant": "acme",
         "schema": {"attributes": [{"name": "price", "type": "numerical"},
                                   "city"]},
         "rows": [[12.5, "Lisbon"], {"price": 9.0, "city": "Porto"}]}

    ``rows`` (optional) seeds the initial relation state.
    """
    payload = request.json_object()
    tenant_id = payload.get("tenant")
    if not isinstance(tenant_id, str) or not tenant_id:
        raise HttpError(400, 'body needs a non-empty string "tenant"')
    if "schema" not in payload:
        raise HttpError(400, 'body needs a "schema" declaration')
    schema = parse_schema(payload["schema"])
    rows = payload.get("rows")
    if rows is not None and not isinstance(rows, list):
        raise HttpError(400, '"rows" must be a list')
    app.check_writable(tenant_id)
    tenant = app.tenants.register(tenant_id, schema, rows)
    if app.durability is not None:
        # Pre-ack append: the registration (schema + seed rows) is on
        # disk before the 201 goes out.
        app.durability.log_register(tenant)
    app.log("tenant registered", request, event="tenant_registered",
            tenant=tenant_id)
    return json_response(tenant.describe(), status=201)


async def list_tenants(app: "ReproApp", request: Request) -> Response:
    return json_response(
        {"tenants": [t.describe() for t in app.tenants.list()]}
    )


async def get_tenant(app: "ReproApp", request: Request) -> Response:
    tenant = app.tenants.get(request.params["tenant"])
    return json_response(tenant.describe())


async def remove_tenant(app: "ReproApp", request: Request) -> Response:
    tenant = app.tenants.remove(request.params["tenant"])
    if app.durability is not None:
        app.durability.remove_tenant(tenant.tenant_id)
    app.guards.breaker.drop_tenant(tenant.tenant_id)
    app.log("tenant removed", request, event="tenant_removed",
            tenant=tenant.tenant_id)
    return json_response({"removed": tenant.tenant_id})
