"""Lint-screened rule-set upload.

Uploads reuse the exact library plumbing the CLI has:
:func:`repro.rules_io.parse_rules_with_meta` parses the mixed-notation
document, :func:`repro.analysis.lint_entries` runs the full static
analyzer against the tenant's declared schema, and any error-severity
diagnostic (unknown attribute DD001, statically unsatisfiable DD003,
conflicting rules DD009) **rejects the upload** with the diagnostics —
DD codes and all — in the error body.  Warning-level findings are
returned but do not block; statically skippable rules (trivial,
duplicate, implied) get no checker and are reported as skipped,
mirroring ``repro check``'s pre-screen.

A successful upload (re)builds the tenant's
:class:`~repro.incremental.detector.IncrementalDetector` over the
tenant's *current* relation, so rules can be hot-swapped mid-stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ...analysis import Severity, lint_entries
from ...incremental import IncrementalDetector
from ...rules_io import RuleFileError, parse_rules_with_meta
from ..http import HttpError, Request, Response, json_response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ReproApp


def _diagnostic_payload(diag: Any) -> dict[str, Any]:
    return {
        "code": diag.code,
        "name": diag.name,
        "severity": str(diag.severity),
        "rule": diag.rule,
        "message": diag.message,
        "location": diag.location,
        "related": list(diag.related),
    }


async def upload(app: "ReproApp", request: Request) -> Response:
    """``PUT /tenants/{tenant}/rules`` — upload a rule-file document.

    The body is exactly the ``repro check --rules`` JSON format
    (``{"rules": [...]}`` with mixed Table-2 notations, optional per-
    rule ``id``s).
    """
    tenant = app.tenants.get(request.params["tenant"])
    app.check_writable(tenant.tenant_id)
    payload = request.json()

    def build() -> Response:
        try:
            entries = parse_rules_with_meta(
                payload, source=f"tenants/{tenant.tenant_id}/rules"
            )
        except RuleFileError as exc:
            raise HttpError(400, str(exc), kind="rule-file")
        report = lint_entries(entries, schema=tenant.schema)
        diagnostics = [
            _diagnostic_payload(d) for d in report.diagnostics
        ]
        if report.has_errors:
            errors = [
                d for d in diagnostics
                if d["severity"] == str(Severity.ERROR)
            ]
            raise HttpError(
                400,
                f"rule set rejected: {len(errors)} error-severity lint "
                "finding(s)",
                kind="lint",
                diagnostics=diagnostics,
                rejected=[d["rule"] for d in errors],
            )
        skipped = {
            entries[i].name: why for i, why in report.skippable.items()
        }
        active = [
            e.dependency
            for i, e in enumerate(entries)
            if i not in report.skippable
        ]
        with tenant.lock:
            # Pre-ack append: the accepted document hits the WAL before
            # the in-memory rule set advances, so recovery replays
            # exactly the uploads that were acknowledged.
            if app.durability is not None:
                app.durability.log_rules(tenant, payload)
            tenant.rule_entries = list(entries)
            tenant.skipped_rules = skipped
            tenant.rules_payload = payload
            # Rebuild over the current relation (rule hot-swap): the
            # screen above already dropped skippable rules, so the
            # detector takes the active set as-is.
            current = (
                tenant.detector.relation
                if tenant.detector is not None
                else tenant.relation
            )
            tenant.relation = current
            tenant.detector = IncrementalDetector(active, current)
        app.guards.breaker.drop_tenant(tenant.tenant_id)
        app.note_rule_gauges(tenant)
        return json_response(
            {
                "tenant": tenant.tenant_id,
                "accepted": len(active),
                "skipped": skipped,
                "diagnostics": diagnostics,
                "initial_violations": len(tenant.detector.violations()),
            },
            status=200,
        )

    response = await app.run_sync(build)
    app.log(
        "rules uploaded", request, event="rules_uploaded",
        tenant=tenant.tenant_id,
    )
    return response


async def get_rules(app: "ReproApp", request: Request) -> Response:
    tenant = app.tenants.get(request.params["tenant"])
    return json_response(
        {
            "tenant": tenant.tenant_id,
            "rules": [
                {
                    "index": e.index,
                    "id": e.rule_id,
                    "kind": e.dependency.kind,
                    "rule": str(e.dependency),
                    "skipped": tenant.skipped_rules.get(e.name),
                }
                for e in tenant.rule_entries
            ],
        }
    )
