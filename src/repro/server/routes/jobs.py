"""Background-job endpoints: submit → poll → result / cancel.

Discovery and repair can exceed any sane request timeout, so they run
as jobs on the :class:`~repro.server.jobs.JobManager` worker pool.  The
submitting request's budget headers become the *job* budget; stage
budgets are derived from it with :meth:`repro.runtime.Budget.child`, so
a deadline set at submit time bounds the whole pipeline and an
exhausted stage surfaces as ``partial: true`` in the poll response —
never as a silently truncated "success".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..http import HttpError, Request, Response, json_response
from ..jobs import JOB_TYPES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ReproApp


async def submit(app: "ReproApp", request: Request) -> Response:
    """``POST /tenants/{tenant}/jobs`` — queue a discovery/repair job.

    Body: ``{"type": "discovery" | "repair", "params": {...}}``.
    Budget headers (``X-Budget-Deadline-S`` etc.) govern the job.
    """
    tenant = app.tenants.get(request.params["tenant"])
    payload = request.json_object()
    job_type = payload.get("type")
    if job_type not in JOB_TYPES:
        raise HttpError(
            400,
            f"unknown job type {job_type!r}",
            allowed=list(JOB_TYPES),
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise HttpError(400, '"params" must be an object')
    budget = app.budget_from_headers(request)
    job = app.jobs.submit(tenant, job_type, params, budget)
    app.log(
        "job submitted", request, event="job_submitted",
        tenant=tenant.tenant_id, job_id=job.job_id, job_type=job_type,
    )
    return json_response(job.describe(), status=202)


async def poll(app: "ReproApp", request: Request) -> Response:
    """``GET /jobs/{job}`` — job state, stages, and (when done) result."""
    job = app.jobs.get(request.params["job"])
    return json_response(job.describe())


async def list_jobs(app: "ReproApp", request: Request) -> Response:
    tenant = app.tenants.get(request.params["tenant"])
    jobs = app.jobs.list(tenant_id=tenant.tenant_id)
    return json_response(
        {
            "tenant": tenant.tenant_id,
            "jobs": [j.describe(include_result=False) for j in jobs],
        }
    )


async def cancel(app: "ReproApp", request: Request) -> Response:
    """``DELETE /jobs/{job}`` — cooperative cancellation.

    A queued job is dropped outright; a running one has its budget
    tripped (``exhausted = "cancelled"``) so the engine unwinds at its
    next checkpoint through the normal partial-result path.
    """
    job = app.jobs.cancel(request.params["job"])
    app.log(
        "job cancel requested", request, event="job_cancelled",
        tenant=job.tenant_id, job_id=job.job_id, job_state=job.state,
    )
    return json_response(job.describe())
