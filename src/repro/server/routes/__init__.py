"""Route table: method + path template → async handler.

Path templates use ``{name}`` segments (``/tenants/{tenant}/batches``);
matches bind into ``request.params``.  The table is assembled from the
per-resource modules below so each stays one screen of related
handlers, soldier-style: ``tenants`` (registration), ``rules``
(lint-screened upload), ``ingest`` (changefeed batches + sync check),
``jobs`` (submit/poll/cancel), ``system`` (health + metrics).
"""

from __future__ import annotations

import re
from collections.abc import Awaitable, Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..http import HttpError, Request, Response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ReproApp

Handler = Callable[["ReproApp", Request], Awaitable[Response]]

_SEGMENT = re.compile(r"^[A-Za-z0-9_.~:@!$&'()*+,;=%-]+$")


@dataclass(frozen=True)
class Route:
    method: str
    template: str
    handler: Handler
    pattern: re.Pattern[str]

    @classmethod
    def make(cls, method: str, template: str, handler: Handler) -> "Route":
        parts = []
        for segment in template.strip("/").split("/"):
            if segment.startswith("{") and segment.endswith("}"):
                parts.append(f"(?P<{segment[1:-1]}>[^/]+)")
            else:
                parts.append(re.escape(segment))
        pattern = re.compile("^/" + "/".join(parts) + "$")
        return cls(method=method.upper(), template=template,
                   handler=handler, pattern=pattern)


class Router:
    """Longest-wins is unnecessary: templates here never overlap."""

    def __init__(self, routes: list[Route]) -> None:
        self._routes = routes

    def resolve(self, request: Request) -> tuple[Route, dict[str, str]]:
        allowed: list[str] = []
        for route in self._routes:
            match = route.pattern.match(request.path)
            if match is None:
                continue
            if route.method != request.method:
                allowed.append(route.method)
                continue
            return route, match.groupdict()
        if allowed:
            raise HttpError(
                405,
                f"{request.method} not allowed on {request.path}",
                allowed=sorted(set(allowed)),
            )
        raise HttpError(404, f"no route for {request.path}")


def build_router() -> Router:
    """The full route table of the dependency-checking service."""
    from . import ingest, jobs, rules, system, tenants

    table: list[tuple[str, str, Any]] = [
        ("GET", "/healthz", system.healthz),
        ("GET", "/metrics", system.metrics),
        ("GET", "/version", system.version),
        ("POST", "/tenants", tenants.register),
        ("GET", "/tenants", tenants.list_tenants),
        ("GET", "/tenants/{tenant}", tenants.get_tenant),
        ("DELETE", "/tenants/{tenant}", tenants.remove_tenant),
        ("PUT", "/tenants/{tenant}/rules", rules.upload),
        ("GET", "/tenants/{tenant}/rules", rules.get_rules),
        ("POST", "/tenants/{tenant}/batches", ingest.ingest_batch),
        ("GET", "/tenants/{tenant}/violations", ingest.violations),
        ("POST", "/tenants/{tenant}/check", ingest.sync_check),
        ("POST", "/tenants/{tenant}/jobs", jobs.submit),
        ("GET", "/tenants/{tenant}/jobs", jobs.list_jobs),
        ("GET", "/jobs/{job}", jobs.poll),
        ("DELETE", "/jobs/{job}", jobs.cancel),
    ]
    return Router([Route.make(m, t, h) for m, t, h in table])
