"""Row-batch ingestion into the per-tenant changefeed, plus sync check.

``POST .../batches`` takes one mutation batch in the
:meth:`repro.incremental.delta.Delta.from_json` wire format and feeds
the tenant's :class:`~repro.incremental.detector.IncrementalDetector`.
The response is the changefeed entry: violations added and resolved by
the batch, the cumulative total, any quarantined checkers (faults are
reported, never swallowed), and the honest-partial flag when the
request budget ran out mid-batch.

``POST .../check`` is the synchronous path for *small* relations: the
supplied rows are checked against the tenant's rule set inline (with
per-rule latency recorded), bounded by ``MAX_SYNC_ROWS`` — anything
bigger belongs in a background job.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from ...relation import Relation
from ...runtime.budget import checkpoint, governed
from ...runtime.errors import BudgetExhausted
from ..http import HttpError, Request, Response, json_response
from ..state import _coerce_rows

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ReproApp

#: Row ceiling for the synchronous check path.
MAX_SYNC_ROWS = 10_000


def _violation_lines(violations: Any, limit: int) -> list[str]:
    out = []
    for v in violations:
        if len(out) >= limit:
            break
        out.append(str(v))
    return out


async def ingest_batch(app: "ReproApp", request: Request) -> Response:
    """``POST /tenants/{tenant}/batches`` — apply one mutation batch.

    Body: the mutation-log wire format, e.g.::

        {"insert": [{"city": "Porto", "price": 9.0}],
         "delete": [3],
         "update": [{"row": 0, "set": {"price": 11.0}}]}
    """
    tenant = app.tenants.get(request.params["tenant"])
    detector = tenant.require_detector()
    payload = request.json_object()
    budget = app.budget_from_headers(request)
    limit_text = request.query.get("limit", "10")
    try:
        limit = max(0, int(limit_text))
    except ValueError:
        raise HttpError(400, f"bad limit {limit_text!r}")

    # Overload guards, cheapest first: the RSS watermark flips the
    # whole server read-only; the per-tenant gate bounds how many
    # batches may queue for one tenant's single-writer lock.  Both shed
    # with 429 + Retry-After instead of queueing without bound.
    app.check_writable(tenant.tenant_id)
    gate = app.guards.gate
    if not gate.try_acquire(tenant.tenant_id):
        app.shed(
            tenant.tenant_id,
            "ingest-queue-full",
            f"tenant {tenant.tenant_id!r} has "
            f"{gate.max_inflight} batches in flight; retry later",
        )
    try:
        change, transitions = await app.run_sync(
            lambda: app.apply_batch(tenant, payload, budget)
        )
    finally:
        gate.release(tenant.tenant_id)
    app.note_batch(tenant, change)
    app.log(
        "batch applied", request, event="batch_applied",
        tenant=tenant.tenant_id, batch_seq=change.seq,
    )
    return json_response(
        {
            "tenant": tenant.tenant_id,
            "seq": change.seq,
            "rows": len(detector.relation),
            "added": len(change.added),
            "resolved": len(change.resolved),
            "total_violations": change.total,
            "added_sample": _violation_lines(change.added, limit),
            "resolved_sample": _violation_lines(change.resolved, limit),
            "quarantined": list(change.quarantined),
            "breaker": [
                {"rule": t.rule, "state": t.state, "reason": t.reason}
                for t in transitions
            ],
            "complete": change.complete,
            "exhausted": change.exhausted,
        }
    )


async def violations(app: "ReproApp", request: Request) -> Response:
    """``GET /tenants/{tenant}/violations`` — the cumulative state."""
    tenant = app.tenants.get(request.params["tenant"])
    detector = tenant.require_detector()
    limit_text = request.query.get("limit", "25")
    try:
        limit = max(0, int(limit_text))
    except ValueError:
        raise HttpError(400, f"bad limit {limit_text!r}")

    def snapshot() -> dict[str, Any]:
        report = detector.report()
        return {
            "tenant": tenant.tenant_id,
            "rows": len(detector.relation),
            "total_violations": len(report.violations),
            "per_rule": {
                rule: len(vs) for rule, vs in report.per_rule.items()
            },
            "sample": _violation_lines(report.violations, limit),
            "quarantine": [
                {"seq": seq, "rule": rule, "error": error}
                for seq, rule, error in detector.quarantine
            ],
            "dead_rules": list(detector.dead_rules),
            "suspended_rules": detector.suspended_rules,
            "breaker": app.guards.breaker.states(tenant.tenant_id),
        }

    return json_response(await app.run_sync(snapshot))


async def sync_check(app: "ReproApp", request: Request) -> Response:
    """``POST /tenants/{tenant}/check`` — synchronous small-relation check.

    Body: ``{"rows": [...]}`` (positional lists or ``{name: value}``
    objects over the tenant schema).  Omitting ``rows`` checks the
    tenant's current relation instead.  Per-rule wall-clock is recorded
    into the ``repro_rule_check_seconds`` histogram.
    """
    tenant = app.tenants.get(request.params["tenant"])
    if not tenant.rule_entries:
        raise HttpError(
            409,
            f"tenant {tenant.tenant_id!r} has no rule set; "
            "PUT /tenants/{tenant}/rules first",
        )
    payload = request.json_object()
    budget = app.budget_from_headers(request)
    rows = payload.get("rows")
    if rows is not None:
        if not isinstance(rows, list):
            raise HttpError(400, '"rows" must be a list')
        if len(rows) > MAX_SYNC_ROWS:
            raise HttpError(
                413,
                f"{len(rows)} rows exceeds the synchronous limit of "
                f"{MAX_SYNC_ROWS}; submit a job instead",
            )

    def check() -> dict[str, Any]:
        if rows is None:
            relation = (
                tenant.detector.relation
                if tenant.detector is not None
                else tenant.relation
            )
        else:
            relation = Relation.empty(tenant.schema).extend(
                _coerce_rows(tenant.schema, rows)
            )
        skipped = set(tenant.skipped_rules)
        active = [
            e for e in tenant.rule_entries if e.name not in skipped
        ]
        results: list[dict[str, Any]] = []
        total = 0
        exhausted = ""
        with governed(budget):
            for entry in active:
                started = time.perf_counter()
                try:
                    # Budget gate between rules: small relations finish
                    # fast, but the loop still honours the deadline even
                    # when a single rule's kernels never checkpoint.
                    checkpoint(candidates=1)
                    found = entry.dependency.violations(relation)
                except BudgetExhausted as exc:
                    exhausted = exc.reason
                    break
                elapsed = time.perf_counter() - started
                app.rule_check_seconds.observe(
                    elapsed,
                    tenant=tenant.tenant_id,
                    rule=entry.name,
                )
                total += len(found)
                results.append(
                    {
                        "rule": entry.name,
                        "kind": entry.dependency.kind,
                        "violations": len(found),
                        "sample": _violation_lines(found, 5),
                        "seconds": round(elapsed, 6),
                    }
                )
        return {
            "tenant": tenant.tenant_id,
            "rows": len(relation),
            "rules_checked": len(results),
            "rules_skipped": dict(tenant.skipped_rules),
            "total_violations": total,
            "results": results,
            "complete": not exhausted,
            "exhausted": exhausted,
        }

    report = await app.run_sync(check)
    if report["exhausted"]:
        app.note_budget_exhausted(tenant.tenant_id, report["exhausted"])
    app.log(
        "sync check", request, event="sync_check",
        tenant=tenant.tenant_id,
    )
    return json_response(report)
