"""Health, version, and the Prometheus-text metrics endpoint."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ... import __version__
from ..http import Request, Response, json_response, text_response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ReproApp


async def healthz(app: "ReproApp", request: Request) -> Response:
    payload = {
        "status": "ok",
        "tenants": len(app.tenants.list()),
        "jobs": len(app.jobs.list()),
        "read_only": app.guards.watermark.read_only(),
    }
    if app.durability is not None:
        payload["durability"] = {
            "data_dir": str(app.durability.data_dir),
            "fsync": app.durability.fsync,
            "wal_records": app.durability.wal_records,
            "wal_bytes": app.durability.wal_bytes,
            "snapshots": app.durability.snapshots_taken,
        }
        if app.recovery_report is not None:
            payload["recovery"] = app.recovery_report.describe()
    return json_response(payload)


async def version(app: "ReproApp", request: Request) -> Response:
    return json_response({"name": "repro", "version": __version__})


async def metrics(app: "ReproApp", request: Request) -> Response:
    """``GET /metrics`` — Prometheus text exposition.

    Counters are cumulative since server start; kernel counters come
    from a thread-safe :meth:`KernelCounters.snapshot` taken at scrape
    time, so scraping never races active kernels.
    """
    return text_response(app.metrics.render())
