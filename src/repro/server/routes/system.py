"""Health, version, and the Prometheus-text metrics endpoint."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ... import __version__
from ..http import Request, Response, json_response, text_response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ReproApp


async def healthz(app: "ReproApp", request: Request) -> Response:
    return json_response(
        {
            "status": "ok",
            "tenants": len(app.tenants.list()),
            "jobs": len(app.jobs.list()),
        }
    )


async def version(app: "ReproApp", request: Request) -> Response:
    return json_response({"name": "repro", "version": __version__})


async def metrics(app: "ReproApp", request: Request) -> Response:
    """``GET /metrics`` — Prometheus text exposition.

    Counters are cumulative since server start; kernel counters come
    from a thread-safe :meth:`KernelCounters.snapshot` taken at scrape
    time, so scraping never races active kernels.
    """
    return text_response(app.metrics.render())
