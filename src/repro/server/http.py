"""Minimal asyncio HTTP/1.1 primitives — stdlib only, by design.

The service layer (:mod:`repro.server.app`) must not add a hard
runtime dependency to the library, so instead of aiohttp/uvicorn it
runs on a small, honest HTTP/1.1 implementation over
``asyncio.start_server``:

* requests are parsed from the stream with hard caps on header-block
  and body size (a misbehaving client gets a 4xx, never an OOM);
* responses are JSON by default (the whole API is JSON) with correct
  ``Content-Length`` framing and keep-alive support;
* :class:`HttpError` is the typed short-circuit a handler raises to
  produce a non-200 with a structured error body.

This is deliberately *not* a general web framework: no chunked
transfer, no TLS, no multipart — exactly the subset the dependency
service needs, small enough to audit in one sitting.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

#: Largest accepted request body (row batches are bounded by this).
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Largest accepted request-line + header block.
MAX_HEAD_BYTES = 64 * 1024
#: Idle keep-alive connections are dropped after this many seconds.
IDLE_TIMEOUT_S = 75.0

_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A typed HTTP failure a handler raises to short-circuit.

    ``payload`` becomes the JSON error body (a ``{"error": ...}``
    envelope is added when a bare message string is given).
    ``headers`` ride on the response (e.g. ``Retry-After`` on a 429);
    ``keep_alive`` marks a parse-layer error after which the stream is
    still in a known-good state (the body was drained), so the
    connection may survive the error response.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: dict[str, str] | None = None,
        keep_alive: bool = False,
        **extra: Any,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers) if headers else {}
        self.keep_alive = keep_alive
        self.payload: dict[str, Any] = {"error": message, **extra}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    #: Path parameters bound by the router (``/tenants/{tenant}``).
    params: dict[str, str] = field(default_factory=dict)

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def json(self) -> Any:
        """The body parsed as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    def json_object(self) -> dict[str, Any]:
        """The body as a JSON *object* (400 on any other shape)."""
        payload = self.json()
        if not isinstance(payload, dict):
            raise HttpError(
                400,
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}",
            )
        return payload


@dataclass
class Response:
    """One response: a JSON payload unless ``text`` is set."""

    status: int = 200
    payload: Any = None
    text: str | None = None
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def encode_body(self) -> bytes:
        if self.text is not None:
            return self.text.encode("utf-8")
        if self.payload is None:
            return b""
        return (json.dumps(self.payload, indent=None) + "\n").encode("utf-8")


def json_response(payload: Any, status: int = 200) -> Response:
    return Response(status=status, payload=payload)


def text_response(
    text: str, status: int = 200, content_type: str = "text/plain; version=0.0.4"
) -> Response:
    return Response(status=status, text=text, content_type=content_type)


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF before any bytes (the client closed
    a keep-alive connection); raises :class:`HttpError` on malformed or
    oversized input and ``asyncio.TimeoutError`` on idle timeout.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=IDLE_TIMEOUT_S
        )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(431, f"request head exceeds {MAX_HEAD_BYTES} bytes")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(400, "chunked transfer encoding is not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length > MAX_BODY_BYTES:
        # Drain the oversized body (bounded, chunked, discarded) so the
        # client reads a clean JSON 413 on a still-synchronized stream
        # instead of a connection reset mid-upload.
        await _drain_body(reader, length)
        raise HttpError(
            413,
            f"request body exceeds {MAX_BODY_BYTES} bytes",
            keep_alive=True,
            limit_bytes=MAX_BODY_BYTES,
            body_bytes=length,
        )
    body = b""
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=IDLE_TIMEOUT_S
            )
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")
    return Request(
        method=method.upper(),
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


async def _drain_body(reader: asyncio.StreamReader, length: int) -> None:
    """Read and discard ``length`` body bytes (oversized-request path)."""
    remaining = length
    try:
        while remaining > 0:
            chunk = await asyncio.wait_for(
                reader.read(min(remaining, 256 * 1024)),
                timeout=IDLE_TIMEOUT_S,
            )
            if not chunk:
                raise HttpError(
                    400, "request body shorter than Content-Length"
                )
            remaining -= len(chunk)
    except (TimeoutError, asyncio.TimeoutError):
        raise HttpError(408, "timed out draining request body")


async def write_response(
    writer: asyncio.StreamWriter,
    response: Response,
    *,
    keep_alive: bool,
    head_only: bool = False,
) -> None:
    """Serialize one response (``head_only`` for HEAD requests)."""
    body = response.encode_body()
    phrase = _PHRASES.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {phrase}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    if body and not head_only:
        writer.write(body)
    await writer.drain()
