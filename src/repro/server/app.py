"""The service: tenants × changefeeds × jobs, on one asyncio loop.

:class:`ReproApp` wires the layers together:

* **routing** — the table in :mod:`repro.server.routes`, dispatched
  with structured-log + metrics middleware around every request;
* **engine offload** — handlers are async but the engines are
  synchronous CPU work, so every engine call goes through
  :meth:`ReproApp.run_sync` (a thread-pool executor), keeping the
  accept loop responsive while a big batch is checked;
* **budgets** — ``X-Budget-*`` request headers become a
  :class:`~repro.runtime.budget.Budget` governing that request's
  engine work (and, for job submission, the whole job pipeline);
* **observability** — one :class:`MetricsRegistry` (Prometheus text on
  ``GET /metrics``) and one JSON-lines logger; kernel-layer counters
  are pulled at scrape time via a thread-safe snapshot.

Serving entry points: :meth:`serve` (asyncio, used by ``repro
serve``) and :meth:`run_in_thread` (background thread + ephemeral
port, used by the tests and the benchmark).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import math
import threading
import time
from collections.abc import Callable
from pathlib import Path
from typing import Any, TypeVar

from ..incremental.delta import Delta, DeltaError
from ..incremental.detector import BatchChange
from ..plan.kernels import COUNTERS
from ..runtime.budget import Budget, governed
from ..runtime.errors import BudgetExhausted, EngineFault, ReproError
from .durability import (
    BREAKER_STATE_VALUES,
    DurabilityManager,
    OverloadConfig,
    OverloadGuards,
    RecoveryReport,
)
from .http import (
    HttpError,
    Request,
    Response,
    json_response,
    read_request,
    write_response,
)
from .jobs import CANCELLED, FAILED, SUCCEEDED, Job, JobManager
from .observability import MetricsRegistry, get_logger, new_request_id
from .routes import Router, build_router
from .state import Tenant, TenantRegistry

T = TypeVar("T")

#: Budget request headers -> Budget fields (memory arrives in MiB).
BUDGET_HEADERS = (
    ("x-budget-deadline-s", "deadline_s", float),
    ("x-budget-max-candidates", "max_candidates", int),
    ("x-budget-max-pairs", "max_pairs", int),
    ("x-budget-max-memory-mb", "max_memory_mb", float),
)


class ReproApp:
    """One server process: registry, jobs, metrics, router."""

    def __init__(
        self,
        *,
        max_workers: int = 4,
        data_dir: str | Path | None = None,
        fsync: str = "batch",
        recover: bool = True,
        snapshot_every: int | None = None,
        overload: OverloadConfig | None = None,
    ) -> None:
        self.tenants = TenantRegistry()
        self.jobs = JobManager(max_workers=max_workers)
        self.jobs.on_finish = self._on_job_finish
        self.metrics = MetricsRegistry()
        self.logger = get_logger()
        self.router: Router = build_router()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-engine"
        )
        self.guards = OverloadGuards(overload or OverloadConfig())
        self.durability: DurabilityManager | None = None
        self.recovery_report: RecoveryReport | None = None
        if data_dir is not None:
            kwargs: dict[str, Any] = {"fsync": fsync}
            if snapshot_every is not None:
                kwargs["snapshot_every"] = snapshot_every
            self.durability = DurabilityManager(data_dir, **kwargs)
        self._build_instruments()
        if self.durability is not None and recover:
            report = self.durability.recover(self.tenants)
            self.recovery_report = report
            self.replay_seconds.set(report.seconds)
            for tenant in self.tenants.list():
                self.note_rule_gauges(tenant)
            self.logger.info(
                "recovery complete",
                extra={"event": "recovered", **report.describe()},
            )

    # -- observability -------------------------------------------------

    def _build_instruments(self) -> None:
        m = self.metrics
        self.requests_total = m.counter(
            "repro_requests_total",
            "HTTP requests by tenant, route template, and status.",
            labels=("tenant", "route", "method", "status"),
        )
        self.request_seconds = m.histogram(
            "repro_request_seconds",
            "End-to-end request latency by route template.",
            labels=("route",),
        )
        self.batches_total = m.counter(
            "repro_batches_total",
            "Mutation batches applied to the changefeed.",
            labels=("tenant",),
        )
        self.rows_ingested_total = m.counter(
            "repro_rows_ingested_total",
            "Rows inserted through the changefeed.",
            labels=("tenant",),
        )
        self.violations_added_total = m.counter(
            "repro_violations_added_total",
            "Violations newly reported by applied batches.",
            labels=("tenant",),
        )
        self.violations_resolved_total = m.counter(
            "repro_violations_resolved_total",
            "Violations resolved by applied batches.",
            labels=("tenant",),
        )
        self.violations_gauge = m.gauge(
            "repro_violations",
            "Current total violations per tenant.",
            labels=("tenant",),
        )
        self.rule_violations = m.gauge(
            "repro_rule_violations",
            "Current violations per tenant and rule.",
            labels=("tenant", "rule"),
        )
        self.rule_check_seconds = m.histogram(
            "repro_rule_check_seconds",
            "Per-rule synchronous check latency.",
            labels=("tenant", "rule"),
        )
        self.budget_exhausted_total = m.counter(
            "repro_budget_exhausted_total",
            "Requests/stages cut short by a budget, by reason.",
            labels=("tenant", "reason"),
        )
        self.quarantined_total = m.counter(
            "repro_quarantined_total",
            "Checker faults quarantined during ingestion.",
            labels=("tenant",),
        )
        self.jobs_total = m.counter(
            "repro_jobs_total",
            "Background jobs by terminal state.",
            labels=("tenant", "type", "state"),
        )
        self.shed_requests_total = m.counter(
            "repro_shed_requests_total",
            "Requests shed by overload protection, by reason.",
            labels=("tenant", "reason"),
        )
        self.breaker_state = m.gauge(
            "repro_breaker_state",
            "Circuit breaker per tenant and rule "
            "(0 closed, 1 open, 2 half-open).",
            labels=("tenant", "rule"),
        )
        self.replay_seconds = m.gauge(
            "repro_replay_seconds",
            "Wall-clock of the last startup recovery replay.",
        )
        self._wal_bytes = m.gauge(
            "repro_wal_bytes",
            "WAL bytes appended since process start.",
        )
        self._wal_records = m.gauge(
            "repro_wal_records",
            "WAL records appended since process start.",
        )
        self._snapshots = m.gauge(
            "repro_snapshots",
            "Tenant snapshots taken since process start.",
        )
        self._read_only = m.gauge(
            "repro_read_only",
            "1 while the memory watermark holds the server read-only.",
        )
        self._rss_bytes = m.gauge(
            "repro_rss_bytes", "Process resident set size."
        )
        self._tenants_gauge = m.gauge(
            "repro_tenants", "Registered tenants."
        )
        self._kernel_executions = m.gauge(
            "repro_kernel_executions",
            "Kernel executions since process start (snapshot).",
        )
        self._kernel_pairs = m.gauge(
            "repro_kernel_pairs_examined",
            "Candidate pairs examined by kernels (snapshot).",
        )
        self._kernel_chunks = m.gauge(
            "repro_kernel_chunks",
            "Vectorized index chunks streamed (snapshot).",
        )
        self._kernel_backend = m.gauge(
            "repro_kernel_executions_by_backend",
            "Kernel executions split scalar/vectorized (snapshot).",
            labels=("backend",),
        )
        m.add_collector(self._collect)

    def _collect(self) -> None:
        """Scrape-time pull of state owned by other layers."""
        self._tenants_gauge.set(len(self.tenants.list()))
        # Thread-safe snapshot: scraping never races active kernels.
        counters = COUNTERS.snapshot()
        self._kernel_executions.set(counters.executions)
        self._kernel_pairs.set(counters.pairs_examined)
        self._kernel_chunks.set(counters.chunks)
        for backend, count in counters.backends().items():
            self._kernel_backend.set(count, backend=backend)
        if self.durability is not None:
            self._wal_bytes.set(self.durability.wal_bytes)
            self._wal_records.set(self.durability.wal_records)
            self._snapshots.set(self.durability.snapshots_taken)
        watermark = self.guards.watermark
        self._rss_bytes.set(watermark.rss_bytes())
        self._read_only.set(1.0 if watermark.read_only() else 0.0)

    def log(self, message: str, request: Request | None = None,
            **context: Any) -> None:
        if request is not None:
            context.setdefault(
                "request_id", request.headers.get("x-request-id", "")
            )
        self.logger.info(message, extra=context)

    def note_batch(self, tenant: Tenant, change: BatchChange) -> None:
        """Fold one changefeed entry into the tenant's instruments."""
        tid = tenant.tenant_id
        self.batches_total.inc(tenant=tid)
        inserted = len(change.delta.inserts)
        if inserted:
            self.rows_ingested_total.inc(inserted, tenant=tid)
        if change.added:
            self.violations_added_total.inc(len(change.added), tenant=tid)
        if change.resolved:
            self.violations_resolved_total.inc(
                len(change.resolved), tenant=tid
            )
        self.violations_gauge.set(change.total, tenant=tid)
        if change.quarantined:
            self.quarantined_total.inc(len(change.quarantined), tenant=tid)
        if change.exhausted:
            self.note_budget_exhausted(tid, change.exhausted)

    def note_budget_exhausted(self, tenant_id: str, reason: str) -> None:
        self.budget_exhausted_total.inc(tenant=tenant_id, reason=reason)

    def note_rule_gauges(self, tenant: Tenant) -> None:
        """Refresh the per-rule violation gauges from the detector."""
        detector = tenant.detector
        if detector is None:
            return
        report = detector.report()
        for rule, violations in report.per_rule.items():
            self.rule_violations.set(
                len(violations), tenant=tenant.tenant_id, rule=rule
            )
        self.violations_gauge.set(
            len(report.violations), tenant=tenant.tenant_id
        )

    def _on_job_finish(self, job: Job) -> None:
        self.jobs_total.inc(
            tenant=job.tenant_id, type=job.job_type, state=job.state
        )
        if job.state in (SUCCEEDED, FAILED, CANCELLED):
            for stage in job.stages:
                if stage.exhausted:
                    self.note_budget_exhausted(
                        job.tenant_id, stage.exhausted
                    )
        self.logger.info(
            "job finished",
            extra={
                "event": "job_finished",
                "tenant": job.tenant_id,
                "job_id": job.job_id,
                "job_type": job.job_type,
                "job_state": job.state,
                "error": job.error or "",
            },
        )

    # -- request plumbing ----------------------------------------------

    async def run_sync(self, fn: Callable[[], T]) -> T:
        """Run synchronous engine work off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn)

    def budget_from_headers(self, request: Request) -> Budget | None:
        """``X-Budget-*`` headers -> a request budget (None when unset).

        Each header must parse as a *positive, finite* number: zero
        would be a budget that can never admit work, and ``nan``/
        ``inf`` silently disable or wedge deadline arithmetic — all
        three are client errors, rejected naming the offending header.
        """
        fields: dict[str, Any] = {}
        for header, name, convert in BUDGET_HEADERS:
            raw = request.header(header)
            if raw is None:
                continue
            try:
                value = convert(raw)
            except ValueError:
                raise HttpError(
                    400,
                    f"bad {header} header: {raw!r} is not a number",
                    header=header,
                )
            if not math.isfinite(value):
                raise HttpError(
                    400,
                    f"bad {header} header: {raw!r} is not finite",
                    header=header,
                )
            if value <= 0:
                raise HttpError(
                    400,
                    f"bad {header} header: must be > 0, got {raw!r}",
                    header=header,
                )
            fields[name] = value
        if not fields:
            return None
        memory_mb = fields.pop("max_memory_mb", None)
        if memory_mb is not None:
            fields["max_memory_bytes"] = int(memory_mb * 1024 * 1024)
        return Budget(**fields)

    # -- overload protection -------------------------------------------

    def shed(self, tenant_id: str, reason: str, message: str) -> None:
        """Refuse one request with ``429`` + ``Retry-After`` (counted)."""
        retry_after = self.guards.config.retry_after_s
        self.shed_requests_total.inc(tenant=tenant_id, reason=reason)
        raise HttpError(
            429,
            message,
            headers={"Retry-After": f"{retry_after:g}"},
            reason=reason,
        )

    def check_writable(self, tenant_id: str) -> None:
        """Shed mutating work while the RSS watermark holds us read-only."""
        watermark = self.guards.watermark
        if watermark.read_only():
            self.shed(
                tenant_id,
                "memory-watermark",
                f"server is read-only: resident set "
                f"{watermark.rss_bytes() // (1024 * 1024)} MiB exceeds "
                f"the {watermark.max_rss_mb:g} MiB watermark",
            )

    # -- batch ingest core ---------------------------------------------

    def apply_batch(
        self,
        tenant: Tenant,
        payload: Any,
        budget: Budget | None = None,
    ) -> tuple[BatchChange, list[Any]]:
        """The synchronous write path: validate → WAL → apply → snapshot.

        Write ordering is the durability contract: the batch is
        appended (and, per fsync policy, synced) to the tenant's WAL
        *before* the detector applies it, all under the tenant lock —
        so recovery can never know about a batch the detector missed,
        and an acknowledged batch is never missing from the log.  A
        batch that fails validation is the client's 400 and is never
        logged.  Returns the changefeed entry plus any circuit-breaker
        transitions the batch caused.  Runs synchronously (call it via
        :meth:`run_sync` from a handler; the recovery benchmark calls
        it directly).
        """
        detector = tenant.require_detector()
        try:
            delta = Delta.from_json(payload, tenant.schema)
        except DeltaError as exc:
            raise HttpError(400, f"bad mutation batch: {exc}")
        breaker = self.guards.breaker
        with tenant.lock:
            try:
                delta.validate(detector.relation)
            except DeltaError as exc:
                raise HttpError(400, f"bad mutation batch: {exc}")
            transitions = breaker.before_batch(tenant.tenant_id, detector)
            if self.durability is not None:
                self.durability.log_batch(tenant, delta)
            mark = len(detector.quarantine)
            with governed(budget):
                change = detector.apply(delta)
            tenant.relation = detector.relation
            tenant.batches_ingested += 1
            tenant.rows_ingested += len(delta.inserts)
            faulted = {
                label for _, label, _ in detector.quarantine[mark:]
            }
            transitions += breaker.after_batch(
                tenant.tenant_id, detector, faulted
            )
            if self.durability is not None:
                self.durability.note_batch_applied(tenant)
        for transition in transitions:
            self.breaker_state.set(
                BREAKER_STATE_VALUES[transition.state],
                tenant=tenant.tenant_id,
                rule=transition.rule,
            )
            self.logger.info(
                "breaker transition",
                extra={
                    "event": "breaker",
                    "tenant": tenant.tenant_id,
                    "rule": transition.rule,
                    "state": transition.state,
                    "reason": transition.reason,
                },
            )
        return change, transitions

    async def dispatch(self, request: Request) -> Response:
        """Route + middleware: ids, timing, logging, metrics, errors."""
        request.headers.setdefault("x-request-id", new_request_id())
        started = time.perf_counter()
        route_label = "unmatched"
        tenant_label = "-"
        try:
            route, params = self.router.resolve(request)
            request.params = params
            route_label = route.template
            tenant_label = params.get("tenant", "-")
            response = await route.handler(self, request)
        except HttpError as exc:
            response = json_response(exc.payload, status=exc.status)
            response.headers.update(exc.headers)
        except BudgetExhausted as exc:
            # A handler let an exhaustion escape instead of folding it
            # into a partial result: report it honestly as overload.
            if tenant_label != "-":
                self.note_budget_exhausted(tenant_label, exc.reason)
            response = json_response(
                {"error": "budget exhausted", "reason": exc.reason},
                status=503,
            )
        except EngineFault as exc:
            response = json_response(
                {
                    "error": f"engine fault: {exc}",
                    "site": exc.site or "",
                },
                status=500,
            )
            self.logger.error(
                "engine fault",
                extra={
                    "event": "engine_fault",
                    "request_id": request.headers["x-request-id"],
                    "error": str(exc),
                },
            )
        except ReproError as exc:
            response = json_response({"error": str(exc)}, status=400)
        except Exception as exc:  # noqa: BLE001 - server boundary
            response = json_response(
                {"error": f"internal error: {type(exc).__name__}"},
                status=500,
            )
            self.logger.exception(
                "unhandled error",
                extra={
                    "event": "unhandled_error",
                    "request_id": request.headers["x-request-id"],
                    "method": request.method,
                    "path": request.path,
                },
            )
        elapsed = time.perf_counter() - started
        self.requests_total.inc(
            tenant=tenant_label,
            route=route_label,
            method=request.method,
            status=str(response.status),
        )
        self.request_seconds.observe(elapsed, route=route_label)
        self.log(
            "request", request,
            event="request",
            method=request.method,
            path=request.path,
            status=response.status,
            duration_ms=round(elapsed * 1000, 3),
            tenant=tenant_label,
        )
        return response

    async def handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One keep-alive connection: read → dispatch → write, repeat."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    # A drained-body error (e.g. the oversized-payload
                    # 413) leaves the stream synchronized, so the
                    # connection survives; raw parse errors close it.
                    error = json_response(exc.payload, status=exc.status)
                    error.headers.update(exc.headers)
                    await write_response(
                        writer, error, keep_alive=exc.keep_alive
                    )
                    if exc.keep_alive:
                        continue
                    return
                except (TimeoutError, asyncio.TimeoutError):
                    return
                if request is None:
                    return
                keep_alive = (
                    request.headers.get("connection", "").lower() != "close"
                )
                head_only = request.method == "HEAD"
                if head_only:
                    request.method = "GET"
                response = await self.dispatch(request)
                await write_response(
                    writer, response,
                    keep_alive=keep_alive, head_only=head_only,
                )
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # CancelledError here is the server tearing the
                # connection down during stop — the close already
                # happened; re-raising only produces loop noise.
                pass

    # -- serving -------------------------------------------------------

    async def serve(
        self, host: str = "127.0.0.1", port: int = 8095
    ) -> None:
        """Serve until SIGTERM/SIGINT, then drain (``repro serve``).

        The signal flips an event rather than killing the loop: the
        listener closes, in-flight handlers get a moment to finish,
        and every tenant WAL is fsynced before the process exits — a
        `kill -TERM` loses nothing that was acknowledged.
        """
        import signal

        server = await self._start(host, port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled: list[int] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                handled.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop; Ctrl-C still raises KeyboardInterrupt
        try:
            async with server:
                serving = asyncio.ensure_future(server.serve_forever())
                stopping = asyncio.ensure_future(stop.wait())
                await asyncio.wait(
                    {serving, stopping},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                serving.cancel()
                stopping.cancel()
                await asyncio.gather(
                    serving, stopping, return_exceptions=True
                )
        finally:
            for sig in handled:
                loop.remove_signal_handler(sig)
            self.log("draining", None, event="draining")
            self.drain()

    async def _start(self, host: str, port: int) -> asyncio.Server:
        server = await asyncio.start_server(
            self.handle_client, host, port, limit=256 * 1024
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        self.log(
            f"serving on {host}:{self.bound_port}", None, event="serving"
        )
        return server

    def run_in_thread(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "ServerHandle":
        """Serve from a daemon thread; returns once the port is bound.

        The tests and the ingest benchmark use this: ``port=0`` binds an
        ephemeral port, exposed on the returned handle.
        """
        handle = ServerHandle(self, host)
        handle.start()
        return handle

    def drain(self) -> None:
        """Graceful-stop half: flush WALs so acked state is on disk."""
        if self.durability is not None:
            self.durability.flush()

    def shutdown(self) -> None:
        self.jobs.shutdown()
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.durability is not None:
            self.durability.flush()
            self.durability.close()


class ServerHandle:
    """A server running on a background thread (tests, benchmarks)."""

    def __init__(self, app: ReproApp, host: str) -> None:
        self.app = app
        self.host = host
        self.port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("server failed to start within 15s")
        if self._error is not None:
            raise RuntimeError(
                f"server failed to start: {self._error!r}"
            )

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            try:
                server = await asyncio.start_server(
                    self.app.handle_client, self.host, 0,
                    limit=256 * 1024,
                )
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                raise
            self.port = server.sockets[0].getsockname()[1]
            self._stop = asyncio.Event()
            self._ready.set()
            async with server:
                await self._stop.wait()
            # Drain in-flight keep-alive handlers before the loop
            # closes, so no writer outlives its event loop.
            tasks = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        try:
            loop.run_until_complete(main())
        # staticcheck: disable=SC008 — server-thread boundary: startup
        # failures are surfaced to the caller through start()'s ready
        # event, and nothing may escape a daemon thread's run().
        except BaseException:  # pragma: no cover - surfaced via start()
            pass
        finally:
            loop.close()

    def stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.app.shutdown()
