"""The service: tenants × changefeeds × jobs, on one asyncio loop.

:class:`ReproApp` wires the layers together:

* **routing** — the table in :mod:`repro.server.routes`, dispatched
  with structured-log + metrics middleware around every request;
* **engine offload** — handlers are async but the engines are
  synchronous CPU work, so every engine call goes through
  :meth:`ReproApp.run_sync` (a thread-pool executor), keeping the
  accept loop responsive while a big batch is checked;
* **budgets** — ``X-Budget-*`` request headers become a
  :class:`~repro.runtime.budget.Budget` governing that request's
  engine work (and, for job submission, the whole job pipeline);
* **observability** — one :class:`MetricsRegistry` (Prometheus text on
  ``GET /metrics``) and one JSON-lines logger; kernel-layer counters
  are pulled at scrape time via a thread-safe snapshot.

Serving entry points: :meth:`serve` (asyncio, used by ``repro
serve``) and :meth:`run_in_thread` (background thread + ephemeral
port, used by the tests and the benchmark).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from collections.abc import Callable
from typing import Any, TypeVar

from ..incremental.detector import BatchChange
from ..plan.kernels import COUNTERS
from ..runtime.budget import Budget
from ..runtime.errors import BudgetExhausted, EngineFault, ReproError
from .http import (
    HttpError,
    Request,
    Response,
    json_response,
    read_request,
    write_response,
)
from .jobs import CANCELLED, FAILED, SUCCEEDED, Job, JobManager
from .observability import MetricsRegistry, get_logger, new_request_id
from .routes import Router, build_router
from .state import Tenant, TenantRegistry

T = TypeVar("T")

#: Budget request headers -> Budget fields (memory arrives in MiB).
BUDGET_HEADERS = (
    ("x-budget-deadline-s", "deadline_s", float),
    ("x-budget-max-candidates", "max_candidates", int),
    ("x-budget-max-pairs", "max_pairs", int),
    ("x-budget-max-memory-mb", "max_memory_mb", float),
)


class ReproApp:
    """One server process: registry, jobs, metrics, router."""

    def __init__(self, *, max_workers: int = 4) -> None:
        self.tenants = TenantRegistry()
        self.jobs = JobManager(max_workers=max_workers)
        self.jobs.on_finish = self._on_job_finish
        self.metrics = MetricsRegistry()
        self.logger = get_logger()
        self.router: Router = build_router()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-engine"
        )
        self._build_instruments()

    # -- observability -------------------------------------------------

    def _build_instruments(self) -> None:
        m = self.metrics
        self.requests_total = m.counter(
            "repro_requests_total",
            "HTTP requests by tenant, route template, and status.",
            labels=("tenant", "route", "method", "status"),
        )
        self.request_seconds = m.histogram(
            "repro_request_seconds",
            "End-to-end request latency by route template.",
            labels=("route",),
        )
        self.batches_total = m.counter(
            "repro_batches_total",
            "Mutation batches applied to the changefeed.",
            labels=("tenant",),
        )
        self.rows_ingested_total = m.counter(
            "repro_rows_ingested_total",
            "Rows inserted through the changefeed.",
            labels=("tenant",),
        )
        self.violations_added_total = m.counter(
            "repro_violations_added_total",
            "Violations newly reported by applied batches.",
            labels=("tenant",),
        )
        self.violations_resolved_total = m.counter(
            "repro_violations_resolved_total",
            "Violations resolved by applied batches.",
            labels=("tenant",),
        )
        self.violations_gauge = m.gauge(
            "repro_violations",
            "Current total violations per tenant.",
            labels=("tenant",),
        )
        self.rule_violations = m.gauge(
            "repro_rule_violations",
            "Current violations per tenant and rule.",
            labels=("tenant", "rule"),
        )
        self.rule_check_seconds = m.histogram(
            "repro_rule_check_seconds",
            "Per-rule synchronous check latency.",
            labels=("tenant", "rule"),
        )
        self.budget_exhausted_total = m.counter(
            "repro_budget_exhausted_total",
            "Requests/stages cut short by a budget, by reason.",
            labels=("tenant", "reason"),
        )
        self.quarantined_total = m.counter(
            "repro_quarantined_total",
            "Checker faults quarantined during ingestion.",
            labels=("tenant",),
        )
        self.jobs_total = m.counter(
            "repro_jobs_total",
            "Background jobs by terminal state.",
            labels=("tenant", "type", "state"),
        )
        self._tenants_gauge = m.gauge(
            "repro_tenants", "Registered tenants."
        )
        self._kernel_executions = m.gauge(
            "repro_kernel_executions",
            "Kernel executions since process start (snapshot).",
        )
        self._kernel_pairs = m.gauge(
            "repro_kernel_pairs_examined",
            "Candidate pairs examined by kernels (snapshot).",
        )
        self._kernel_chunks = m.gauge(
            "repro_kernel_chunks",
            "Vectorized index chunks streamed (snapshot).",
        )
        self._kernel_backend = m.gauge(
            "repro_kernel_executions_by_backend",
            "Kernel executions split scalar/vectorized (snapshot).",
            labels=("backend",),
        )
        m.add_collector(self._collect)

    def _collect(self) -> None:
        """Scrape-time pull of state owned by other layers."""
        self._tenants_gauge.set(len(self.tenants.list()))
        # Thread-safe snapshot: scraping never races active kernels.
        counters = COUNTERS.snapshot()
        self._kernel_executions.set(counters.executions)
        self._kernel_pairs.set(counters.pairs_examined)
        self._kernel_chunks.set(counters.chunks)
        for backend, count in counters.backends().items():
            self._kernel_backend.set(count, backend=backend)

    def log(self, message: str, request: Request | None = None,
            **context: Any) -> None:
        if request is not None:
            context.setdefault(
                "request_id", request.headers.get("x-request-id", "")
            )
        self.logger.info(message, extra=context)

    def note_batch(self, tenant: Tenant, change: BatchChange) -> None:
        """Fold one changefeed entry into the tenant's instruments."""
        tid = tenant.tenant_id
        self.batches_total.inc(tenant=tid)
        inserted = len(change.delta.inserts)
        if inserted:
            self.rows_ingested_total.inc(inserted, tenant=tid)
        if change.added:
            self.violations_added_total.inc(len(change.added), tenant=tid)
        if change.resolved:
            self.violations_resolved_total.inc(
                len(change.resolved), tenant=tid
            )
        self.violations_gauge.set(change.total, tenant=tid)
        if change.quarantined:
            self.quarantined_total.inc(len(change.quarantined), tenant=tid)
        if change.exhausted:
            self.note_budget_exhausted(tid, change.exhausted)

    def note_budget_exhausted(self, tenant_id: str, reason: str) -> None:
        self.budget_exhausted_total.inc(tenant=tenant_id, reason=reason)

    def note_rule_gauges(self, tenant: Tenant) -> None:
        """Refresh the per-rule violation gauges from the detector."""
        detector = tenant.detector
        if detector is None:
            return
        report = detector.report()
        for rule, violations in report.per_rule.items():
            self.rule_violations.set(
                len(violations), tenant=tenant.tenant_id, rule=rule
            )
        self.violations_gauge.set(
            len(report.violations), tenant=tenant.tenant_id
        )

    def _on_job_finish(self, job: Job) -> None:
        self.jobs_total.inc(
            tenant=job.tenant_id, type=job.job_type, state=job.state
        )
        if job.state in (SUCCEEDED, FAILED, CANCELLED):
            for stage in job.stages:
                if stage.exhausted:
                    self.note_budget_exhausted(
                        job.tenant_id, stage.exhausted
                    )
        self.logger.info(
            "job finished",
            extra={
                "event": "job_finished",
                "tenant": job.tenant_id,
                "job_id": job.job_id,
                "job_type": job.job_type,
                "job_state": job.state,
                "error": job.error or "",
            },
        )

    # -- request plumbing ----------------------------------------------

    async def run_sync(self, fn: Callable[[], T]) -> T:
        """Run synchronous engine work off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn)

    def budget_from_headers(self, request: Request) -> Budget | None:
        """``X-Budget-*`` headers -> a request budget (None when unset)."""
        fields: dict[str, Any] = {}
        for header, name, convert in BUDGET_HEADERS:
            raw = request.header(header)
            if raw is None:
                continue
            try:
                value = convert(raw)
            except ValueError:
                raise HttpError(
                    400, f"bad {header} header: {raw!r}"
                )
            if value < 0:
                raise HttpError(
                    400, f"bad {header} header: must be >= 0"
                )
            fields[name] = value
        if not fields:
            return None
        memory_mb = fields.pop("max_memory_mb", None)
        if memory_mb is not None:
            fields["max_memory_bytes"] = int(memory_mb * 1024 * 1024)
        return Budget(**fields)

    async def dispatch(self, request: Request) -> Response:
        """Route + middleware: ids, timing, logging, metrics, errors."""
        request.headers.setdefault("x-request-id", new_request_id())
        started = time.perf_counter()
        route_label = "unmatched"
        tenant_label = "-"
        try:
            route, params = self.router.resolve(request)
            request.params = params
            route_label = route.template
            tenant_label = params.get("tenant", "-")
            response = await route.handler(self, request)
        except HttpError as exc:
            response = json_response(exc.payload, status=exc.status)
        except BudgetExhausted as exc:
            # A handler let an exhaustion escape instead of folding it
            # into a partial result: report it honestly as overload.
            if tenant_label != "-":
                self.note_budget_exhausted(tenant_label, exc.reason)
            response = json_response(
                {"error": "budget exhausted", "reason": exc.reason},
                status=503,
            )
        except EngineFault as exc:
            response = json_response(
                {
                    "error": f"engine fault: {exc}",
                    "site": exc.site or "",
                },
                status=500,
            )
            self.logger.error(
                "engine fault",
                extra={
                    "event": "engine_fault",
                    "request_id": request.headers["x-request-id"],
                    "error": str(exc),
                },
            )
        except ReproError as exc:
            response = json_response({"error": str(exc)}, status=400)
        except Exception as exc:  # noqa: BLE001 - server boundary
            response = json_response(
                {"error": f"internal error: {type(exc).__name__}"},
                status=500,
            )
            self.logger.exception(
                "unhandled error",
                extra={
                    "event": "unhandled_error",
                    "request_id": request.headers["x-request-id"],
                    "method": request.method,
                    "path": request.path,
                },
            )
        elapsed = time.perf_counter() - started
        self.requests_total.inc(
            tenant=tenant_label,
            route=route_label,
            method=request.method,
            status=str(response.status),
        )
        self.request_seconds.observe(elapsed, route=route_label)
        self.log(
            "request", request,
            event="request",
            method=request.method,
            path=request.path,
            status=response.status,
            duration_ms=round(elapsed * 1000, 3),
            tenant=tenant_label,
        )
        return response

    async def handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One keep-alive connection: read → dispatch → write, repeat."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer,
                        json_response(exc.payload, status=exc.status),
                        keep_alive=False,
                    )
                    return
                except (TimeoutError, asyncio.TimeoutError):
                    return
                if request is None:
                    return
                keep_alive = (
                    request.headers.get("connection", "").lower() != "close"
                )
                head_only = request.method == "HEAD"
                if head_only:
                    request.method = "GET"
                response = await self.dispatch(request)
                await write_response(
                    writer, response,
                    keep_alive=keep_alive, head_only=head_only,
                )
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- serving -------------------------------------------------------

    async def serve(
        self, host: str = "127.0.0.1", port: int = 8095
    ) -> None:
        """Serve forever on the event loop (``repro serve``)."""
        server = await self._start(host, port)
        async with server:
            await server.serve_forever()

    async def _start(self, host: str, port: int) -> asyncio.Server:
        server = await asyncio.start_server(
            self.handle_client, host, port, limit=256 * 1024
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        self.log(
            f"serving on {host}:{self.bound_port}", None, event="serving"
        )
        return server

    def run_in_thread(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "ServerHandle":
        """Serve from a daemon thread; returns once the port is bound.

        The tests and the ingest benchmark use this: ``port=0`` binds an
        ephemeral port, exposed on the returned handle.
        """
        handle = ServerHandle(self, host)
        handle.start()
        return handle

    def shutdown(self) -> None:
        self.jobs.shutdown()
        self._executor.shutdown(wait=False, cancel_futures=True)


class ServerHandle:
    """A server running on a background thread (tests, benchmarks)."""

    def __init__(self, app: ReproApp, host: str) -> None:
        self.app = app
        self.host = host
        self.port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("server failed to start within 15s")
        if self._error is not None:
            raise RuntimeError(
                f"server failed to start: {self._error!r}"
            )

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            try:
                server = await asyncio.start_server(
                    self.app.handle_client, self.host, 0,
                    limit=256 * 1024,
                )
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                raise
            self.port = server.sockets[0].getsockname()[1]
            self._stop = asyncio.Event()
            self._ready.set()
            async with server:
                await self._stop.wait()
            # Drain in-flight keep-alive handlers before the loop
            # closes, so no writer outlives its event loop.
            tasks = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        try:
            loop.run_until_complete(main())
        except BaseException:  # pragma: no cover - surfaced via start()
            pass
        finally:
            loop.close()

    def stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.app.shutdown()
