"""Durable tenant state and overload protection for the server.

Three cooperating pieces:

* :mod:`~repro.server.durability.wal` — the per-tenant write-ahead log
  (length-prefixed, CRC32-checksummed JSON frames; configurable fsync).
* :mod:`~repro.server.durability.snapshot` — atomic, checksummed
  snapshots that bound replay time.
* :mod:`~repro.server.durability.manager` — the
  :class:`DurabilityManager` tying them together: pre-ack appends,
  periodic snapshots, and startup recovery.
* :mod:`~repro.server.durability.overload` — load shedding (bounded
  ingest admission, RSS watermark) and per-rule circuit breakers.
"""

from .manager import (
    DEFAULT_SNAPSHOT_EVERY,
    DurabilityManager,
    RecoveryReport,
    TenantRecovery,
)
from .overload import (
    BREAKER_STATE_VALUES,
    BreakerTransition,
    CircuitBreaker,
    IngestGate,
    MemoryWatermark,
    OverloadConfig,
    OverloadGuards,
)
from .snapshot import SnapshotCorruption, load_snapshot, write_snapshot
from .wal import (
    FSYNC_POLICIES,
    WalCorruption,
    WalScan,
    WriteAheadLog,
    encode_record,
    scan_wal,
)

__all__ = [
    "BREAKER_STATE_VALUES",
    "BreakerTransition",
    "CircuitBreaker",
    "DEFAULT_SNAPSHOT_EVERY",
    "DurabilityManager",
    "FSYNC_POLICIES",
    "IngestGate",
    "MemoryWatermark",
    "OverloadConfig",
    "OverloadGuards",
    "RecoveryReport",
    "SnapshotCorruption",
    "TenantRecovery",
    "WalCorruption",
    "WalScan",
    "WriteAheadLog",
    "encode_record",
    "load_snapshot",
    "scan_wal",
    "write_snapshot",
]
