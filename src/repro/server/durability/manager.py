"""Per-tenant durability: WAL appends, snapshots, and startup recovery.

The :class:`DurabilityManager` owns one directory per tenant under
``<data_dir>/tenants/<tenant_id>/``::

    wal.log         framed records (see durability.wal)
    snapshot.json   newest atomic snapshot (see durability.snapshot)

Every *acknowledged* mutation — tenant registration, rule upload, batch
ingest — is appended to the tenant's WAL **before** the in-memory state
advances and the 200 goes out, each record stamped with a per-tenant
monotone ``seq``.  Snapshots fold the WAL into one file every
``snapshot_every`` batches (the WAL is then reset); because the
snapshot records the ``seq`` it covers, a crash between
snapshot-rename and WAL-reset replays nothing twice — recovery skips
records at or below the snapshot's seq.

:meth:`DurabilityManager.recover` is the startup path: per tenant
directory it loads the newest verified snapshot (a corrupt one is
reported and skipped, falling back to full-WAL replay), truncates any
torn WAL tail, replays the surviving record suffix in order through
the same ``Delta``/detector machinery the live path uses, and installs
the rebuilt tenants into the registry.  The ``replay`` crash point
fires per replayed batch, so chaos tests can kill the process *during*
recovery and assert the next recovery still converges.
"""

from __future__ import annotations

import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ...analysis import lint_entries
from ...incremental import IncrementalDetector
from ...incremental.delta import Delta
from ...relation import Relation, Schema
from ...rules_io import parse_rules_with_meta
from ...runtime import faults
from ..state import Tenant, parse_schema
from .snapshot import SnapshotCorruption, load_snapshot, write_snapshot
from .wal import FSYNC_POLICIES, WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..state import TenantRegistry

#: Snapshot after this many batch records by default.
DEFAULT_SNAPSHOT_EVERY = 256

SNAPSHOT_VERSION = 1


class _TenantLog:
    """One tenant's WAL handle plus its sequence bookkeeping."""

    def __init__(self, directory: Path, fsync: str) -> None:
        self.directory = directory
        self.wal = WriteAheadLog(directory / "wal.log", fsync=fsync)
        self.next_seq = 1
        self.batches_since_snapshot = 0


@dataclass
class TenantRecovery:
    """How one tenant came back."""

    tenant_id: str
    snapshot_used: bool = False
    records_replayed: int = 0
    batches_replayed: int = 0
    torn_bytes: int = 0
    violations: int = 0
    seconds: float = 0.0
    warnings: list[str] = field(default_factory=list)


@dataclass
class RecoveryReport:
    """The outcome of one :meth:`DurabilityManager.recover` pass."""

    tenants: list[TenantRecovery] = field(default_factory=list)
    #: Directories that held no recoverable state (reason strings).
    skipped: list[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def batches_replayed(self) -> int:
        return sum(t.batches_replayed for t in self.tenants)

    def describe(self) -> dict[str, Any]:
        return {
            "tenants": len(self.tenants),
            "records_replayed": sum(
                t.records_replayed for t in self.tenants
            ),
            "batches_replayed": self.batches_replayed,
            "torn_bytes": sum(t.torn_bytes for t in self.tenants),
            "seconds": round(self.seconds, 6),
            "skipped": list(self.skipped),
            "warnings": [w for t in self.tenants for w in t.warnings],
        }


class DurabilityManager:
    """WAL + snapshot + recovery for every tenant of one server."""

    def __init__(
        self,
        data_dir: Path | str,
        *,
        fsync: str = "batch",
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        self.data_dir = Path(data_dir)
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.tenants_dir = self.data_dir / "tenants"
        self.tenants_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._logs: dict[str, _TenantLog] = {}
        #: Cumulative observability feed (scraped into gauges/counters).
        self.wal_bytes = 0
        self.wal_records = 0
        self.snapshots_taken = 0

    # -- log handles ---------------------------------------------------

    def _log(self, tenant_id: str) -> _TenantLog:
        with self._lock:
            log = self._logs.get(tenant_id)
            if log is None:
                directory = self.tenants_dir / tenant_id
                directory.mkdir(parents=True, exist_ok=True)
                log = _TenantLog(directory, self.fsync)
                self._logs[tenant_id] = log
            return log

    def _append(self, log: _TenantLog, record: dict[str, Any]) -> int:
        seq = log.next_seq
        record["seq"] = seq
        written = log.wal.append(record)
        log.next_seq = seq + 1
        with self._lock:
            self.wal_bytes += written
            self.wal_records += 1
        return seq

    # -- the write-ahead hooks (called before acking) ------------------

    def log_register(self, tenant: Tenant) -> int:
        """Persist a registration (schema + any seed rows), pre-ack."""
        log = self._log(tenant.tenant_id)
        return self._append(
            log,
            {
                "type": "register",
                "tenant": tenant.tenant_id,
                "created_at": tenant.created_at,
                "schema": _schema_payload(tenant.schema),
                "rows": [list(row) for row in tenant.relation.rows()],
            },
        )

    def log_rules(self, tenant: Tenant, payload: Any) -> int:
        """Persist an accepted rule-set upload (the raw document)."""
        log = self._log(tenant.tenant_id)
        return self._append(
            log,
            {
                "type": "rules",
                "tenant": tenant.tenant_id,
                "payload": payload,
            },
        )

    def log_batch(self, tenant: Tenant, delta: Delta) -> int:
        """Persist one mutation batch (canonical ``Delta.to_json``)."""
        log = self._log(tenant.tenant_id)
        return self._append(
            log,
            {
                "type": "batch",
                "tenant": tenant.tenant_id,
                "delta": delta.to_json(),
            },
        )

    def note_batch_applied(self, tenant: Tenant) -> bool:
        """Advance the snapshot countdown; snapshot when due.

        Called under the tenant lock right after a batch applies, so
        the snapshot sees a batch boundary.  Returns ``True`` when a
        snapshot was taken.
        """
        log = self._log(tenant.tenant_id)
        log.batches_since_snapshot += 1
        if log.batches_since_snapshot < self.snapshot_every:
            return False
        self.snapshot(tenant)
        return True

    def snapshot(self, tenant: Tenant) -> Path:
        """Fold the tenant's state into an atomic snapshot; reset the WAL.

        Caller must hold the tenant lock (no appends may interleave).
        """
        log = self._log(tenant.tenant_id)
        relation = (
            tenant.detector.relation
            if tenant.detector is not None
            else tenant.relation
        )
        state = {
            "version": SNAPSHOT_VERSION,
            "tenant": tenant.tenant_id,
            "created_at": tenant.created_at,
            "seq": log.next_seq - 1,
            "schema": _schema_payload(tenant.schema),
            "relation": relation.to_state(),
            "rules_payload": tenant.rules_payload,
            "batches_ingested": tenant.batches_ingested,
            "rows_ingested": tenant.rows_ingested,
            "violations": (
                len(tenant.detector.violations())
                if tenant.detector is not None
                else None
            ),
        }
        path = write_snapshot(log.directory, state)
        log.wal.reset()
        log.batches_since_snapshot = 0
        with self._lock:
            self.snapshots_taken += 1
        return path

    def remove_tenant(self, tenant_id: str) -> None:
        """Drop a tenant's durable state (registration is revoked)."""
        with self._lock:
            log = self._logs.pop(tenant_id, None)
        if log is not None:
            log.wal.close()
        directory = self.tenants_dir / tenant_id
        if directory.exists():
            shutil.rmtree(directory, ignore_errors=True)

    # -- drain ---------------------------------------------------------

    def flush(self) -> None:
        """fsync every open WAL (graceful-drain path)."""
        with self._lock:
            logs = list(self._logs.values())
        for log in logs:
            log.wal.sync()

    def close(self) -> None:
        with self._lock:
            logs = list(self._logs.values())
            self._logs.clear()
        for log in logs:
            log.wal.close()

    # -- recovery ------------------------------------------------------

    def recover(self, registry: "TenantRegistry") -> RecoveryReport:
        """Rebuild every tenant from snapshot + WAL tail into ``registry``.

        Corruption never aborts the whole server: a corrupt snapshot
        falls back to full-WAL replay (warned), a torn WAL tail is
        truncated (counted), and a directory with no recoverable state
        is skipped (listed).  Each recovered tenant's detector is
        rebuilt to exactly the last acknowledged record.
        """
        started = time.perf_counter()
        report = RecoveryReport()
        if not self.tenants_dir.exists():
            report.seconds = time.perf_counter() - started
            return report
        for directory in sorted(self.tenants_dir.iterdir()):
            if not directory.is_dir():
                continue
            tenant_id = directory.name
            outcome = self._recover_tenant(tenant_id, directory)
            if isinstance(outcome, str):
                report.skipped.append(f"{tenant_id}: {outcome}")
                continue
            tenant, recovery = outcome
            registry.restore(tenant)
            report.tenants.append(recovery)
        report.seconds = time.perf_counter() - started
        return report

    def _recover_tenant(
        self, tenant_id: str, directory: Path
    ) -> tuple[Tenant, TenantRecovery] | str:
        started = time.perf_counter()
        recovery = TenantRecovery(tenant_id=tenant_id)
        snapshot: dict[str, Any] | None = None
        try:
            snapshot = load_snapshot(directory)
        except SnapshotCorruption as exc:
            recovery.warnings.append(str(exc))
        log = _TenantLog(directory, self.fsync)
        scan = log.wal.open_for_append()
        recovery.torn_bytes = log.wal.truncated_bytes
        if scan.torn_reason:
            recovery.warnings.append(
                f"wal tail truncated ({scan.torn_reason}, "
                f"{log.wal.truncated_bytes} bytes)"
            )

        tenant: Tenant | None = None
        snapshot_seq = 0
        if snapshot is not None:
            tenant, warning = _tenant_from_snapshot(snapshot)
            if tenant is None:
                recovery.warnings.append(warning)
            else:
                snapshot_seq = int(snapshot.get("seq", 0))
                recovery.snapshot_used = True
                if warning:
                    recovery.warnings.append(warning)

        last_seq = snapshot_seq
        for record in scan.records:
            seq = int(record.get("seq", 0))
            if seq <= snapshot_seq:
                continue  # already folded into the snapshot
            last_seq = max(last_seq, seq)
            kind = record.get("type")
            if kind == "register":
                if tenant is not None:
                    recovery.warnings.append(
                        f"duplicate register record at seq {seq} ignored"
                    )
                    continue
                tenant = _tenant_from_register(record)
            elif tenant is None:
                recovery.warnings.append(
                    f"{kind!r} record at seq {seq} before registration; "
                    "ignored"
                )
                continue
            elif kind == "rules":
                warning = _apply_rules_record(tenant, record)
                if warning:
                    recovery.warnings.append(warning)
            elif kind == "batch":
                faults.crash_point("replay")
                detector = tenant.detector
                if detector is None:
                    recovery.warnings.append(
                        f"batch record at seq {seq} with no rule set; "
                        "ignored"
                    )
                    continue
                delta = Delta.from_json(record["delta"], tenant.schema)
                detector.apply(delta)
                tenant.relation = detector.relation
                tenant.batches_ingested += 1
                tenant.rows_ingested += len(delta.inserts)
                recovery.batches_replayed += 1
            else:
                recovery.warnings.append(
                    f"unknown record type {kind!r} at seq {seq} ignored"
                )
            recovery.records_replayed += 1

        if tenant is None:
            log.wal.close()
            return "no snapshot and no registration record"
        log.next_seq = last_seq + 1
        with self._lock:
            self._logs[tenant_id] = log
        if tenant.detector is not None:
            recovery.violations = len(tenant.detector.violations())
        recovery.seconds = time.perf_counter() - started
        return tenant, recovery


# -- record/state (de)serialization helpers ----------------------------


def _schema_payload(schema: Schema) -> list[dict[str, str]]:
    return [{"name": a.name, "type": a.dtype.value} for a in schema]


def _tenant_from_register(record: dict[str, Any]) -> Tenant:
    schema = parse_schema({"attributes": record["schema"]})
    relation = Relation.from_rows(
        schema, [tuple(row) for row in record.get("rows", [])]
    )
    return Tenant(
        tenant_id=record["tenant"],
        schema=schema,
        relation=relation,
        created_at=record.get("created_at", time.time()),
    )


def _tenant_from_snapshot(
    snapshot: dict[str, Any],
) -> tuple[Tenant | None, str]:
    """Rebuild a tenant (and detector) from snapshot state.

    Returns ``(tenant, warning)``; ``(None, reason)`` when the state is
    structurally unusable.  The rebuilt detector's violation count is
    cross-checked against the count recorded at snapshot time — the
    cold-rebuild parity contract says they must agree, so a mismatch is
    surfaced as an integrity warning.
    """
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        return None, f"unsupported snapshot version {version!r}"
    try:
        schema = parse_schema({"attributes": snapshot["schema"]})
        relation = Relation.from_state(snapshot["relation"])
    # staticcheck: disable=SC008 — recovery boundary: a corrupt
    # snapshot is reported as a per-tenant warning, never a crash, and
    # no budget governs recovery.
    except Exception as exc:  # noqa: BLE001 - corrupt state is a skip
        return None, f"unusable snapshot state: {exc}"
    tenant = Tenant(
        tenant_id=snapshot["tenant"],
        schema=schema,
        relation=relation,
        created_at=snapshot.get("created_at", time.time()),
        batches_ingested=int(snapshot.get("batches_ingested", 0)),
        rows_ingested=int(snapshot.get("rows_ingested", 0)),
    )
    warning = ""
    payload = snapshot.get("rules_payload")
    if payload is not None:
        warning = _apply_rules_record(
            tenant, {"payload": payload, "seq": snapshot.get("seq")}
        )
        expected = snapshot.get("violations")
        if (
            not warning
            and tenant.detector is not None
            and expected is not None
        ):
            actual = len(tenant.detector.violations())
            if actual != expected:
                warning = (
                    f"integrity: snapshot recorded {expected} violations "
                    f"but the rebuilt detector reports {actual}"
                )
    return tenant, warning


def _apply_rules_record(tenant: Tenant, record: dict[str, Any]) -> str:
    """Replay one accepted rule upload: lint-screen and rebuild.

    The upload was lint-screened when first accepted and the screen is
    deterministic, so replay reuses the same path; if it somehow fails
    now (e.g. a hand-edited WAL), the tenant survives without a
    detector and the failure is reported as a warning.
    """
    payload = record.get("payload")
    try:
        entries = parse_rules_with_meta(
            payload, source=f"tenants/{tenant.tenant_id}/rules"
        )
        report = lint_entries(entries, schema=tenant.schema)
        if report.has_errors:
            raise ValueError(
                "rule set no longer passes the lint screen"
            )
        skipped = {
            entries[i].name: why for i, why in report.skippable.items()
        }
        active = [
            e.dependency
            for i, e in enumerate(entries)
            if i not in report.skippable
        ]
        current = (
            tenant.detector.relation
            if tenant.detector is not None
            else tenant.relation
        )
        tenant.rule_entries = list(entries)
        tenant.skipped_rules = skipped
        tenant.rules_payload = payload
        tenant.relation = current
        tenant.detector = IncrementalDetector(active, current)
        return ""
    # staticcheck: disable=SC008 — recovery boundary: one bad WAL
    # record becomes a warning so the remaining records still replay;
    # no budget governs recovery.
    except Exception as exc:  # noqa: BLE001 - keep recovering
        return (
            f"rules record at seq {record.get('seq')} failed to "
            f"replay: {exc}"
        )
