"""Atomic per-tenant snapshots: relation + rules + counters at a seq.

A snapshot bounds WAL replay time: recovery loads the newest verified
snapshot and replays only the WAL records with a higher ``seq``.  The
write is crash-atomic — serialize to ``snapshot.json.tmp``, fsync,
rename over ``snapshot.json``, fsync the directory — so a crash at any
point leaves either the old snapshot or the new one, never a torn mix.
A CRC32 of the body travels in a one-line header so a corrupt snapshot
is *detected* and skipped (falling back to full-WAL replay) instead of
recovered into.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

from ...runtime import faults

SNAPSHOT_NAME = "snapshot.json"

#: First line of the snapshot file: crc of everything after the line.
_HEADER_PREFIX = "repro-snapshot-v1 crc32="


class SnapshotCorruption(ValueError):
    """The snapshot file failed its checksum or shape verification."""


def write_snapshot(directory: Path | str, state: dict[str, Any]) -> Path:
    """Atomically persist ``state`` as the tenant's snapshot.

    When the ``snapshot-write`` crash point is armed, the process dies
    after writing half the temporary file — the rename never happens,
    so recovery must still find the previous snapshot intact.
    """
    directory = Path(directory)
    body = json.dumps(state, separators=(",", ":"), allow_nan=True)
    text = f"{_HEADER_PREFIX}{zlib.crc32(body.encode('utf-8'))}\n{body}"
    tmp = directory / (SNAPSHOT_NAME + ".tmp")
    final = directory / SNAPSHOT_NAME
    with open(tmp, "w", encoding="utf-8") as f:
        if faults.crash_armed("snapshot-write"):
            half = max(1, len(text) // 2)
            f.write(text[:half])
            f.flush()
            faults.crash_point("snapshot-write")
            f.write(text[half:])
        else:
            f.write(text)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, final)
    _fsync_dir(directory)
    return final


def load_snapshot(directory: Path | str) -> dict[str, Any] | None:
    """The tenant's verified snapshot state, or ``None`` when absent.

    Raises :class:`SnapshotCorruption` when a snapshot file exists but
    fails verification — callers decide whether to fall back to
    full-WAL replay or refuse to start.
    """
    path = Path(directory) / SNAPSHOT_NAME
    if not path.exists():
        return None
    try:
        text = path.read_bytes().decode("utf-8")
    except UnicodeDecodeError:
        raise SnapshotCorruption(f"{path}: snapshot is not valid UTF-8")
    header, sep, body = text.partition("\n")
    if not sep or not header.startswith(_HEADER_PREFIX):
        raise SnapshotCorruption(f"{path}: malformed snapshot header")
    try:
        expected = int(header[len(_HEADER_PREFIX):])
    except ValueError:
        raise SnapshotCorruption(f"{path}: malformed snapshot header")
    if zlib.crc32(body.encode("utf-8")) != expected:
        raise SnapshotCorruption(f"{path}: snapshot checksum mismatch")
    state = json.loads(body)
    if not isinstance(state, dict):
        raise SnapshotCorruption(f"{path}: snapshot body is not an object")
    return state


def _fsync_dir(directory: Path) -> None:
    """Persist the rename itself (directory entry durability)."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
