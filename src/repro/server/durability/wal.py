"""The write-ahead log: length-prefixed, checksummed JSON records.

One WAL file per tenant.  Frame layout, repeated to end of file::

    +----------------+----------------+------------------------+
    | length (u32 BE)| CRC32 (u32 BE) | payload (length bytes) |
    +----------------+----------------+------------------------+

The payload is a UTF-8 JSON object (``NaN``/``Infinity`` extensions
enabled — mutation batches may legitimately carry non-finite floats)
and the CRC covers exactly the payload bytes.  Appends always
``flush()`` to the OS before returning — a ``kill -9`` therefore loses
at most the frame being written *right now* — while ``fsync`` (machine-
crash durability) follows the configured policy:

* ``always`` — fsync after every append; an acknowledged record
  survives power loss;
* ``batch`` — fsync when ``_BATCH_RECORDS`` appends or
  ``_BATCH_INTERVAL_S`` seconds have accumulated (and on every
  :meth:`WriteAheadLog.sync`/:meth:`~WriteAheadLog.close`);
* ``off`` — never fsync (still crash-safe against process death, not
  against the machine dying).

Reading (:func:`scan_wal`) verifies length and CRC per frame and stops
at the first frame that does not check out — a torn tail from a crash
mid-append.  :meth:`WriteAheadLog.open_for_append` truncates that tail
off before appending, so a recovered log never grows garbage in the
middle.
"""

from __future__ import annotations

import io
import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ...runtime import faults

FSYNC_POLICIES = ("always", "batch", "off")

_HEADER = struct.Struct(">II")

#: ``batch`` fsync policy: sync after this many unsynced appends ...
_BATCH_RECORDS = 64
#: ... or once this many seconds have passed since the last sync.
_BATCH_INTERVAL_S = 0.05


class WalCorruption(ValueError):
    """A WAL frame failed its length or checksum verification."""


def encode_record(record: dict[str, Any]) -> bytes:
    """One framed record: header + JSON payload."""
    payload = json.dumps(
        record, separators=(",", ":"), allow_nan=True
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalScan:
    """What :func:`scan_wal` found in one log file."""

    records: list[dict[str, Any]] = field(default_factory=list)
    #: Byte offset just past the last frame that verified.
    valid_bytes: int = 0
    #: Bytes past ``valid_bytes`` that failed verification (torn tail).
    torn_bytes: int = 0
    #: Why the scan stopped early ("" for a clean end-of-file).
    torn_reason: str = ""


def scan_wal(path: Path | str) -> WalScan:
    """Read every verifiable record; report (don't raise on) a torn tail.

    The scan stops at the first frame whose header is truncated, whose
    payload is shorter than declared, or whose CRC or JSON does not
    verify — everything after an unverifiable frame was written later
    and is equally suspect, which is exactly the prefix-durability
    contract the recovery path needs.
    """
    scan = WalScan()
    path = Path(path)
    if not path.exists():
        return scan
    data = path.read_bytes()
    total = len(data)
    offset = 0
    while offset < total:
        if offset + _HEADER.size > total:
            scan.torn_reason = "truncated frame header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            scan.torn_reason = "payload shorter than declared length"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            scan.torn_reason = "checksum mismatch"
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            scan.torn_reason = "payload is not valid JSON"
            break
        scan.records.append(record)
        scan.valid_bytes = end
        offset = end
    scan.torn_bytes = total - scan.valid_bytes
    return scan


class WriteAheadLog:
    """Append-only framed record log with a configurable fsync policy."""

    def __init__(self, path: Path | str, fsync: str = "batch") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self._file: io.BufferedWriter | None = None
        self._unsynced = 0
        self._last_sync = time.monotonic()
        #: Bytes appended through this handle (observability feed).
        self.bytes_written = 0
        #: Torn bytes truncated off at open time.
        self.truncated_bytes = 0

    # -- lifecycle -----------------------------------------------------

    def open_for_append(self) -> WalScan:
        """Open the log, truncating any torn tail; return what's in it."""
        scan = scan_wal(self.path)
        if scan.torn_bytes:
            with open(self.path, "r+b") as f:
                f.truncate(scan.valid_bytes)
            self.truncated_bytes = scan.torn_bytes
        self._file = open(self.path, "ab")
        return scan

    def close(self) -> None:
        if self._file is None:
            return
        self._file.flush()
        if self.fsync != "off":
            os.fsync(self._file.fileno())
        self._file.close()
        self._file = None

    # -- appending -----------------------------------------------------

    def append(self, record: dict[str, Any]) -> int:
        """Frame, write, flush, and (per policy) fsync one record.

        Returns the number of bytes appended.  When the ``wal-append``
        crash point is armed, the frame is deliberately written in two
        halves with the crash between them, so chaos tests produce a
        genuinely torn frame — not a cleanly missing one.
        """
        if self._file is None:
            self._file = open(self.path, "ab")
        frame = encode_record(record)
        if faults.crash_armed("wal-append"):
            half = max(1, len(frame) // 2)
            self._file.write(frame[:half])
            self._file.flush()
            faults.crash_point("wal-append")
            self._file.write(frame[half:])
        else:
            self._file.write(frame)
        self._file.flush()
        self.bytes_written += len(frame)
        self._unsynced += 1
        if self.fsync == "always":
            os.fsync(self._file.fileno())
            self._unsynced = 0
            self._last_sync = time.monotonic()
        elif self.fsync == "batch":
            now = time.monotonic()
            if (
                self._unsynced >= _BATCH_RECORDS
                or now - self._last_sync >= _BATCH_INTERVAL_S
            ):
                os.fsync(self._file.fileno())
                self._unsynced = 0
                self._last_sync = now
        return len(frame)

    def sync(self) -> None:
        """Flush and fsync whatever is pending (drain path)."""
        if self._file is None:
            return
        self._file.flush()
        if self.fsync != "off":
            os.fsync(self._file.fileno())
        self._unsynced = 0
        self._last_sync = time.monotonic()

    def reset(self) -> None:
        """Truncate the log to empty (called right after a snapshot)."""
        if self._file is not None:
            self._file.close()
        self._file = open(self.path, "wb")
        if self.fsync != "off":
            os.fsync(self._file.fileno())
