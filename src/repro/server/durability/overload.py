"""Overload protection: admission control, memory watermark, breakers.

Three independent guards, all advisory to the routing layer:

* :class:`IngestGate` — a bounded per-tenant in-flight counter.  A
  batch that cannot get a slot is shed with ``429`` + ``Retry-After``
  instead of queueing without bound in the executor.
* :class:`MemoryWatermark` — samples the process RSS (``/proc``) and
  flips the server read-only above a configured ceiling, so mutating
  endpoints shed load *before* the OOM killer picks us.
* :class:`CircuitBreaker` — per ``(tenant, rule)`` fault accounting on
  top of the detector's quarantine feed.  A rule that faults on
  ``breaker_threshold`` consecutive batches is suspended (the detector
  stops running — and cold-rebuilding — it); after ``cooldown_s`` the
  breaker half-opens, resumes the rule for one probe batch, and closes
  on success or re-opens on another fault.  Breaker state is
  process-local by design: after a crash every rule deserves a fresh
  chance, and a fault that recurs re-opens the breaker within
  ``breaker_threshold`` batches anyway.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...incremental import IncrementalDetector

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric encoding for the ``repro_server_breaker_state`` gauge.
BREAKER_STATE_VALUES = {CLOSED: 0.0, OPEN: 1.0, HALF_OPEN: 2.0}

_VMRSS = re.compile(rb"^VmRSS:\s+(\d+)\s+kB", re.MULTILINE)


@dataclass
class OverloadConfig:
    """Tunables for all three guards (0 disables a guard)."""

    #: Batches admitted per tenant at once (queued included).
    max_inflight_per_tenant: int = 8
    #: ``Retry-After`` seconds advertised when shedding.
    retry_after_s: float = 1.0
    #: RSS ceiling in MiB; above it the server goes read-only.
    max_rss_mb: float = 0.0
    #: Consecutive faulting batches before a rule's breaker opens.
    breaker_threshold: int = 3
    #: Seconds an open breaker waits before half-open probing.
    breaker_cooldown_s: float = 5.0


class IngestGate:
    """Bounded per-tenant admission: acquire before queueing a batch."""

    def __init__(self, max_inflight: int) -> None:
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}
        self.shed_total = 0

    def try_acquire(self, tenant_id: str) -> bool:
        if self.max_inflight <= 0:
            return True
        with self._lock:
            depth = self._inflight.get(tenant_id, 0)
            if depth >= self.max_inflight:
                self.shed_total += 1
                return False
            self._inflight[tenant_id] = depth + 1
            return True

    def release(self, tenant_id: str) -> None:
        if self.max_inflight <= 0:
            return
        with self._lock:
            depth = self._inflight.get(tenant_id, 0)
            if depth <= 1:
                self._inflight.pop(tenant_id, None)
            else:
                self._inflight[tenant_id] = depth - 1

    def depth(self, tenant_id: str) -> int:
        with self._lock:
            return self._inflight.get(tenant_id, 0)


class MemoryWatermark:
    """Process-RSS ceiling; above it, mutating requests are shed."""

    def __init__(
        self, max_rss_mb: float, *, cache_s: float = 0.5
    ) -> None:
        self.max_rss_mb = max_rss_mb
        self._cache_s = cache_s
        self._lock = threading.Lock()
        self._cached_at = 0.0
        self._cached_rss = 0
        #: Test hook: when set, used instead of the /proc sample.
        self.forced_rss_bytes: int | None = None

    def rss_bytes(self) -> int:
        if self.forced_rss_bytes is not None:
            return self.forced_rss_bytes
        now = time.monotonic()
        with self._lock:
            if now - self._cached_at < self._cache_s:
                return self._cached_rss
        rss = _read_rss_bytes()
        with self._lock:
            self._cached_at = now
            self._cached_rss = rss
        return rss

    def read_only(self) -> bool:
        if self.max_rss_mb <= 0:
            return False
        return self.rss_bytes() > self.max_rss_mb * 1024 * 1024


def _read_rss_bytes() -> int:
    """Resident set size, or 0 where /proc is unavailable."""
    try:
        with open("/proc/self/status", "rb") as f:
            match = _VMRSS.search(f.read())
        return int(match.group(1)) * 1024 if match else 0
    except OSError:  # pragma: no cover - non-Linux fallback
        return 0


@dataclass
class _RuleBreaker:
    state: str = CLOSED
    consecutive_faults: int = 0
    opened_at: float = 0.0


@dataclass
class BreakerTransition:
    """One observable state change (fed to logs/metrics/responses)."""

    rule: str
    state: str
    reason: str


class CircuitBreaker:
    """Per-(tenant, rule) fault breaker over the quarantine feed.

    The caller brackets each ``detector.apply``::

        breaker.before_batch(tenant_id, detector)   # half-open probes
        mark = len(detector.quarantine)
        change = detector.apply(delta)
        faulted = {label for _, label, _ in detector.quarantine[mark:]}
        breaker.after_batch(tenant_id, detector, faulted)

    Labels come from the quarantine tuples, never parsed out of
    messages (rule labels legitimately contain colons).
    """

    def __init__(
        self, threshold: int = 3, cooldown_s: float = 5.0
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._rules: dict[str, dict[str, _RuleBreaker]] = {}

    def before_batch(
        self, tenant_id: str, detector: "IncrementalDetector"
    ) -> list[BreakerTransition]:
        """Half-open any open breakers whose cooldown has elapsed."""
        if self.threshold <= 0:
            return []
        now = time.monotonic()
        transitions: list[BreakerTransition] = []
        with self._lock:
            rules = self._rules.get(tenant_id, {})
            due = [
                (label, b)
                for label, b in rules.items()
                if b.state == OPEN and now - b.opened_at >= self.cooldown_s
            ]
        for label, breaker in due:
            if detector.resume_rule(label):
                breaker.state = HALF_OPEN
                transitions.append(
                    BreakerTransition(label, HALF_OPEN, "cooldown elapsed")
                )
            else:
                # The rule vanished (e.g. a rules re-upload); forget it.
                with self._lock:
                    self._rules.get(tenant_id, {}).pop(label, None)
        return transitions

    def after_batch(
        self,
        tenant_id: str,
        detector: "IncrementalDetector",
        faulted: set[str],
    ) -> list[BreakerTransition]:
        """Account one batch's faults; suspend/close rules accordingly."""
        if self.threshold <= 0:
            return []
        transitions: list[BreakerTransition] = []
        with self._lock:
            rules = self._rules.setdefault(tenant_id, {})
            to_suspend: list[str] = []
            for label in sorted(faulted):
                breaker = rules.setdefault(label, _RuleBreaker())
                breaker.consecutive_faults += 1
                if (
                    breaker.state == HALF_OPEN
                    or breaker.consecutive_faults >= self.threshold
                ):
                    reason = (
                        "probe faulted"
                        if breaker.state == HALF_OPEN
                        else f"{breaker.consecutive_faults} consecutive "
                        "faulting batches"
                    )
                    breaker.state = OPEN
                    breaker.opened_at = time.monotonic()
                    to_suspend.append(label)
                    transitions.append(
                        BreakerTransition(label, OPEN, reason)
                    )
            for label, breaker in rules.items():
                if label in faulted:
                    continue
                if breaker.state == HALF_OPEN:
                    breaker.state = CLOSED
                    breaker.consecutive_faults = 0
                    transitions.append(
                        BreakerTransition(label, CLOSED, "probe succeeded")
                    )
                elif breaker.state == CLOSED:
                    breaker.consecutive_faults = 0
        for label in to_suspend:
            detector.suspend_rule(label)
        return transitions

    def states(self, tenant_id: str) -> dict[str, str]:
        with self._lock:
            return {
                label: b.state
                for label, b in self._rules.get(tenant_id, {}).items()
            }

    def drop_tenant(self, tenant_id: str) -> None:
        with self._lock:
            self._rules.pop(tenant_id, None)


@dataclass
class OverloadGuards:
    """The three guards bundled, built from one :class:`OverloadConfig`."""

    config: OverloadConfig = field(default_factory=OverloadConfig)
    gate: IngestGate = field(init=False)
    watermark: MemoryWatermark = field(init=False)
    breaker: CircuitBreaker = field(init=False)

    def __post_init__(self) -> None:
        self.gate = IngestGate(self.config.max_inflight_per_tenant)
        self.watermark = MemoryWatermark(self.config.max_rss_mb)
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold,
            self.config.breaker_cooldown_s,
        )
